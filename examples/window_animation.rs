//! The §2.6 window-maximize experiment: a single user event that produces
//! multiple intervals of CPU activity, visualized as CPU-usage profiles at
//! two resolutions (Figure 4a/4b).
//!
//! ```text
//! cargo run --release --example window_animation
//! ```

use latlab::prelude::*;

fn main() {
    let freq = CpuFreq::PENTIUM_100;
    let mut session = MeasurementSession::new(OsProfile::Nt40);
    session.launch_app(
        ProcessSpec::app("desktop"),
        Box::new(Desktop::new(DesktopConfig::default())),
    );
    // The maximize chord arrives 100 ms in.
    TestDriver::clean().schedule(
        session.machine(),
        SimTime::ZERO,
        &workloads::window_maximize(),
    );
    session.run_until_quiescent(SimTime::ZERO + freq.secs(3));
    let m = session.finish(BoundaryPolicy::MergeUntilEmpty);

    let from = SimTime::ZERO + freq.ms(80);
    let to = SimTime::ZERO + freq.ms(700);
    println!("window maximize on {}\n", OsProfile::Nt40.name());

    println!("Figure 4a — 1 ms resolution (each column 1 ms, shade = utilization):");
    let fine = UtilizationProfile::from_trace(&m.trace, from, to, 1);
    println!("  {}\n", latlab::analysis::ascii::utilization_strip(&fine));

    println!("Figure 4b — averaged over 10 ms bins:");
    let coarse = UtilizationProfile::from_trace(&m.trace, from, to, 10);
    print!(
        "{}",
        latlab::analysis::ascii::utilization_chart(&coarse, 10)
    );

    println!("\nAnatomy: ~80 ms of input processing, then animation bursts paced by");
    println!("clock-tick-aligned sleeps (the stair: each step larger as the outline");
    println!("grows), then a continuous redraw of the window contents.");
    println!(
        "\ntotal busy time for the single maximize: {:.0} ms",
        freq.to_ms(m.trace.busy_within(from, to))
    );
}
