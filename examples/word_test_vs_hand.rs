//! The §5.4 discovery: the test driver changes what you measure.
//!
//! Word handles keystrokes in the foreground and defers spell checking and
//! justification to a background coroutine drained between `PeekMessage`
//! polls. Microsoft Test posts a `WM_QUEUESYNC` after every injected input,
//! and Word's handler for it flushes the background queue — so under Test a
//! keystroke *measures* 80–100 ms while a hand-typed one measures ~32 ms,
//! and carriage returns invert (cheaper under Test, which keeps the
//! paragraph pre-laid).
//!
//! ```text
//! cargo run --release --example word_test_vs_hand
//! ```

use latlab::prelude::*;

fn run(label: &str, driver: TestDriver, script: &InputScript) {
    let freq = CpuFreq::PENTIUM_100;
    let mut session = MeasurementSession::new(OsProfile::Nt351);
    session.launch_app(
        ProcessSpec::app("word").with_heavy_async(),
        Box::new(Word::new(WordConfig::default())),
    );
    driver.schedule(session.machine(), SimTime::ZERO + freq.ms(100), script);
    session.run_until_quiescent(SimTime::ZERO + script.duration() + freq.secs(10));
    let (m, machine) = session.finish_with_machine(BoundaryPolicy::MergeUntilEmpty);

    let mut keys = Vec::new();
    let mut crs = Vec::new();
    for e in &m.events {
        let Some(id) = e.input_id else { continue };
        match machine.ground_truth().event(id).map(|g| g.kind) {
            Some(InputKind::Key(KeySym::Char(_))) => keys.push(e.latency_ms(freq)),
            Some(InputKind::Key(KeySym::Enter)) => crs.push(e.latency_ms(freq)),
            _ => {}
        }
    }
    let key_summary = LatencySummary::from_latencies(&keys);
    let cr_summary = LatencySummary::from_latencies(&crs);
    let total_busy = freq.to_ms(
        m.trace
            .busy_within(SimTime::ZERO, SimTime::ZERO + m.elapsed),
    );
    let attributed: f64 = m.events.iter().map(|e| e.latency_ms(freq)).sum();
    println!("== {label} ==");
    println!(
        "  keystrokes: median {:6.1} ms (σ {:.1})    carriage returns: mean {:6.1} ms",
        key_summary.median_ms, key_summary.stddev_ms, cr_summary.mean_ms
    );
    println!(
        "  unattributed background activity: {:.1} s\n",
        (total_busy - attributed).max(0.0) / 1e3
    );
}

fn main() {
    let text = workloads::sample_document(800, 100);
    println!("Word on {}, §5.4 comparison:\n", OsProfile::Nt351.name());
    // Microsoft Test: fixed 250 ms pauses, WM_QUEUESYNC after every event.
    let test_script = InputScript::new().text(CpuFreq::PENTIUM_100.ms(250), &text);
    run(
        "Microsoft Test (WM_QUEUESYNC after every input)",
        TestDriver::ms_test(),
        &test_script,
    );
    // A human typist: varied pacing, no journal messages.
    let hand_script = HumanModel::with_wpm(70.0, 7).type_text(&text);
    run("hand-generated input", TestDriver::clean(), &hand_script);
    println!("paper: Test 80–100 ms / hand ~32 ms typical; hand CRs >200 ms, Test ≤140 ms");
}
