//! Quickstart: measure keystroke latency in a simulated editor.
//!
//! Boots Windows NT 4.0 with the paper's idle-loop monitor installed, types
//! a sentence into Notepad at a realistic pace, and prints the measured
//! per-event latencies with a histogram.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use latlab::prelude::*;

fn main() {
    let freq = CpuFreq::PENTIUM_100;

    // 1. Boot a machine with the measurement stack (idle-loop calibration
    //    happens on a scratch machine first, exactly as in §2.3).
    let mut session = MeasurementSession::new(OsProfile::Nt40);

    // 2. Launch the application under test and focus input on it.
    session.launch_app(
        ProcessSpec::app("notepad"),
        Box::new(Notepad::new(NotepadConfig::default())),
    );

    // 3. Describe the user: typing at 100 words per minute with natural
    //    jitter (a deterministic, seeded "human").
    let typist = HumanModel::with_wpm(100.0, 42);
    let script = typist.type_text("the quick brown fox jumps over the lazy dog\n");

    // 4. Deliver the input (TestDriver::clean() = no journal-sync artifact)
    //    and run the simulation until everything settles.
    TestDriver::clean().schedule(session.machine(), SimTime::ZERO + freq.ms(100), &script);
    session.run_until_quiescent(SimTime::ZERO + freq.secs(30));

    // 5. Extract per-event latencies from the idle-loop trace + message log.
    let measurement = session.finish(BoundaryPolicy::SplitAtRetrieval);

    println!("measured {} events:\n", measurement.events.len());
    let latencies: Vec<f64> = measurement
        .events
        .iter()
        .map(|e| e.latency_ms(freq))
        .collect();
    let summary = LatencySummary::from_latencies(&latencies);
    println!(
        "  mean {:.2} ms   median {:.2} ms   p90 {:.2} ms   max {:.2} ms",
        summary.mean_ms, summary.median_ms, summary.p90_ms, summary.max_ms
    );
    println!("\nlatency histogram (log count):");
    let hist = LatencyHistogram::from_latencies(&latencies);
    print!("{}", latlab::analysis::ascii::histogram_log(&hist, 40));
    println!(
        "\nevery event is far below the 0.1 s perception threshold: {}",
        latencies.iter().all(|&l| l < 100.0)
    );
}
