//! Measuring your own application: implement `Program`, launch it in a
//! session, and read its latency anatomy.
//!
//! The example app is a tiny "spreadsheet": most keystrokes edit a cell
//! cheaply, but every ENTER triggers a full recalculation whose cost grows
//! with the number of committed rows — a classic latency cliff the
//! histogram makes obvious.
//!
//! ```text
//! cargo run --release --example custom_app
//! ```

use latlab::os::{Action, ApiCall, ApiReply, ComputeSpec, StepCtx};
use latlab::prelude::*;

/// A minimal interactive spreadsheet model. `Program` requires `Clone`
/// so machines holding the app can be snapshotted by the sweep engine.
#[derive(Clone)]
struct MiniSheet {
    awaiting: bool,
    rows: u64,
}

impl latlab::os::Program for MiniSheet {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        if self.awaiting {
            self.awaiting = false;
            if let ApiReply::Message(Some(Message::Input {
                kind: InputKind::Key(key),
                ..
            })) = ctx.reply
            {
                return match key {
                    KeySym::Enter => {
                        // Commit the row and recalculate everything below:
                        // cost grows linearly with sheet size.
                        self.rows += 1;
                        Action::Compute(ComputeSpec::app(400_000 + 600_000 * self.rows))
                    }
                    // Cell editing: cheap echo plus formula preview.
                    _ => Action::Compute(ComputeSpec::gui_text(250_000)),
                };
            }
            // Non-input messages (timers, sync) are absorbed.
            if let ApiReply::Message(Some(_)) = ctx.reply {
                return Action::Compute(ComputeSpec::app(10_000));
            }
        }
        self.awaiting = true;
        Action::Call(ApiCall::GetMessage)
    }

    fn name(&self) -> &'static str {
        "minisheet"
    }
}

fn main() {
    let freq = CpuFreq::PENTIUM_100;
    let mut session = MeasurementSession::new(OsProfile::Nt40);
    session.launch_app(
        ProcessSpec::app("minisheet"),
        Box::new(MiniSheet {
            awaiting: false,
            rows: 0,
        }),
    );
    // Enter eight rows of three digits each.
    let mut script = InputScript::new();
    for _ in 0..8 {
        script = script
            .text(freq.ms(180), "123")
            .key(freq.ms(300), KeySym::Enter);
    }
    TestDriver::clean().schedule(session.machine(), SimTime::ZERO + freq.ms(100), &script);
    session.run_until_quiescent(SimTime::ZERO + script.duration() + freq.secs(5));
    let m = session.finish(BoundaryPolicy::SplitAtRetrieval);

    println!(
        "mini-spreadsheet latency anatomy ({} events):\n",
        m.events.len()
    );
    for (i, e) in m.events.iter().enumerate() {
        let bar = "#".repeat((e.latency_ms(freq) / 2.0).ceil() as usize);
        println!("  event {:>2}: {:>7.2} ms {bar}", i + 1, e.latency_ms(freq));
    }
    let latencies: Vec<f64> = m.events.iter().map(|e| e.latency_ms(freq)).collect();
    let hist = LatencyHistogram::from_latencies(&latencies);
    println!("\nhistogram (log count) — note the recalculation cliff marching right:");
    print!("{}", latlab::analysis::ascii::histogram_log(&hist, 36));
    println!(
        "\nresponsiveness score (Shneiderman penalty): {:.2}",
        latlab::analysis::responsiveness_score(&latencies, latlab::analysis::shneiderman_penalty)
    );
}
