//! Compare the responsiveness of the three simulated operating systems on
//! the same editing workload — the paper's headline use case.
//!
//! Runs the §5.1 Notepad session (1300 characters at ~100 wpm plus cursor
//! and page movement, Microsoft-Test-driven) on Windows NT 3.51, NT 4.0 and
//! Windows 95, removes the test-driver overhead the way the paper does, and
//! prints the three graphical representations of §3.2.
//!
//! ```text
//! cargo run --release --example compare_os
//! ```

use latlab::prelude::*;

fn main() {
    let freq = CpuFreq::PENTIUM_100;
    let script = workloads::notepad_session();
    println!(
        "Notepad session: {} inputs over {:.0} s of simulated typing\n",
        script.len(),
        freq.to_secs(script.duration())
    );

    for profile in [OsProfile::Nt351, OsProfile::Nt40, OsProfile::Win95] {
        let mut session = MeasurementSession::new(profile);
        session.launch_app(
            ProcessSpec::app("notepad"),
            Box::new(Notepad::new(NotepadConfig::default())),
        );
        TestDriver::ms_test().schedule(session.machine(), SimTime::ZERO + freq.ms(100), &script);
        session.run_until_quiescent(SimTime::ZERO + script.duration() + freq.secs(10));
        let measurement = session.finish(BoundaryPolicy::SplitAtRetrieval);

        // Separate real events from WM_QUEUESYNC test overhead (§3, Fig 7).
        let (overhead, events): (Vec<&MeasuredEvent>, Vec<&MeasuredEvent>) = measurement
            .events
            .iter()
            .partition(|e| e.is_test_overhead());
        let latencies: Vec<f64> = events.iter().map(|e| e.latency_ms(freq)).collect();
        let cumulative = CumulativeLatency::new(&latencies);

        println!("== {} ==", profile.name());
        println!(
            "  events {:5}   cumulative latency {:6.2} s   elapsed [{:.1} s]",
            latencies.len(),
            cumulative.total_ms() / 1e3,
            freq.to_secs(measurement.elapsed),
        );
        println!(
            "  {:.1}% of total latency from sub-10 ms events; test overhead {:.2} s excluded",
            cumulative.fraction_below(10.0) * 100.0,
            overhead.iter().map(|e| e.latency_ms(freq)).sum::<f64>() / 1e3,
        );
        let hist = LatencyHistogram::from_latencies(&latencies);
        for line in latlab::analysis::ascii::histogram_log(&hist, 36).lines() {
            println!("    {line}");
        }
        println!();
    }
    println!("(Windows 95 shows the smallest cumulative event latency yet pays the");
    println!(" most for WM_QUEUESYNC handling — the Figure 7 elapsed-time anomaly.)");
}
