//! Measuring the paper's *other* event class: network packet arrival.
//!
//! §1 motivates latency measurement for "an asynchronous stream of
//! independent and diverse events that result from interactive user input
//! or network packet arrival". This example runs a telnet-style terminal
//! receiving remote output and measures per-packet handling latency with
//! the same idle-loop pipeline used for keystrokes — on all three systems.
//!
//! ```text
//! cargo run --release --example network_echo
//! ```

use latlab::apps::{Terminal, TerminalConfig};
use latlab::prelude::*;

fn main() {
    let freq = CpuFreq::PENTIUM_100;
    println!("remote-output rendering latency per packet size:\n");
    println!(
        "  {:<16} {:>12} {:>12} {:>12}",
        "system", "64 B", "512 B", "1460 B"
    );
    for profile in [OsProfile::Nt351, OsProfile::Nt40, OsProfile::Win95] {
        let mut session = MeasurementSession::new(profile);
        let term = session.launch_app(
            ProcessSpec::app("terminal"),
            Box::new(Terminal::new(TerminalConfig::default())),
        );
        session.machine().bind_network(term);
        // Ten packets of each size, paced like a chatty remote host.
        let sizes = [64u32, 512, 1_460];
        let mut t = 100u64;
        let mut ids: Vec<(u32, u64)> = Vec::new();
        for &size in &sizes {
            for _ in 0..10 {
                ids.push((
                    size,
                    session
                        .machine()
                        .schedule_packet_at(SimTime::ZERO + freq.ms(t), size),
                ));
                t += 97;
            }
        }
        session.run_until_quiescent(SimTime::ZERO + freq.ms(t + 1_000));
        let m = session.finish(BoundaryPolicy::SplitAtRetrieval);
        let mut by_size = std::collections::BTreeMap::new();
        for e in &m.events {
            let Some(id) = e.input_id else { continue };
            if let Some(&(size, _)) = ids.iter().find(|&&(_, i)| i == id) {
                by_size
                    .entry(size)
                    .or_insert_with(Vec::new)
                    .push(e.latency_ms(freq));
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "  {:<16} {:>9.2} ms {:>9.2} ms {:>9.2} ms",
            profile.name(),
            by_size.get(&64).map(mean).unwrap_or(0.0),
            by_size.get(&512).map(mean).unwrap_or(0.0),
            by_size.get(&1_460).map(mean).unwrap_or(0.0),
        );
    }
    println!("\nThe same idle-loop trace + message-log extraction measures packet");
    println!("events and keystrokes alike — the methodology's generality claim.");
}
