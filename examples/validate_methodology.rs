//! The Figure 1 validation experiment, live: compare the idle-loop
//! methodology against conventional in-application timestamps against
//! simulator ground truth.
//!
//! The paper's console echo program times itself the traditional way (one
//! timestamp after `getchar()` returns, one after the echo) and reports
//! 7.42 ms — but the idle-loop trace shows 9.76 ms of work, because the
//! interrupt handling, console-server hop and rescheduling all happen
//! before the application's first timestamp.
//!
//! ```text
//! cargo run --release --example validate_methodology
//! ```

use latlab::prelude::*;

fn main() {
    let freq = CpuFreq::PENTIUM_100;
    let mut session = MeasurementSession::new(OsProfile::Nt40);
    let app = session.launch_app(
        ProcessSpec::app("echo").with_console(),
        Box::new(EchoApp::new(EchoConfig::default())),
    );
    // Ten keystrokes, well separated.
    let script = InputScript::new().repeat_key(freq.ms(397), KeySym::Char('x'), 10);
    TestDriver::clean().schedule(session.machine(), SimTime::ZERO + freq.ms(100), &script);
    session.run_until_quiescent(SimTime::ZERO + freq.secs(10));
    let emitted = session.machine().take_emitted(app);
    let (m, machine) = session.finish_with_machine(BoundaryPolicy::SplitAtRetrieval);

    let traditional = TimestampPairs::from_emitted(&emitted);
    println!("per-keystroke latency, three ways (ms):\n");
    println!(
        "  {:>4} {:>12} {:>12} {:>12}",
        "#", "idle loop", "traditional", "truth"
    );
    for (i, event) in m.events.iter().enumerate() {
        let idle_ms = event.latency_ms(freq);
        let trad_ms = freq.to_ms(traditional.durations()[i]);
        let truth_ms = machine
            .ground_truth()
            .event(event.input_id.expect("input event"))
            .and_then(|e| e.true_latency())
            .map(|d| freq.to_ms(d))
            .unwrap_or_default();
        println!(
            "  {:>4} {idle_ms:>12.2} {trad_ms:>12.2} {truth_ms:>12.2}",
            i + 1
        );
    }
    let idle_mean =
        m.events.iter().map(|e| e.latency_ms(freq)).sum::<f64>() / m.events.len() as f64;
    let trad_mean = traditional.mean_ms(freq);
    println!(
        "\n  means: idle loop {idle_mean:.2} ms vs traditional {trad_mean:.2} ms \
         → {:.2} ms of pre-application work",
        idle_mean - trad_mean
    );
    println!("  (the paper measured 9.76 ms vs 7.42 ms: a 2.34 ms gap)");
}
