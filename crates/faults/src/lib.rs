//! Deterministic fault-injection plans.
//!
//! The paper's methodology claim (§2.3, §4) is that idle-loop
//! instrumentation attributes event-handling latency correctly even while
//! the system underneath the application misbehaves — interrupt storms,
//! paging, background daemons. This crate describes *how* to misbehave: a
//! [`FaultPlan`] is a seed plus a list of fault classes, each gated on a
//! simulated-time window and a rate, that the kernel applies as pure
//! simulation events. Everything is driven from [`latlab_des::SimRng`]
//! streams forked off the plan seed, so a plan replayed on the same
//! machine produces bit-identical traces.
//!
//! Plans are parsed from a compact CLI spec (`repro --faults "storm;disk"`)
//! or from a small TOML subset (`repro --faults @plan.toml`); see
//! [`FaultPlan::parse`] and [`FaultPlan::parse_toml`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Default seed used when a spec does not name one.
pub const DEFAULT_SEED: u64 = 0xfa117;

/// A simulated-time window (in milliseconds since boot) during which a
/// fault is armed. `end_ms = None` keeps the fault active forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window start, ms of simulated time.
    pub start_ms: u64,
    /// Window end (exclusive), ms of simulated time; `None` = unbounded.
    pub end_ms: Option<u64>,
}

impl FaultWindow {
    /// A window covering the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start_ms: 0,
        end_ms: None,
    };
}

/// One fault class with its parameters. Units are baked into the field
/// names; rates are per-mille so plans stay integer-only (and therefore
/// trivially deterministic to parse and compare).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A periodic device-interrupt storm: every `period_us` of simulated
    /// time, charge one hardware interrupt of `instr` kernel instructions.
    InterruptStorm {
        /// Interrupt period, µs of simulated time.
        period_us: u64,
        /// Instructions charged per storm interrupt.
        instr: u64,
    },
    /// Scheduler jitter: with probability `rate_permille` at each context
    /// switch, charge up to `max_instr` extra dispatcher instructions.
    SchedJitter {
        /// Probability per context switch, in 1/1000.
        rate_permille: u32,
        /// Maximum extra instructions charged per hit.
        max_instr: u64,
    },
    /// Periodic page-fault burst: every `period_ms`, flush the TLBs, evict
    /// `evict_blocks` buffer-cache blocks, and charge `instr` instructions
    /// of page-in kernel work.
    PageFaultBurst {
        /// Burst period, ms of simulated time.
        period_ms: u64,
        /// Buffer-cache blocks evicted per burst.
        evict_blocks: u64,
        /// Instructions of kernel paging work charged per burst.
        instr: u64,
    },
    /// Disk-I/O degradation: every disk transfer inside the window takes
    /// `delay_ms` extra; with probability `error_permille` the transfer
    /// errors and is transparently retried (costing the base service time
    /// plus another delay).
    DiskFault {
        /// Extra controller delay per transfer, ms.
        delay_ms: u64,
        /// Probability of a retried soft error per transfer, in 1/1000.
        error_permille: u32,
    },
    /// Input chaos: each arriving user input is dropped with probability
    /// `drop_permille`, or else duplicated with probability `dup_permille`
    /// (the duplicate gets a synthetic id the ground-truth oracle ignores).
    InputChaos {
        /// Probability an input is dropped after its interrupt, in 1/1000.
        drop_permille: u32,
        /// Probability an input is delivered twice, in 1/1000.
        dup_permille: u32,
    },
}

impl FaultKind {
    /// The spec/CLI name of this fault class.
    pub fn class_name(&self) -> &'static str {
        match self {
            FaultKind::InterruptStorm { .. } => "storm",
            FaultKind::SchedJitter { .. } => "jitter",
            FaultKind::PageFaultBurst { .. } => "pagefault",
            FaultKind::DiskFault { .. } => "disk",
            FaultKind::InputChaos { .. } => "input",
        }
    }
}

/// A fault class armed over a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// When it is active.
    pub window: FaultWindow,
}

/// A complete, reproducible fault plan: a seed plus the armed faults.
/// Same plan + same machine ⇒ bit-identical simulation.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the per-class [`latlab_des::SimRng`] streams.
    pub seed: u64,
    /// The armed faults, in spec order.
    pub faults: Vec<FaultSpec>,
}

/// Counters the kernel keeps while applying a plan; read them back through
/// `Machine::fault_stats` to confirm a fault class actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Storm interrupts delivered.
    pub storm_interrupts: u64,
    /// Page-fault bursts executed.
    pub page_bursts: u64,
    /// Context switches that drew extra scheduler jitter.
    pub sched_delays: u64,
    /// Disk transfers that took an injected delay.
    pub disk_delays: u64,
    /// Disk transfers that additionally soft-errored and retried.
    pub disk_errors: u64,
    /// User inputs dropped after their interrupt was charged.
    pub inputs_dropped: u64,
    /// User inputs delivered twice.
    pub inputs_duplicated: u64,
}

impl FaultStats {
    /// Total number of injected events of any class.
    pub fn total_injections(&self) -> u64 {
        self.storm_interrupts
            + self.page_bursts
            + self.sched_delays
            + self.disk_delays
            + self.inputs_dropped
            + self.inputs_duplicated
    }
}

/// A fault-spec parse failure, with a human-oriented message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl Error for FaultParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FaultParseError> {
    Err(FaultParseError(msg.into()))
}

/// Known class names, for error messages.
pub const CLASS_NAMES: [&str; 5] = ["storm", "jitter", "pagefault", "disk", "input"];

type KeyMap = BTreeMap<String, u64>;

fn take(kv: &mut KeyMap, key: &str, default: u64) -> u64 {
    kv.remove(key).unwrap_or(default)
}

/// Builds one [`FaultSpec`] from a class name and its key/value map.
/// Shared by the CLI and TOML parsers so both accept the same keys:
/// `start`/`end` (ms) on every class, plus per-class parameters.
fn build_fault(class: &str, mut kv: KeyMap) -> Result<FaultSpec, FaultParseError> {
    let window = FaultWindow {
        start_ms: take(&mut kv, "start", 0),
        end_ms: kv.remove("end"),
    };
    let kind = match class {
        "storm" => FaultKind::InterruptStorm {
            period_us: take(&mut kv, "period", 500).max(1),
            instr: take(&mut kv, "instr", 15_000).max(1),
        },
        "jitter" => FaultKind::SchedJitter {
            rate_permille: take(&mut kv, "rate", 300).min(1000) as u32,
            max_instr: take(&mut kv, "instr", 40_000).max(1),
        },
        "pagefault" => FaultKind::PageFaultBurst {
            period_ms: take(&mut kv, "period", 50).max(1),
            evict_blocks: take(&mut kv, "evict", 64),
            instr: take(&mut kv, "instr", 60_000).max(1),
        },
        "disk" => FaultKind::DiskFault {
            delay_ms: take(&mut kv, "delay", 5),
            error_permille: take(&mut kv, "errors", 100).min(1000) as u32,
        },
        "input" => FaultKind::InputChaos {
            drop_permille: take(&mut kv, "drop", 100).min(1000) as u32,
            dup_permille: take(&mut kv, "dup", 100).min(1000) as u32,
        },
        other => {
            return err(format!(
                "unknown fault class {other:?}; known: {CLASS_NAMES:?}"
            ))
        }
    };
    if let Some(end) = window.end_ms {
        if end <= window.start_ms {
            return err(format!(
                "window end {end} must be after start {}",
                window.start_ms
            ));
        }
    }
    if let Some(stray) = kv.keys().next() {
        return err(format!("unknown key {stray:?} for fault class {class:?}"));
    }
    Ok(FaultSpec { kind, window })
}

fn parse_u64(s: &str, what: &str) -> Result<u64, FaultParseError> {
    match s.trim().parse::<u64>() {
        Ok(v) => Ok(v),
        Err(_) => err(format!("{what} must be an unsigned integer, got {s:?}")),
    }
}

impl FaultPlan {
    /// Parses a compact CLI spec.
    ///
    /// Grammar: semicolon-separated clauses; each clause is either
    /// `seed=N` or `class[:key=value[,key=value…]]`. Classes are
    /// `storm`, `jitter`, `pagefault`, `disk`, `input`; every class
    /// accepts `start`/`end` (window in ms of simulated time) plus its
    /// own keys, all with usable defaults:
    ///
    /// ```text
    /// storm                         # 15k-instr interrupt every 500 µs
    /// storm:period=200,instr=30000  # heavier storm
    /// disk:delay=10,errors=250      # +10 ms/transfer, 25% retried errors
    /// seed=7;input:drop=50;jitter   # two classes, explicit seed
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan {
            seed: DEFAULT_SEED,
            faults: Vec::new(),
        };
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = parse_u64(seed, "seed")?;
                continue;
            }
            let (class, params) = match clause.split_once(':') {
                Some((c, p)) => (c.trim(), p),
                None => (clause, ""),
            };
            let mut kv = KeyMap::new();
            for pair in params.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let Some((k, v)) = pair.split_once('=') else {
                    return err(format!("expected key=value in {clause:?}, got {pair:?}"));
                };
                kv.insert(k.trim().to_string(), parse_u64(v, k.trim())?);
            }
            plan.faults.push(build_fault(class, kv)?);
        }
        if plan.faults.is_empty() {
            return err("spec names no fault classes");
        }
        Ok(plan)
    }

    /// Parses the TOML subset used by `--faults @plan.toml`:
    ///
    /// ```toml
    /// seed = 42          # optional
    ///
    /// [[fault]]
    /// class = "storm"    # same classes and keys as the CLI spec
    /// start = 200        # ms
    /// period = 400       # µs for storm, ms for pagefault
    /// instr = 20000
    /// ```
    ///
    /// Only `key = integer` pairs, `class = "name"` strings, `#` comments,
    /// and `[[fault]]` table headers are understood — enough to keep plans
    /// in version-controlled files without an external TOML dependency.
    pub fn parse_toml(text: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan {
            seed: DEFAULT_SEED,
            faults: Vec::new(),
        };
        let mut current: Option<(Option<String>, KeyMap)> = None;
        let flush = |cur: &mut Option<(Option<String>, KeyMap)>,
                     plan: &mut FaultPlan|
         -> Result<(), FaultParseError> {
            if let Some((class, kv)) = cur.take() {
                let Some(class) = class else {
                    return err("[[fault]] table is missing a class key");
                };
                plan.faults.push(build_fault(&class, kv)?);
            }
            Ok(())
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[fault]]" {
                flush(&mut current, &mut plan)?;
                current = Some((None, KeyMap::new()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(format!(
                    "line {}: expected key = value, got {line:?}",
                    lineno + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match &mut current {
                None => {
                    if key == "seed" {
                        plan.seed = parse_u64(value, "seed")?;
                    } else {
                        return err(format!(
                            "line {}: unknown top-level key {key:?}",
                            lineno + 1
                        ));
                    }
                }
                Some((class, kv)) => {
                    if key == "class" {
                        let name = value.trim_matches('"');
                        *class = Some(name.to_string());
                    } else {
                        kv.insert(key.to_string(), parse_u64(value, key)?);
                    }
                }
            }
        }
        flush(&mut current, &mut plan)?;
        if plan.faults.is_empty() {
            return err("plan file names no fault classes");
        }
        Ok(plan)
    }

    /// Convenience: a plan with one always-on fault of each requested kind.
    pub fn single(seed: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed,
            faults: vec![FaultSpec {
                kind,
                window: FaultWindow::ALWAYS,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_class_uses_defaults() {
        let plan = FaultPlan::parse("storm").unwrap();
        assert_eq!(plan.seed, DEFAULT_SEED);
        assert_eq!(plan.faults.len(), 1);
        assert_eq!(plan.faults[0].window, FaultWindow::ALWAYS);
        assert!(matches!(
            plan.faults[0].kind,
            FaultKind::InterruptStorm {
                period_us: 500,
                instr: 15_000
            }
        ));
    }

    #[test]
    fn full_spec_round_trip() {
        let plan = FaultPlan::parse(
            "seed=7; storm:period=200,instr=30000,start=50,end=950; input:drop=50",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(
            plan.faults[0],
            FaultSpec {
                kind: FaultKind::InterruptStorm {
                    period_us: 200,
                    instr: 30_000
                },
                window: FaultWindow {
                    start_ms: 50,
                    end_ms: Some(950)
                },
            }
        );
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::InputChaos {
                drop_permille: 50,
                dup_permille: 100
            }
        );
    }

    #[test]
    fn every_class_parses_bare() {
        for class in CLASS_NAMES {
            let plan = FaultPlan::parse(class).unwrap();
            assert_eq!(plan.faults[0].kind.class_name(), class);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "storms",
            "storm:period",
            "storm:period=abc",
            "storm:bogus=1",
            "storm:start=100,end=100",
            "seed=1",
            "seed=x;storm",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_is_deterministic() {
        let a = FaultPlan::parse("jitter;disk:delay=3").unwrap();
        let b = FaultPlan::parse("jitter;disk:delay=3").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn toml_subset_parses() {
        let text = r#"
            # comment
            seed = 42

            [[fault]]
            class = "storm"
            start = 200
            period = 400   # µs
            instr = 20000

            [[fault]]
            class = "disk"
            delay = 8
        "#;
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(
            plan.faults[0],
            FaultSpec {
                kind: FaultKind::InterruptStorm {
                    period_us: 400,
                    instr: 20_000
                },
                window: FaultWindow {
                    start_ms: 200,
                    end_ms: None
                },
            }
        );
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::DiskFault {
                delay_ms: 8,
                error_permille: 100
            }
        );
    }

    #[test]
    fn toml_errors_are_reported() {
        assert!(FaultPlan::parse_toml("").is_err());
        assert!(FaultPlan::parse_toml("[[fault]]\nstart = 1").is_err());
        assert!(FaultPlan::parse_toml("bogus = 1").is_err());
        assert!(FaultPlan::parse_toml("[[fault]]\nclass = \"storm\"\nperiod = x").is_err());
    }
}
