//! Property tests for the binary trace format.
//!
//! The invariants: encoding is lossless for every stream kind; a
//! truncated file never panics and never invents records (whatever is
//! readable is a prefix of what was written); and any single-bit
//! corruption anywhere in the file — header, chunk framing, or payload —
//! surfaces as a clean [`TraceError`].

use latlab_des::{CpuFreq, SimDuration};
use latlab_trace::{
    ApiRecord, CounterRecord, Record, StreamDecoder, StreamKind, TraceError, TraceMeta,
    TraceReader, TraceWriter,
};
use proptest::prelude::*;

fn meta(kind: StreamKind) -> TraceMeta {
    TraceMeta {
        kind,
        freq: CpuFreq::PENTIUM_100,
        baseline: SimDuration::from_cycles(100_000),
        seed: 0xfeed_f00d,
        personality: "proptest".to_owned(),
    }
}

fn encode(kind: StreamKind, records: &[Record]) -> Vec<u8> {
    let mut w = TraceWriter::create(Vec::new(), meta(kind)).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap()
}

fn drain(bytes: &[u8]) -> Result<Vec<Record>, TraceError> {
    let mut reader = TraceReader::open(bytes)?;
    let mut out = Vec::new();
    while let Some(rec) = reader.next()? {
        out.push(rec);
    }
    Ok(out)
}

fn stamps_from(start: u64, deltas: &[u64]) -> Vec<Record> {
    let mut t = start;
    let mut out = Vec::with_capacity(deltas.len());
    for &d in deltas {
        t += d;
        out.push(Record::Stamp(t));
    }
    out
}

/// What a [`StreamDecoder`] produced over a fragmented byte stream:
/// every stamp decoded (including those salvaged after a failing feed)
/// and, if a feed failed, at which fragment and with what error.
#[derive(Debug, PartialEq)]
struct DrainOutcome {
    stamps: Vec<u64>,
    error: Option<(usize, String)>,
    clean_boundary: bool,
}

/// How [`drain_fragmented`] decodes and drains.
#[derive(Clone, Copy, Debug)]
enum DrainStyle {
    /// Default (columnar) decoder, drained record-by-record via `poll`.
    Poll,
    /// Default (columnar) decoder, drained column-wise via `poll_batch`.
    PollBatch,
    /// [`StreamDecoder::new_scalar`] reference decoder, drained via
    /// `poll` (its only output path).
    ScalarDecoder,
}

/// Feeds `bytes` to a fresh decoder in `frags`-sized fragments
/// (cycling), draining after every feed in the given style. Stops at
/// the first feed error; records decoded before a mid-chunk error are
/// still drained.
fn drain_fragmented(bytes: &[u8], frags: &[usize], style: DrainStyle) -> DrainOutcome {
    let mut d = match style {
        DrainStyle::ScalarDecoder => StreamDecoder::new_scalar(),
        _ => StreamDecoder::new(),
    };
    let batch = matches!(style, DrainStyle::PollBatch);
    let mut stamps = Vec::new();
    let mut error = None;
    let mut rest = bytes;
    let mut cuts = frags.iter().cycle();
    for index in 0usize.. {
        if rest.is_empty() {
            break;
        }
        let take = (*cuts.next().unwrap()).min(rest.len());
        let (head, tail) = rest.split_at(take);
        let fed = d.feed(head);
        if batch {
            d.poll_batch(&mut stamps);
        } else {
            while let Some(rec) = d.poll() {
                match rec {
                    Record::Stamp(s) => stamps.push(s),
                    other => panic!("non-stamp record in stamp stream: {other:?}"),
                }
            }
        }
        if let Err(e) = fed {
            error = Some((index, format!("{e:?}")));
            break;
        }
        rest = tail;
    }
    DrainOutcome {
        stamps,
        error,
        clean_boundary: d.is_clean_boundary(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stamps_round_trip(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn api_records_round_trip(
        raw in prop::collection::vec(
            (
                (0u64..500_000, 0u32..64, 0u8..8),
                (0u8..8, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
                0u32..1024,
            ),
            0..500,
        ),
    ) {
        let mut t = 0u64;
        let records: Vec<Record> = raw
            .iter()
            .map(|((dt, thread, entry), (outcome, a, b), queue_len)| {
                t += dt;
                Record::Api(ApiRecord {
                    at_cycles: t,
                    thread: *thread,
                    entry: *entry,
                    outcome: *outcome,
                    a: *a,
                    b: *b,
                    queue_len: *queue_len,
                })
            })
            .collect();
        let bytes = encode(StreamKind::ApiLog, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn counter_records_round_trip(
        raw in prop::collection::vec((0u64..500_000, 0u32..16, 0u64..u64::MAX / 2), 0..500),
    ) {
        let mut t = 0u64;
        let records: Vec<Record> = raw
            .iter()
            .map(|(dt, counter, value)| {
                t += dt;
                Record::Counter(CounterRecord {
                    at_cycles: t,
                    counter: *counter,
                    value: *value,
                })
            })
            .collect();
        let bytes = encode(StreamKind::Counters, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn truncation_yields_clean_error_or_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..1500),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        // Truncation at a chunk boundary is indistinguishable from a short
        // trace — but must never yield records that were not written, out
        // of order, or beyond the original count. Anything else must be a
        // clean error, never a panic.
        if let Ok(read) = drain(&bytes[..cut]) {
            prop_assert_eq!(&read[..], &records[..read.len()]);
        }
    }

    #[test]
    fn tolerant_reader_salvages_a_prefix_from_any_truncation(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..1500),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        // If the header itself was cut, open() fails cleanly and there is
        // nothing to salvage; otherwise a tolerant reader never errors on
        // truncation — it drains every CRC-valid chunk and stops cleanly.
        if let Ok(mut reader) = TraceReader::open(&bytes[..cut]) {
            reader.set_tolerant(true);
            let mut out = Vec::new();
            while let Some(rec) =
                reader.next().expect("tolerant read must not fail on truncation")
            {
                out.push(rec);
            }
            prop_assert!(out.len() <= records.len());
            prop_assert_eq!(&out[..], &records[..out.len()]);
        }
    }

    #[test]
    fn tolerant_reader_is_exact_on_intact_files(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 0..1500),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let mut reader = TraceReader::open(&bytes[..]).unwrap();
        reader.set_tolerant(true);
        let mut out = Vec::new();
        while let Some(rec) = reader.next().unwrap() {
            out.push(rec);
        }
        prop_assert_eq!(out, records);
        prop_assert!(reader.salvaged_error().is_none(),
            "an intact file must not report salvage");
    }

    #[test]
    fn tolerant_reader_survives_bit_flips_with_a_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip in the header makes open() fail cleanly; otherwise the
        // tolerant reader reads until corruption stops it (a decode error
        // inside a CRC-valid chunk may still surface — also clean).
        if let Ok(mut reader) = TraceReader::open(&bytes[..]) {
            reader.set_tolerant(true);
            let mut out = Vec::new();
            while let Ok(Some(rec)) = reader.next() {
                out.push(rec);
            }
            // Whatever was salvaged is a strict prefix — corruption can
            // cost records but can never invent or reorder them.
            prop_assert!(out.len() <= records.len());
            prop_assert_eq!(&out[..], &records[..out.len()]);
        }
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        // Every byte is covered by a CRC (header or chunk) or is part of
        // the chunk framing whose inconsistency the reader checks.
        prop_assert!(drain(&bytes).is_err());
    }

    /// The incremental decoder yields exactly the file reader's records
    /// under any fragmentation of the same byte stream.
    #[test]
    fn stream_decoder_is_fragmentation_invariant(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
        frags in prop::collection::vec(1usize..512, 1..64),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let mut d = latlab_trace::StreamDecoder::new();
        let mut got = Vec::new();
        let mut rest = &bytes[..];
        let mut cuts = frags.iter().cycle();
        while !rest.is_empty() {
            let take = (*cuts.next().unwrap()).min(rest.len());
            let (head, tail) = rest.split_at(take);
            d.feed(head).unwrap();
            while let Some(rec) = d.poll() {
                got.push(rec);
            }
            rest = tail;
        }
        prop_assert_eq!(got, records);
        prop_assert!(d.is_clean_boundary());
        prop_assert_eq!(d.bytes_fed(), bytes.len() as u64);
    }

    /// Cutting the stream anywhere never panics the incremental decoder
    /// and never invents records: what was decoded is a strict prefix.
    #[test]
    fn stream_decoder_truncation_yields_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        let mut d = latlab_trace::StreamDecoder::new();
        d.feed(&bytes[..cut]).unwrap();
        let mut got = Vec::new();
        while let Some(rec) = d.poll() {
            got.push(rec);
        }
        prop_assert!(got.len() <= records.len());
        prop_assert_eq!(&got[..], &records[..got.len()]);
        if cut < bytes.len() {
            prop_assert!(!d.is_clean_boundary() || got.len() < records.len() || got.is_empty());
        }
    }

    /// The columnar drain is observationally identical to the scalar
    /// one on intact streams under any fragmentation, and both agree
    /// with the file reader.
    #[test]
    fn poll_batch_matches_poll_on_intact_streams(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
        frags in prop::collection::vec(1usize..512, 1..64),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let scalar = drain_fragmented(&bytes, &frags, DrainStyle::Poll);
        let batch = drain_fragmented(&bytes, &frags, DrainStyle::PollBatch);
        prop_assert_eq!(&batch, &scalar);
        prop_assert!(batch.error.is_none());
        prop_assert!(batch.clean_boundary);
        let expect: Vec<u64> = deltas
            .iter()
            .scan(start, |t, d| { *t += d; Some(*t) })
            .collect();
        prop_assert_eq!(&batch.stamps, &expect);
        let read: Vec<u64> = drain(&bytes)
            .unwrap()
            .into_iter()
            .map(|r| match r {
                Record::Stamp(s) => s,
                other => panic!("non-stamp record: {other:?}"),
            })
            .collect();
        prop_assert_eq!(&batch.stamps, &read);
    }

    /// Truncating the stream anywhere leaves both drain styles with the
    /// same strict prefix and no error — a partial upload is silence,
    /// never divergence.
    #[test]
    fn poll_batch_matches_poll_under_truncation(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..1500),
        frags in prop::collection::vec(1usize..256, 1..32),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        let scalar = drain_fragmented(&bytes[..cut], &frags, DrainStyle::Poll);
        let batch = drain_fragmented(&bytes[..cut], &frags, DrainStyle::PollBatch);
        prop_assert_eq!(&batch, &scalar);
        prop_assert!(batch.error.is_none());
        let expect: Vec<u64> = deltas
            .iter()
            .scan(start, |t, d| { *t += d; Some(*t) })
            .collect();
        prop_assert!(batch.stamps.len() <= expect.len());
        prop_assert_eq!(&batch.stamps[..], &expect[..batch.stamps.len()]);
    }

    /// A single-bit flip anywhere surfaces through both drain styles at
    /// the same fragment with the same error, after the same salvaged
    /// prefix of stamps.
    #[test]
    fn poll_batch_matches_poll_under_corruption(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        frags in prop::collection::vec(1usize..256, 1..32),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        let scalar = drain_fragmented(&bytes, &frags, DrainStyle::Poll);
        let batch = drain_fragmented(&bytes, &frags, DrainStyle::PollBatch);
        prop_assert_eq!(&batch, &scalar);
        // A flip either surfaces as a feed error or (e.g. an inflated
        // chunk-length field) strands the decoder mid-unit waiting for
        // bytes that never come — it can never pass as a clean stream.
        prop_assert!(batch.error.is_some() || !batch.clean_boundary);
        let expect: Vec<u64> = deltas
            .iter()
            .scan(start, |t, d| { *t += d; Some(*t) })
            .collect();
        prop_assert!(batch.stamps.len() <= expect.len());
        prop_assert_eq!(&batch.stamps[..], &expect[..batch.stamps.len()]);
    }

    /// `poll` and `poll_batch` compose: alternating per fragment on one
    /// decoder still yields exactly the written stamps.
    #[test]
    fn poll_and_poll_batch_interleave_losslessly(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
        frags in prop::collection::vec(1usize..512, 1..64),
        styles in prop::collection::vec(any::<bool>(), 1..16),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        let mut rest = &bytes[..];
        let mut cuts = frags.iter().cycle();
        let mut style = styles.iter().cycle();
        while !rest.is_empty() {
            let take = (*cuts.next().unwrap()).min(rest.len());
            let (head, tail) = rest.split_at(take);
            d.feed(head).unwrap();
            if *style.next().unwrap() {
                d.poll_batch(&mut got);
            } else {
                while let Some(rec) = d.poll() {
                    match rec {
                        Record::Stamp(s) => got.push(s),
                        other => panic!("non-stamp record: {other:?}"),
                    }
                }
            }
            rest = tail;
        }
        let expect: Vec<u64> = deltas
            .iter()
            .scan(start, |t, d| { *t += d; Some(*t) })
            .collect();
        prop_assert_eq!(got, expect);
        prop_assert!(d.is_clean_boundary());
    }

    /// The scalar-mode reference decoder ([`StreamDecoder::new_scalar`])
    /// is observationally identical to the default columnar decoder on
    /// intact streams under any fragmentation.
    #[test]
    fn scalar_mode_decoder_matches_columnar(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
        frags in prop::collection::vec(1usize..512, 1..64),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let reference = drain_fragmented(&bytes, &frags, DrainStyle::ScalarDecoder);
        let columnar = drain_fragmented(&bytes, &frags, DrainStyle::PollBatch);
        prop_assert_eq!(&reference, &columnar);
        prop_assert!(reference.error.is_none());
        prop_assert!(reference.clean_boundary);
        let expect: Vec<u64> = deltas
            .iter()
            .scan(start, |t, d| { *t += d; Some(*t) })
            .collect();
        prop_assert_eq!(&reference.stamps, &expect);
    }

    /// Corruption surfaces identically through the scalar-mode reference
    /// decoder and the columnar one: same salvaged prefix, same error at
    /// the same fragment.
    #[test]
    fn scalar_mode_decoder_matches_columnar_under_corruption(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        frags in prop::collection::vec(1usize..256, 1..32),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        let reference = drain_fragmented(&bytes, &frags, DrainStyle::ScalarDecoder);
        let columnar = drain_fragmented(&bytes, &frags, DrainStyle::PollBatch);
        prop_assert_eq!(&reference, &columnar);
        prop_assert!(reference.error.is_some() || !reference.clean_boundary);
    }
}
