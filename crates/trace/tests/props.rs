//! Property tests for the binary trace format.
//!
//! The invariants: encoding is lossless for every stream kind; a
//! truncated file never panics and never invents records (whatever is
//! readable is a prefix of what was written); and any single-bit
//! corruption anywhere in the file — header, chunk framing, or payload —
//! surfaces as a clean [`TraceError`].

use latlab_des::{CpuFreq, SimDuration};
use latlab_trace::{
    ApiRecord, CounterRecord, Record, StreamKind, TraceError, TraceMeta, TraceReader, TraceWriter,
};
use proptest::prelude::*;

fn meta(kind: StreamKind) -> TraceMeta {
    TraceMeta {
        kind,
        freq: CpuFreq::PENTIUM_100,
        baseline: SimDuration::from_cycles(100_000),
        seed: 0xfeed_f00d,
        personality: "proptest".to_owned(),
    }
}

fn encode(kind: StreamKind, records: &[Record]) -> Vec<u8> {
    let mut w = TraceWriter::create(Vec::new(), meta(kind)).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap()
}

fn drain(bytes: &[u8]) -> Result<Vec<Record>, TraceError> {
    let mut reader = TraceReader::open(bytes)?;
    let mut out = Vec::new();
    while let Some(rec) = reader.next()? {
        out.push(rec);
    }
    Ok(out)
}

fn stamps_from(start: u64, deltas: &[u64]) -> Vec<Record> {
    let mut t = start;
    let mut out = Vec::with_capacity(deltas.len());
    for &d in deltas {
        t += d;
        out.push(Record::Stamp(t));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stamps_round_trip(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn api_records_round_trip(
        raw in prop::collection::vec(
            (
                (0u64..500_000, 0u32..64, 0u8..8),
                (0u8..8, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2),
                0u32..1024,
            ),
            0..500,
        ),
    ) {
        let mut t = 0u64;
        let records: Vec<Record> = raw
            .iter()
            .map(|((dt, thread, entry), (outcome, a, b), queue_len)| {
                t += dt;
                Record::Api(ApiRecord {
                    at_cycles: t,
                    thread: *thread,
                    entry: *entry,
                    outcome: *outcome,
                    a: *a,
                    b: *b,
                    queue_len: *queue_len,
                })
            })
            .collect();
        let bytes = encode(StreamKind::ApiLog, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn counter_records_round_trip(
        raw in prop::collection::vec((0u64..500_000, 0u32..16, 0u64..u64::MAX / 2), 0..500),
    ) {
        let mut t = 0u64;
        let records: Vec<Record> = raw
            .iter()
            .map(|(dt, counter, value)| {
                t += dt;
                Record::Counter(CounterRecord {
                    at_cycles: t,
                    counter: *counter,
                    value: *value,
                })
            })
            .collect();
        let bytes = encode(StreamKind::Counters, &records);
        prop_assert_eq!(drain(&bytes).unwrap(), records);
    }

    #[test]
    fn truncation_yields_clean_error_or_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..1500),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        // Truncation at a chunk boundary is indistinguishable from a short
        // trace — but must never yield records that were not written, out
        // of order, or beyond the original count. Anything else must be a
        // clean error, never a panic.
        if let Ok(read) = drain(&bytes[..cut]) {
            prop_assert_eq!(&read[..], &records[..read.len()]);
        }
    }

    #[test]
    fn tolerant_reader_salvages_a_prefix_from_any_truncation(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..1500),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        // If the header itself was cut, open() fails cleanly and there is
        // nothing to salvage; otherwise a tolerant reader never errors on
        // truncation — it drains every CRC-valid chunk and stops cleanly.
        if let Ok(mut reader) = TraceReader::open(&bytes[..cut]) {
            reader.set_tolerant(true);
            let mut out = Vec::new();
            while let Some(rec) =
                reader.next().expect("tolerant read must not fail on truncation")
            {
                out.push(rec);
            }
            prop_assert!(out.len() <= records.len());
            prop_assert_eq!(&out[..], &records[..out.len()]);
        }
    }

    #[test]
    fn tolerant_reader_is_exact_on_intact_files(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 0..1500),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let mut reader = TraceReader::open(&bytes[..]).unwrap();
        reader.set_tolerant(true);
        let mut out = Vec::new();
        while let Some(rec) = reader.next().unwrap() {
            out.push(rec);
        }
        prop_assert_eq!(out, records);
        prop_assert!(reader.salvaged_error().is_none(),
            "an intact file must not report salvage");
    }

    #[test]
    fn tolerant_reader_survives_bit_flips_with_a_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip in the header makes open() fail cleanly; otherwise the
        // tolerant reader reads until corruption stops it (a decode error
        // inside a CRC-valid chunk may still surface — also clean).
        if let Ok(mut reader) = TraceReader::open(&bytes[..]) {
            reader.set_tolerant(true);
            let mut out = Vec::new();
            while let Ok(Some(rec)) = reader.next() {
                out.push(rec);
            }
            // Whatever was salvaged is a strict prefix — corruption can
            // cost records but can never invent or reorder them.
            prop_assert!(out.len() <= records.len());
            prop_assert_eq!(&out[..], &records[..out.len()]);
        }
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        pos_permille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let records = stamps_from(start, &deltas);
        let mut bytes = encode(StreamKind::IdleStamps, &records);
        let pos = (bytes.len() as u64 * pos_permille / 1000) as usize;
        bytes[pos] ^= 1 << bit;
        // Every byte is covered by a CRC (header or chunk) or is part of
        // the chunk framing whose inconsistency the reader checks.
        prop_assert!(drain(&bytes).is_err());
    }

    /// The incremental decoder yields exactly the file reader's records
    /// under any fragmentation of the same byte stream.
    #[test]
    fn stream_decoder_is_fragmentation_invariant(
        start in 0u64..1_000_000_000,
        deltas in prop::collection::vec(1u64..2_000_000, 0..3000),
        frags in prop::collection::vec(1usize..512, 1..64),
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let mut d = latlab_trace::StreamDecoder::new();
        let mut got = Vec::new();
        let mut rest = &bytes[..];
        let mut cuts = frags.iter().cycle();
        while !rest.is_empty() {
            let take = (*cuts.next().unwrap()).min(rest.len());
            let (head, tail) = rest.split_at(take);
            d.feed(head).unwrap();
            while let Some(rec) = d.poll() {
                got.push(rec);
            }
            rest = tail;
        }
        prop_assert_eq!(got, records);
        prop_assert!(d.is_clean_boundary());
        prop_assert_eq!(d.bytes_fed(), bytes.len() as u64);
    }

    /// Cutting the stream anywhere never panics the incremental decoder
    /// and never invents records: what was decoded is a strict prefix.
    #[test]
    fn stream_decoder_truncation_yields_prefix(
        start in 0u64..1_000_000,
        deltas in prop::collection::vec(1u64..200_000, 1..800),
        cut_permille in 0u64..1000,
    ) {
        let records = stamps_from(start, &deltas);
        let bytes = encode(StreamKind::IdleStamps, &records);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        let mut d = latlab_trace::StreamDecoder::new();
        d.feed(&bytes[..cut]).unwrap();
        let mut got = Vec::new();
        while let Some(rec) = d.poll() {
            got.push(rec);
        }
        prop_assert!(got.len() <= records.len());
        prop_assert_eq!(&got[..], &records[..got.len()]);
        if cut < bytes.len() {
            prop_assert!(!d.is_clean_boundary() || got.len() < records.len() || got.is_empty());
        }
    }
}
