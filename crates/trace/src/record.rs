//! Trace records: the unit of capture for every stream kind.

use crate::meta::StreamKind;

/// One message-API log event, flattened to plain integers for the wire.
///
/// `entry` and `outcome` are small discriminant codes whose meaning is
/// owned by `latlab-os` (which defines the `ApiEntry`/`ApiOutcome`
/// enums); `a` and `b` carry the packed payload (message id, key code,
/// wait budget...). Keeping the trace crate ignorant of OS types keeps
/// the dependency arrow pointing the right way: os depends on trace,
/// never the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApiRecord {
    /// Simulation time of the event, in CPU cycles.
    pub at_cycles: u64,
    /// Issuing thread id.
    pub thread: u32,
    /// API entry-point discriminant.
    pub entry: u8,
    /// Outcome discriminant.
    pub outcome: u8,
    /// First packed payload word.
    pub a: u64,
    /// Second packed payload word.
    pub b: u64,
    /// Message-queue depth after the call completed.
    pub queue_len: u32,
}

/// One periodic counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterRecord {
    /// Simulation time of the sample, in CPU cycles.
    pub at_cycles: u64,
    /// Counter id (meaning owned by the producer).
    pub counter: u32,
    /// Sampled value.
    pub value: u64,
}

/// A single trace record of any stream kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Record {
    /// An idle-loop cycle-counter stamp.
    Stamp(u64),
    /// A message-API log event.
    Api(ApiRecord),
    /// A counter sample.
    Counter(CounterRecord),
}

impl Record {
    /// The stream kind this record belongs to.
    pub fn kind(&self) -> StreamKind {
        match self {
            Record::Stamp(_) => StreamKind::IdleStamps,
            Record::Api(_) => StreamKind::ApiLog,
            Record::Counter(_) => StreamKind::Counters,
        }
    }

    /// The record's timestamp in cycles.
    pub fn at_cycles(&self) -> u64 {
        match self {
            Record::Stamp(s) => *s,
            Record::Api(r) => r.at_cycles,
            Record::Counter(r) => r.at_cycles,
        }
    }
}
