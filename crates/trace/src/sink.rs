//! Trace sinks: where instrumented code sends its records.
//!
//! The simulator's collection paths (the kernel's `Emit` handler, the
//! message-API log) emit through [`TraceSink`] so that the same code
//! path can buffer in memory ([`VecSink`], the historical `Vec` path),
//! stream to disk ([`WriterSink`]), or discard ([`NullSink`]).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::error::TraceError;
use crate::meta::TraceMeta;
use crate::record::Record;
use crate::writer::TraceWriter;

/// A destination for trace records.
///
/// `record` is infallible by design: instrumentation sites sit on the
/// simulator's hot path and must not grow error plumbing. Sinks that can
/// fail (disk writers) latch their first error and report it from
/// [`finish`](TraceSink::finish).
///
/// Sinks are `Send`: a recording run is owned by whichever worker thread
/// executes it (the parallel experiment engine fans scenario runs across
/// threads), so a boxed sink must be free to move to — and finish on —
/// that worker.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Accepts one record.
    fn record(&mut self, rec: &Record);

    /// Accepts a batch of idle-loop stamps.
    ///
    /// Must be observably identical to calling [`TraceSink::record`] with
    /// `Record::Stamp` once per value (the default does exactly that);
    /// sinks with a cheaper batched path override it. The kernel's idle
    /// fast-forward hands whole batches of synthesized stamps through
    /// here, amortizing the per-record dispatch and encode.
    fn emit_stamps(&mut self, stamps: &[u64]) {
        for &s in stamps {
            self.record(&Record::Stamp(s));
        }
    }

    /// Flushes buffered state and reports any deferred error.
    fn finish(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// Discards every record.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &Record) {}

    fn emit_stamps(&mut self, _stamps: &[u64]) {}
}

/// Buffers records in memory — the original `Vec<u64>` collection path,
/// expressed as a sink.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<Record>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffer for at least `additional` further records.
    ///
    /// Collection paths that know their expected volume up front (the
    /// idle loop emits one stamp per simulated millisecond) reserve once
    /// instead of paying repeated growth reallocations mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// All buffered records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Takes all buffered records, leaving the sink empty.
    pub fn take(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    /// Takes the buffered idle-loop stamps (non-stamp records are
    /// dropped), leaving the sink empty.
    pub fn take_stamps(&mut self) -> Vec<u64> {
        self.take()
            .into_iter()
            .filter_map(|r| match r {
                Record::Stamp(s) => Some(s),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &Record) {
        self.records.push(*rec);
    }

    fn emit_stamps(&mut self, stamps: &[u64]) {
        self.records
            .extend(stamps.iter().map(|&s| Record::Stamp(s)));
    }
}

/// Streams records to a [`TraceWriter`], latching the first error.
#[derive(Debug)]
pub struct WriterSink<W: Write + std::fmt::Debug + Send> {
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
}

impl<W: Write + std::fmt::Debug + Send> WriterSink<W> {
    /// Wraps a trace writer as a sink.
    pub fn new(writer: TraceWriter<W>) -> Self {
        WriterSink {
            writer: Some(writer),
            error: None,
        }
    }
}

impl<W: Write + std::fmt::Debug + Send> TraceSink for WriterSink<W> {
    fn record(&mut self, rec: &Record) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write(rec) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn emit_stamps(&mut self, stamps: &[u64]) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_stamps(stamps) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if let Some(w) = self.writer.take() {
            w.finish()?;
        }
        Ok(())
    }
}

/// Streams records to a trace file atomically: bytes go to `<path>.tmp`,
/// which is renamed to `path` only when [`finish`](TraceSink::finish)
/// succeeds. A crashed or killed run therefore never leaves a torn file
/// under the final name — readers either see a complete trace or nothing.
/// The staging file it does leave behind is itself salvageable: the
/// header is flushed eagerly and every complete chunk is CRC-framed, so
/// `trace inspect --tolerate-truncation <path>.tmp` recovers all records
/// up to the torn tail.
#[derive(Debug)]
pub struct FileSink {
    writer: Option<TraceWriter<BufWriter<File>>>,
    error: Option<TraceError>,
    tmp: PathBuf,
    path: PathBuf,
}

impl FileSink {
    /// Creates `<path>.tmp` and writes the trace header into it.
    pub fn create(path: impl Into<PathBuf>, meta: TraceMeta) -> Result<Self, TraceError> {
        let path = path.into();
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let writer = TraceWriter::create(BufWriter::new(File::create(&tmp)?), meta)?;
        Ok(FileSink {
            writer: Some(writer),
            error: None,
            tmp,
            path,
        })
    }

    /// The final path the trace will land at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, rec: &Record) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write(rec) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn emit_stamps(&mut self, stamps: &[u64]) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_stamps(stamps) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if let Some(e) = self.error.take() {
            // Leave the staging file for post-mortem salvage.
            return Err(e);
        }
        if let Some(w) = self.writer.take() {
            w.finish()?;
            std::fs::rename(&self.tmp, &self.path)?;
        }
        Ok(())
    }
}
