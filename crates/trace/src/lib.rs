//! # latlab-trace: binary trace capture and replay
//!
//! The paper's methodology (§2.2) rests on long streams of cycle-counter
//! stamps: one per idle-loop iteration, at roughly one per millisecond.
//! Real measurement sessions produce millions of stamps, and comparing
//! two runs (before/after an OS change, §4) requires keeping them. This
//! crate provides the durable form of those streams:
//!
//! - a **compact binary format** — varint delta-encoded records in
//!   CRC-32-framed chunks behind a self-describing header that carries
//!   the calibration baseline, CPU frequency, personality string, and
//!   run seed ([`TraceMeta`]);
//! - a **bounded-memory writer/reader pair** ([`TraceWriter`],
//!   [`TraceReader`]) that hold at most one chunk in memory, so traces
//!   far larger than RAM stream through cleanly;
//! - the [`TraceSink`] abstraction the simulator's collection paths emit
//!   through, with in-memory ([`VecSink`]), on-disk ([`WriterSink`]),
//!   and discarding ([`NullSink`]) implementations;
//! - a **push-based incremental decoder** ([`StreamDecoder`]) for
//!   transports that deliver the same byte stream in arbitrary fragments
//!   (sockets): partial headers and chunks are buffered until complete,
//!   with the exact validation the file reader performs. Idle-stamp
//!   streams decode columnarly — a whole chunk per pass, drained through
//!   [`StreamDecoder::poll_batch`] — with [`BufferPool`] recycling the
//!   frame and column buffers so steady-state ingest allocates nothing;
//! - the shared record [`codec`], the single implementation of the
//!   chunk-payload layout that every decoder above calls into.
//!
//! Three stream kinds share the container: idle-loop stamps, message-API
//! log events, and periodic counter samples ([`StreamKind`]).
//!
//! Trace files are external input: every read path returns
//! [`TraceError`] on corrupt or truncated data and never panics.

pub mod codec;
mod crc32;
mod error;
mod meta;
mod pool;
mod reader;
mod record;
mod sink;
mod stream;
mod varint;
mod writer;

pub use crc32::crc32;
pub use error::TraceError;
pub use meta::{StreamKind, TraceMeta, FORMAT_VERSION, MAGIC};
pub use pool::BufferPool;
pub use reader::TraceReader;
pub use record::{ApiRecord, CounterRecord, Record};
pub use sink::{FileSink, NullSink, TraceSink, VecSink, WriterSink};
pub use stream::{DecoderState, StreamDecoder};
pub use writer::{TraceWriter, MAX_CHUNK_PAYLOAD, MAX_CHUNK_RECORDS};

/// Default file extension for trace files.
pub const FILE_EXTENSION: &str = "ltrc";

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::{CpuFreq, SimDuration};

    fn stamp_meta() -> TraceMeta {
        TraceMeta {
            kind: StreamKind::IdleStamps,
            freq: CpuFreq::PENTIUM_100,
            baseline: SimDuration::from_cycles(250),
            seed: 42,
            personality: "test".to_owned(),
        }
    }

    #[test]
    fn stamps_round_trip_across_chunks() {
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        let stamps: Vec<u64> = (0..10_000u64).map(|i| i * i + i).collect();
        for &s in &stamps[1..] {
            w.write(&Record::Stamp(s)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::open(&bytes[..]).unwrap();
        assert_eq!(r.meta(), &stamp_meta());
        let mut back = Vec::new();
        while let Some(rec) = r.next().unwrap() {
            match rec {
                Record::Stamp(s) => back.push(s),
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert_eq!(back, stamps[1..]);
        assert!(r.chunks_read() >= 2, "expected multiple chunks");
    }

    #[test]
    fn non_monotonic_stamps_rejected_at_write() {
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        w.write(&Record::Stamp(100)).unwrap();
        let err = w.write(&Record::Stamp(100)).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonic { index: 1 }));
        let err = w.write(&Record::Stamp(50)).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonic { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        let err = w
            .write(&Record::Counter(CounterRecord {
                at_cycles: 1,
                counter: 0,
                value: 0,
            }))
            .unwrap_err();
        assert!(matches!(err, TraceError::KindMismatch { .. }));
    }

    #[test]
    fn api_records_round_trip() {
        let meta = TraceMeta {
            kind: StreamKind::ApiLog,
            ..stamp_meta()
        };
        let recs: Vec<ApiRecord> = (0..500u64)
            .map(|i| ApiRecord {
                at_cycles: i * 1000,
                thread: (i % 7) as u32,
                entry: (i % 5) as u8,
                outcome: (i % 3) as u8,
                a: i * 31,
                b: u64::MAX - i,
                queue_len: (i % 11) as u32,
            })
            .collect();
        let mut w = TraceWriter::create(Vec::new(), meta.clone()).unwrap();
        for r in &recs {
            w.write(&Record::Api(*r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = TraceReader::open(&bytes[..]).unwrap();
        let back: Vec<ApiRecord> = r
            .map(|rec| match rec.unwrap() {
                Record::Api(a) => a,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(back, recs);
    }

    #[test]
    fn counter_records_round_trip() {
        let meta = TraceMeta {
            kind: StreamKind::Counters,
            ..stamp_meta()
        };
        let recs: Vec<CounterRecord> = (0..300u64)
            .map(|i| CounterRecord {
                at_cycles: i * 17,
                counter: (i % 4) as u32,
                value: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            })
            .collect();
        let mut w = TraceWriter::create(Vec::new(), meta.clone()).unwrap();
        for r in &recs {
            w.write(&Record::Counter(*r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let r = TraceReader::open(&bytes[..]).unwrap();
        let back: Vec<CounterRecord> = r
            .map(|rec| match rec.unwrap() {
                Record::Counter(c) => c,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_trace_round_trips() {
        let w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::open(&bytes[..]).unwrap();
        assert!(r.next().unwrap().is_none());
        assert_eq!(r.records_read(), 0);
    }

    #[test]
    fn batched_stamps_are_byte_identical_to_per_record() {
        // Mixed batch sizes, spanning multiple chunk flushes, interleaved
        // with per-record writes: the fast-forward batch path must encode
        // the exact bytes the per-record path does.
        let stamps: Vec<u64> = (1..12_000u64).map(|i| i * 7 + (i % 5)).collect();
        let mut per_record = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        for &s in &stamps {
            per_record.write(&Record::Stamp(s)).unwrap();
        }
        let expected = per_record.finish().unwrap();

        let mut batched = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        let mut rest = &stamps[..];
        for size in [1usize, 7, 0, 4096, 5000, usize::MAX] {
            let take = size.min(rest.len());
            let (head, tail) = rest.split_at(take);
            if take % 2 == 0 {
                batched.write_stamps(head).unwrap();
            } else {
                // Odd splits go through the sink default for coverage.
                for &s in head {
                    batched.write(&Record::Stamp(s)).unwrap();
                }
            }
            rest = tail;
        }
        assert!(rest.is_empty());
        assert_eq!(batched.finish().unwrap(), expected);
    }

    #[test]
    fn batched_stamps_reject_non_monotonic() {
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        w.write_stamps(&[100, 200]).unwrap();
        let err = w.write_stamps(&[200]).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonic { index: 2 }));
        let err = w.write_stamps(&[300, 250]).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonic { .. }));
    }

    #[test]
    fn batched_stamps_reject_kind_mismatch() {
        let meta = TraceMeta {
            kind: StreamKind::ApiLog,
            ..stamp_meta()
        };
        let mut w = TraceWriter::create(Vec::new(), meta).unwrap();
        let err = w.write_stamps(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, TraceError::KindMismatch { .. }));
    }

    #[test]
    fn sink_emit_stamps_matches_per_record() {
        let stamps = [10u64, 20, 35, 90];
        let mut batched = WriterSink::new(TraceWriter::create(Vec::new(), stamp_meta()).unwrap());
        batched.emit_stamps(&stamps);
        let mut per_record =
            WriterSink::new(TraceWriter::create(Vec::new(), stamp_meta()).unwrap());
        for &s in &stamps {
            per_record.record(&Record::Stamp(s));
        }
        batched.finish().unwrap();
        per_record.finish().unwrap();
        let mut mem = VecSink::new();
        mem.emit_stamps(&stamps);
        assert_eq!(mem.take_stamps(), stamps.to_vec());
    }

    #[test]
    fn writer_sink_collects_and_vec_sink_matches() {
        let meta = stamp_meta();
        let mut disk = WriterSink::new(TraceWriter::create(Vec::new(), meta).unwrap());
        let mut mem = VecSink::new();
        for s in [10u64, 20, 35, 90] {
            let rec = Record::Stamp(s);
            disk.record(&rec);
            mem.record(&rec);
        }
        disk.finish().unwrap();
        assert_eq!(mem.take_stamps(), vec![10, 20, 35, 90]);
    }
}
