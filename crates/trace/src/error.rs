//! Trace-subsystem errors.
//!
//! Everything that loads data from outside the process goes through
//! [`TraceError`]: file readers, stamp validation, and sink finalization.
//! Corrupt input must surface as an error, never a panic.

use std::fmt;
use std::io;

use crate::meta::StreamKind;

/// Any failure while writing, reading, or interpreting a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion(u8),
    /// The header or a chunk failed its CRC check.
    CrcMismatch {
        /// Which chunk (0 = file header).
        chunk: u64,
    },
    /// The file ends in the middle of a header or chunk.
    Truncated,
    /// A structurally invalid field (bad kind byte, oversized chunk,
    /// malformed varint, record-count mismatch...).
    Corrupt {
        /// What was malformed.
        what: &'static str,
    },
    /// Trace stamps were not strictly increasing.
    NonMonotonic {
        /// Index of the offending record.
        index: usize,
    },
    /// The calibration baseline was zero.
    ZeroBaseline,
    /// A record of one stream kind was offered to a writer of another.
    KindMismatch {
        /// The stream's declared kind.
        expected: StreamKind,
        /// The record's kind.
        got: StreamKind,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a latlab trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::CrcMismatch { chunk } => {
                if *chunk == 0 {
                    write!(f, "header CRC mismatch")
                } else {
                    write!(f, "CRC mismatch in chunk {chunk}")
                }
            }
            TraceError::Truncated => write!(f, "trace file is truncated"),
            TraceError::Corrupt { what } => write!(f, "corrupt trace file: {what}"),
            TraceError::NonMonotonic { index } => {
                write!(
                    f,
                    "trace stamps must be strictly increasing (record {index})"
                )
            }
            TraceError::ZeroBaseline => write!(f, "baseline must be non-zero"),
            TraceError::KindMismatch { expected, got } => {
                write!(
                    f,
                    "stream kind mismatch: writer is {expected:?}, record is {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}
