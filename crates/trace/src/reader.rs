//! Bounded-memory trace reader.
//!
//! The reader holds at most one decoded chunk in memory and yields
//! records one at a time, so arbitrarily long traces can be summarized
//! in O(1) space. Every structural assumption about the input is
//! checked; corrupt or truncated files surface as [`TraceError`], never
//! a panic — traces are external data.

use std::io::Read;

use crate::codec;
use crate::crc32::crc32;
use crate::error::TraceError;
use crate::meta::TraceMeta;
use crate::record::Record;
use crate::writer::{MAX_CHUNK_PAYLOAD, MAX_CHUNK_RECORDS};

/// Streaming decoder for one trace file.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    meta: TraceMeta,
    chunk: Vec<u8>,
    pos: usize,
    remaining_in_chunk: u32,
    prev_at: u64,
    any_read: bool,
    records_read: u64,
    chunks_read: u64,
    done: bool,
    tolerant: bool,
    salvaged: Option<TraceError>,
}

/// Reads exactly `buf.len()` bytes unless EOF intervenes; returns the
/// number of bytes actually read.
fn read_full<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<usize, TraceError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace: reads and validates the header.
    pub fn open(mut input: R) -> Result<Self, TraceError> {
        let mut fixed = vec![0u8; TraceMeta::FIXED_LEN];
        let n = read_full(&mut input, &mut fixed)?;
        fixed.truncate(n);
        if n < TraceMeta::FIXED_LEN {
            // Let the decoder classify the failure (BadMagic vs Truncated).
            return Err(TraceMeta::decode(&fixed).unwrap_err());
        }
        if fixed[..4] != crate::meta::MAGIC {
            return Err(TraceError::BadMagic);
        }
        let plen = u16::from_le_bytes([fixed[6], fixed[7]]) as usize;
        let mut rest = vec![0u8; plen + 4];
        let n = read_full(&mut input, &mut rest)?;
        rest.truncate(n);
        fixed.extend_from_slice(&rest);
        let (meta, _) = TraceMeta::decode(&fixed)?;
        Ok(TraceReader {
            input,
            meta,
            chunk: Vec::new(),
            pos: 0,
            remaining_in_chunk: 0,
            prev_at: 0,
            any_read: false,
            records_read: 0,
            chunks_read: 0,
            done: false,
            tolerant: false,
            salvaged: None,
        })
    }

    /// Switches the reader into tolerant (salvage) mode.
    ///
    /// Chunks are independently framed and CRC-protected, so when a run
    /// is killed mid-write the file ends in a torn tail: a partial chunk
    /// header, a short payload, or a payload whose CRC no longer matches.
    /// In tolerant mode any such chunk-level failure ends the stream
    /// cleanly instead of erroring: every record of every CRC-valid chunk
    /// is still yielded, and the suppressed error is reported through
    /// [`salvaged_error`](TraceReader::salvaged_error). Errors *inside* a
    /// CRC-valid chunk (impossible without a writer bug) still surface.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// The chunk-level error suppressed by tolerant mode, if the trace
    /// turned out to be truncated or torn.
    pub fn salvaged_error(&self) -> Option<&TraceError> {
        self.salvaged.as_ref()
    }

    /// The stream metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Loads and CRC-checks the next chunk. Returns false at clean EOF.
    fn load_chunk(&mut self) -> Result<bool, TraceError> {
        let mut header = [0u8; 12];
        let n = read_full(&mut self.input, &mut header)?;
        if n == 0 {
            return Ok(false);
        }
        if n < header.len() {
            return Err(TraceError::Truncated);
        }
        let count = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if count == 0 || count > MAX_CHUNK_RECORDS {
            return Err(TraceError::Corrupt {
                what: "chunk record count out of range",
            });
        }
        if len == 0 || len > MAX_CHUNK_PAYLOAD {
            return Err(TraceError::Corrupt {
                what: "chunk payload length out of range",
            });
        }
        self.chunk.resize(len, 0);
        let n = read_full(&mut self.input, &mut self.chunk)?;
        if n < len {
            return Err(TraceError::Truncated);
        }
        if crc32(&self.chunk) != stored_crc {
            return Err(TraceError::CrcMismatch {
                chunk: self.chunks_read + 1,
            });
        }
        self.pos = 0;
        self.remaining_in_chunk = count;
        self.chunks_read += 1;
        Ok(true)
    }

    /// Decodes the next record, or `None` at clean end of file.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Record>, TraceError> {
        if self.done {
            return Ok(None);
        }
        if self.remaining_in_chunk == 0 {
            if self.pos != self.chunk.len() {
                self.done = true;
                return Err(TraceError::Corrupt {
                    what: "trailing bytes in chunk payload",
                });
            }
            match self.load_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return Ok(None);
                }
                Err(e) => {
                    self.done = true;
                    if self.tolerant {
                        // A torn tail: everything decoded so far came from
                        // CRC-valid chunks, so salvage it as a clean end.
                        self.salvaged = Some(e);
                        return Ok(None);
                    }
                    return Err(e);
                }
            }
        }
        match self.decode_record() {
            Ok(rec) => {
                self.remaining_in_chunk -= 1;
                self.records_read += 1;
                Ok(Some(rec))
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn decode_record(&mut self) -> Result<Record, TraceError> {
        let rec = codec::decode_record(
            &self.chunk,
            &mut self.pos,
            self.meta.kind,
            self.any_read,
            self.prev_at,
            self.records_read as usize,
        )?;
        self.prev_at = rec.at_cycles();
        self.any_read = true;
        Ok(rec)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Record, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        TraceReader::next(self).transpose()
    }
}
