//! Push-based incremental trace decoder for network transports.
//!
//! [`TraceReader`](crate::TraceReader) pulls from a `Read` and blocks
//! until a whole header or chunk is available — the right shape for
//! files, the wrong one for sockets, where bytes arrive in arbitrary
//! fragments and a frame boundary rarely lines up with a chunk boundary.
//! [`StreamDecoder`] inverts control: the transport [`feed`]s whatever
//! bytes it has, the decoder buffers partial headers and chunks until
//! they complete, and fully-decoded records are [`poll`]ed out. Decoded
//! bytes are discarded eagerly, so memory stays bounded by one chunk
//! (plus undecoded carry-over) regardless of stream length.
//!
//! The decode rules are identical to [`TraceReader`](crate::TraceReader):
//! same CRC checks, same monotonicity validation, same structural limits
//! on corrupt input — a byte stream fed through this decoder in any
//! fragmentation yields exactly the records the file reader yields, and
//! the same error on corrupt data. Once an error surfaces the decoder is
//! poisoned: further feeding returns the same error class.
//!
//! [`feed`]: StreamDecoder::feed
//! [`poll`]: StreamDecoder::poll

use std::collections::VecDeque;

use crate::crc32::crc32;
use crate::error::TraceError;
use crate::meta::{StreamKind, TraceMeta};
use crate::record::{ApiRecord, CounterRecord, Record};
use crate::varint;
use crate::writer::{MAX_CHUNK_PAYLOAD, MAX_CHUNK_RECORDS};

/// Incremental decoder state.
#[derive(Debug)]
pub struct StreamDecoder {
    /// Unconsumed input bytes (partial header or partial chunk).
    buf: Vec<u8>,
    /// Parsed file header, once enough bytes have arrived.
    meta: Option<TraceMeta>,
    /// Records decoded out of completed chunks, not yet polled.
    ready: VecDeque<Record>,
    prev_at: u64,
    any_read: bool,
    records_decoded: u64,
    chunks_decoded: u64,
    bytes_fed: u64,
    poisoned: bool,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// Creates a decoder expecting a trace header first.
    pub fn new() -> Self {
        StreamDecoder {
            buf: Vec::new(),
            meta: None,
            ready: VecDeque::new(),
            prev_at: 0,
            any_read: false,
            records_decoded: 0,
            chunks_decoded: 0,
            bytes_fed: 0,
            poisoned: false,
        }
    }

    /// The stream header, once decoded.
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.meta.as_ref()
    }

    /// Records decoded so far (including ones not yet polled).
    pub fn records_decoded(&self) -> u64 {
        self.records_decoded
    }

    /// Completed chunks decoded so far.
    pub fn chunks_decoded(&self) -> u64 {
        self.chunks_decoded
    }

    /// Total bytes accepted by [`feed`](StreamDecoder::feed).
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// True when every fed byte has been decoded — the stream currently
    /// ends on a clean header/chunk boundary. A complete upload must end
    /// in this state; a mid-chunk disconnect leaves it false.
    pub fn is_clean_boundary(&self) -> bool {
        !self.poisoned && self.buf.is_empty()
    }

    /// Bytes buffered awaiting the rest of a header or chunk.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Accepts the next fragment of the byte stream, decoding every
    /// header/chunk it completes.
    ///
    /// # Errors
    ///
    /// Any structural error a [`TraceReader`](crate::TraceReader) would
    /// report on the same byte stream: bad magic, CRC mismatch, corrupt
    /// fields, non-monotonic stamps. The decoder is poisoned afterwards.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        if self.poisoned {
            return Err(TraceError::Corrupt {
                what: "stream decoder already failed",
            });
        }
        self.bytes_fed += bytes.len() as u64;
        self.buf.extend_from_slice(bytes);
        match self.drain_buf() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Takes the next fully-decoded record, if one is ready.
    pub fn poll(&mut self) -> Option<Record> {
        self.ready.pop_front()
    }

    /// Decodes as many complete headers/chunks as the buffer holds.
    fn drain_buf(&mut self) -> Result<(), TraceError> {
        let mut consumed = 0usize;
        if self.meta.is_none() {
            match self.try_decode_header(consumed)? {
                Some(used) => consumed += used,
                None => {
                    self.compact(consumed);
                    return Ok(());
                }
            }
        }
        while let Some(used) = self.try_decode_chunk(consumed)? {
            consumed += used;
        }
        self.compact(consumed);
        Ok(())
    }

    /// Drops the first `consumed` bytes of the carry buffer.
    fn compact(&mut self, consumed: usize) {
        if consumed > 0 {
            self.buf.drain(..consumed);
        }
    }

    /// Attempts to decode the file header at `buf[from..]`. Returns the
    /// bytes consumed, or `None` if more input is needed.
    fn try_decode_header(&mut self, from: usize) -> Result<Option<usize>, TraceError> {
        let avail = &self.buf[from..];
        if avail.len() < 4 {
            // Reject wrong magic as soon as those bytes exist, so a
            // non-trace stream fails fast rather than buffering forever.
            if !avail.is_empty() && avail != &crate::meta::MAGIC[..avail.len()] {
                return Err(TraceError::BadMagic);
            }
            return Ok(None);
        }
        if avail[..4] != crate::meta::MAGIC {
            return Err(TraceError::BadMagic);
        }
        if avail.len() < TraceMeta::FIXED_LEN {
            return Ok(None);
        }
        let plen = u16::from_le_bytes([avail[6], avail[7]]) as usize;
        let total = TraceMeta::FIXED_LEN + plen + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let (meta, used) = TraceMeta::decode(&avail[..total])?;
        debug_assert_eq!(used, total);
        self.meta = Some(meta);
        Ok(Some(total))
    }

    /// Attempts to decode one framed chunk at `buf[from..]`. Returns the
    /// bytes consumed, or `None` if the chunk is still partial.
    fn try_decode_chunk(&mut self, from: usize) -> Result<Option<usize>, TraceError> {
        let avail = &self.buf[from..];
        if avail.len() < 12 {
            return Ok(None);
        }
        let count = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(avail[8..12].try_into().unwrap());
        if count == 0 || count > MAX_CHUNK_RECORDS {
            return Err(TraceError::Corrupt {
                what: "chunk record count out of range",
            });
        }
        if len == 0 || len > MAX_CHUNK_PAYLOAD {
            return Err(TraceError::Corrupt {
                what: "chunk payload length out of range",
            });
        }
        if avail.len() < 12 + len {
            return Ok(None);
        }
        let payload = &avail[12..12 + len];
        if crc32(payload) != stored_crc {
            return Err(TraceError::CrcMismatch {
                chunk: self.chunks_decoded + 1,
            });
        }
        // Decode every record of the chunk. Borrow gymnastics: the record
        // decode needs `&mut self` state (prev_at etc.), so copy the
        // payload cursor locally and walk it with a free function.
        let meta_kind = self.meta.as_ref().expect("header precedes chunks").kind;
        let mut pos = 0usize;
        for _ in 0..count {
            let rec = decode_one(
                payload,
                &mut pos,
                meta_kind,
                self.any_read,
                self.prev_at,
                self.records_decoded as usize,
            )?;
            self.prev_at = rec.at_cycles();
            self.any_read = true;
            self.records_decoded += 1;
            self.ready.push_back(rec);
        }
        if pos != len {
            return Err(TraceError::Corrupt {
                what: "trailing bytes in chunk payload",
            });
        }
        self.chunks_decoded += 1;
        Ok(Some(12 + len))
    }
}

/// Decodes one record from a chunk payload — the same field layout
/// [`TraceReader`](crate::TraceReader) decodes.
fn decode_one(
    payload: &[u8],
    pos: &mut usize,
    kind: StreamKind,
    any_read: bool,
    prev_at: u64,
    index: usize,
) -> Result<Record, TraceError> {
    let delta = varint::decode(payload, pos)?;
    let at = if any_read {
        if kind == StreamKind::IdleStamps && delta == 0 {
            return Err(TraceError::NonMonotonic { index });
        }
        prev_at.checked_add(delta).ok_or(TraceError::Corrupt {
            what: "timestamp delta overflows 64 bits",
        })?
    } else {
        delta
    };
    let decode_u32 = |payload: &[u8], pos: &mut usize, what: &'static str| {
        let v = varint::decode(payload, pos)?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt { what })
    };
    let decode_byte = |payload: &[u8], pos: &mut usize, what: &'static str| {
        let Some(&b) = payload.get(*pos) else {
            return Err(TraceError::Corrupt { what });
        };
        *pos += 1;
        Ok(b)
    };
    Ok(match kind {
        StreamKind::IdleStamps => Record::Stamp(at),
        StreamKind::ApiLog => {
            let thread = decode_u32(payload, pos, "thread id exceeds 32 bits")?;
            let entry = decode_byte(payload, pos, "API record missing entry byte")?;
            let outcome = decode_byte(payload, pos, "API record missing outcome byte")?;
            let a = varint::decode(payload, pos)?;
            let b = varint::decode(payload, pos)?;
            let queue_len = decode_u32(payload, pos, "queue length exceeds 32 bits")?;
            Record::Api(ApiRecord {
                at_cycles: at,
                thread,
                entry,
                outcome,
                a,
                b,
                queue_len,
            })
        }
        StreamKind::Counters => {
            let counter = decode_u32(payload, pos, "counter id exceeds 32 bits")?;
            let value = varint::decode(payload, pos)?;
            Record::Counter(CounterRecord {
                at_cycles: at,
                counter,
                value,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use latlab_des::{CpuFreq, SimDuration};

    fn stamp_meta() -> TraceMeta {
        TraceMeta {
            kind: StreamKind::IdleStamps,
            freq: CpuFreq::PENTIUM_100,
            baseline: SimDuration::from_cycles(250),
            seed: 42,
            personality: "stream-test".to_owned(),
        }
    }

    fn encoded_stamps(n: u64) -> (Vec<u8>, Vec<u64>) {
        let stamps: Vec<u64> = (1..=n).map(|i| i * 97 + (i % 13)).collect();
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        for &s in &stamps {
            w.write(&Record::Stamp(s)).unwrap();
        }
        (w.finish().unwrap(), stamps)
    }

    fn drain(d: &mut StreamDecoder) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(rec) = d.poll() {
            match rec {
                Record::Stamp(s) => out.push(s),
                other => panic!("unexpected record {other:?}"),
            }
        }
        out
    }

    #[test]
    fn byte_by_byte_feeding_matches_reader() {
        let (bytes, stamps) = encoded_stamps(10_000);
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for &b in &bytes {
            d.feed(&[b]).unwrap();
            got.extend(drain(&mut d));
        }
        assert_eq!(got, stamps);
        assert_eq!(d.meta(), Some(&stamp_meta()));
        assert!(d.is_clean_boundary());
        assert!(d.chunks_decoded() >= 2);
        assert_eq!(d.records_decoded(), stamps.len() as u64);
    }

    #[test]
    fn varied_fragment_sizes_match_whole_feed() {
        let (bytes, stamps) = encoded_stamps(5_000);
        for frag in [1usize, 3, 7, 64, 1024, usize::MAX] {
            let mut d = StreamDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(frag.min(bytes.len())) {
                d.feed(piece).unwrap();
                got.extend(drain(&mut d));
            }
            assert_eq!(got, stamps, "fragment size {frag}");
            assert!(d.is_clean_boundary());
        }
    }

    #[test]
    fn partial_chunk_is_not_a_clean_boundary() {
        let (bytes, stamps) = encoded_stamps(3_000);
        let cut = bytes.len() - 10; // mid-final-chunk
        let mut d = StreamDecoder::new();
        d.feed(&bytes[..cut]).unwrap();
        let got = drain(&mut d);
        assert!(got.len() < stamps.len());
        assert_eq!(got[..], stamps[..got.len()]);
        assert!(!d.is_clean_boundary());
        assert!(d.pending_bytes() > 0);
        // Feeding the rest completes the stream.
        d.feed(&bytes[cut..]).unwrap();
        assert!(d.is_clean_boundary());
    }

    #[test]
    fn corrupt_chunk_poisons_decoder() {
        let (mut bytes, _) = encoded_stamps(100);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip a payload byte in the final chunk
        let mut d = StreamDecoder::new();
        let err = d.feed(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::CrcMismatch { .. }), "{err}");
        assert!(d.feed(&[0]).is_err(), "decoder must stay poisoned");
    }

    #[test]
    fn non_trace_stream_fails_fast() {
        let mut d = StreamDecoder::new();
        let err = d.feed(b"GET / HTTP/1.1\r\n").unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
        // Even a short wrong prefix is rejected without waiting for more.
        let mut d = StreamDecoder::new();
        assert!(matches!(d.feed(b"XY").unwrap_err(), TraceError::BadMagic));
    }

    #[test]
    fn api_records_round_trip_incrementally() {
        let meta = TraceMeta {
            kind: StreamKind::ApiLog,
            ..stamp_meta()
        };
        let recs: Vec<ApiRecord> = (0..700u64)
            .map(|i| ApiRecord {
                at_cycles: i * 1000,
                thread: (i % 7) as u32,
                entry: (i % 5) as u8,
                outcome: (i % 3) as u8,
                a: i * 31,
                b: u64::MAX - i,
                queue_len: (i % 11) as u32,
            })
            .collect();
        let mut w = TraceWriter::create(Vec::new(), meta).unwrap();
        for r in &recs {
            w.write(&Record::Api(*r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(17) {
            d.feed(piece).unwrap();
            while let Some(rec) = d.poll() {
                match rec {
                    Record::Api(a) => got.push(a),
                    other => panic!("unexpected record {other:?}"),
                }
            }
        }
        assert_eq!(got, recs);
        assert!(d.is_clean_boundary());
    }
}
