//! Push-based incremental trace decoder for network transports.
//!
//! [`TraceReader`](crate::TraceReader) pulls from a `Read` and blocks
//! until a whole header or chunk is available — the right shape for
//! files, the wrong one for sockets, where bytes arrive in arbitrary
//! fragments and a frame boundary rarely lines up with a chunk boundary.
//! [`StreamDecoder`] inverts control: the transport [`feed`]s whatever
//! bytes it has, the decoder buffers partial headers and chunks until
//! they complete, and fully-decoded records are [`poll`]ed out. Decoded
//! bytes are discarded eagerly, so memory stays bounded by one chunk
//! (plus undecoded carry-over) regardless of stream length.
//!
//! # The columnar batch path
//!
//! Idle-stamp streams — the telemetry firehose — decode columnarly: a
//! complete chunk's varint deltas are expanded into absolute stamps in
//! one pass ([`crate::codec::decode_stamp_chunk`]) with no per-record
//! enum construction or queue traffic, CRC-checked once per chunk. The
//! whole column drains through [`poll_batch`] into a caller-owned
//! reusable `Vec<u64>`; [`poll`] still works, serving the same column
//! one `Record::Stamp` at a time. Feeding is zero-copy in the steady
//! state: when no partial header/chunk is carried over, chunks decode
//! straight out of the caller's slice and only the unconsumed tail is
//! copied into the carry buffer.
//!
//! [`StreamDecoder::new_scalar`] builds a decoder with the columnar
//! path disabled: idle stamps decode one record at a time through the
//! same per-record codec as every other stream kind, materializing a
//! `Record::Stamp` in the ready queue per stamp. That is the decoder's
//! original shape, kept as the measured reference the batch path is
//! compared against (`latlab-perf-v2`'s ingest section, the server's
//! `--scalar-ingest` flag).
//!
//! The decode rules are identical to [`TraceReader`](crate::TraceReader):
//! same CRC checks, same monotonicity validation, same structural limits
//! on corrupt input — a byte stream fed through this decoder in any
//! fragmentation yields exactly the records the file reader yields, and
//! the same error on corrupt data. Once an error surfaces the decoder is
//! poisoned: further feeding returns the same error class.
//!
//! [`feed`]: StreamDecoder::feed
//! [`poll`]: StreamDecoder::poll
//! [`poll_batch`]: StreamDecoder::poll_batch

use std::collections::VecDeque;

use crate::codec;
use crate::crc32::crc32;
use crate::error::TraceError;
use crate::meta::{StreamKind, TraceMeta};
use crate::record::Record;
use crate::writer::{MAX_CHUNK_PAYLOAD, MAX_CHUNK_RECORDS};

/// Incremental decoder state.
#[derive(Debug)]
pub struct StreamDecoder {
    /// Unconsumed input bytes (partial header or partial chunk). Kept
    /// outside [`DecoderCore`] so the core can decode out of either this
    /// buffer or the caller's slice without aliasing itself.
    buf: Vec<u8>,
    /// Total bytes accepted by [`feed`](StreamDecoder::feed).
    bytes_fed: u64,
    core: DecoderCore,
}

/// Everything but the carry buffer: decode state plus decoded output.
#[derive(Debug)]
struct DecoderCore {
    /// Parsed file header, once enough bytes have arrived.
    meta: Option<TraceMeta>,
    /// Non-stamp records decoded out of completed chunks, not yet polled.
    ready: VecDeque<Record>,
    /// Columnar idle-stamp store: decoded absolute stamps awaiting a
    /// poll. `stamps[stamp_head..]` is the live window.
    stamps: Vec<u64>,
    stamp_head: usize,
    prev_at: u64,
    any_read: bool,
    records_decoded: u64,
    chunks_decoded: u64,
    poisoned: bool,
    /// When set, idle stamps take the per-record reference path into
    /// `ready` instead of the columnar store.
    scalar: bool,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// Creates a decoder expecting a trace header first.
    pub fn new() -> Self {
        Self::with_mode(false)
    }

    /// Creates a decoder with the columnar batch path disabled: idle
    /// stamps decode per record through [`crate::codec::decode_record`]
    /// into the ready queue, one `Record` and one queue push per stamp.
    ///
    /// This is the reference decode shape. It yields byte-for-byte the
    /// same records and errors as the default decoder — the property
    /// tests assert so — and exists so the batch path has an honest
    /// scalar baseline to be benchmarked against ([`poll_batch`] on a
    /// scalar decoder always returns 0; use [`poll`]).
    ///
    /// [`poll`]: StreamDecoder::poll
    /// [`poll_batch`]: StreamDecoder::poll_batch
    pub fn new_scalar() -> Self {
        Self::with_mode(true)
    }

    fn with_mode(scalar: bool) -> Self {
        StreamDecoder {
            buf: Vec::new(),
            bytes_fed: 0,
            core: DecoderCore {
                meta: None,
                ready: VecDeque::new(),
                stamps: Vec::new(),
                stamp_head: 0,
                prev_at: 0,
                any_read: false,
                records_decoded: 0,
                chunks_decoded: 0,
                poisoned: false,
                scalar,
            },
        }
    }

    /// The stream header, once decoded.
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.core.meta.as_ref()
    }

    /// Records decoded so far (including ones not yet polled).
    pub fn records_decoded(&self) -> u64 {
        self.core.records_decoded
    }

    /// Completed chunks decoded so far.
    pub fn chunks_decoded(&self) -> u64 {
        self.core.chunks_decoded
    }

    /// Total bytes accepted by [`feed`](StreamDecoder::feed).
    pub fn bytes_fed(&self) -> u64 {
        self.bytes_fed
    }

    /// True when every fed byte has been decoded — the stream currently
    /// ends on a clean header/chunk boundary. A complete upload must end
    /// in this state; a mid-chunk disconnect leaves it false.
    pub fn is_clean_boundary(&self) -> bool {
        !self.core.poisoned && self.buf.is_empty()
    }

    /// Bytes buffered awaiting the rest of a header or chunk.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Accepts the next fragment of the byte stream, decoding every
    /// header/chunk it completes.
    ///
    /// # Errors
    ///
    /// Any structural error a [`TraceReader`](crate::TraceReader) would
    /// report on the same byte stream: bad magic, CRC mismatch, corrupt
    /// fields, non-monotonic stamps. The decoder is poisoned afterwards.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        if self.core.poisoned {
            return Err(TraceError::Corrupt {
                what: "stream decoder already failed",
            });
        }
        self.bytes_fed += bytes.len() as u64;
        let result = if self.buf.is_empty() {
            // Zero-copy fast path: decode straight from the caller's
            // slice; only the unconsumed tail (a partial header or
            // chunk, usually small) is copied into the carry buffer.
            let mut consumed = 0usize;
            let r = self.core.drain(bytes, &mut consumed);
            if r.is_ok() && consumed < bytes.len() {
                self.buf.extend_from_slice(&bytes[consumed..]);
            }
            r
        } else {
            self.buf.extend_from_slice(bytes);
            let mut consumed = 0usize;
            let r = self.core.drain(&self.buf, &mut consumed);
            if consumed > 0 {
                self.buf.drain(..consumed);
            }
            r
        };
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                self.core.poisoned = true;
                Err(e)
            }
        }
    }

    /// Takes the next fully-decoded record, if one is ready.
    pub fn poll(&mut self) -> Option<Record> {
        let core = &mut self.core;
        if let Some(&s) = core.stamps.get(core.stamp_head) {
            core.stamp_head += 1;
            if core.stamp_head == core.stamps.len() {
                core.stamps.clear();
                core.stamp_head = 0;
            }
            return Some(Record::Stamp(s));
        }
        core.ready.pop_front()
    }

    /// Captures the decoder's resumable state so an equivalent decoder
    /// can be rebuilt later (in another process) with
    /// [`restore`](Self::restore) and continue mid-stream.
    ///
    /// Returns `None` when the decoder is poisoned or still holds
    /// decoded-but-unpolled records — export is only meaningful once the
    /// caller has drained everything it fed, which is exactly the state
    /// a frame-boundary checkpoint runs in.
    pub fn export_state(&self) -> Option<DecoderState> {
        let core = &self.core;
        if core.poisoned || !core.ready.is_empty() || core.stamp_head < core.stamps.len() {
            return None;
        }
        Some(DecoderState {
            meta: core.meta.clone(),
            carry: self.buf.clone(),
            bytes_fed: self.bytes_fed,
            prev_at: core.prev_at,
            any_read: core.any_read,
            records_decoded: core.records_decoded,
            chunks_decoded: core.chunks_decoded,
            scalar: core.scalar,
        })
    }

    /// Rebuilds a decoder from an [`export_state`](Self::export_state)
    /// image. Feeding the restored decoder the remainder of the stream
    /// yields exactly what the original would have yielded.
    pub fn restore(state: DecoderState) -> Self {
        StreamDecoder {
            buf: state.carry,
            bytes_fed: state.bytes_fed,
            core: DecoderCore {
                meta: state.meta,
                ready: VecDeque::new(),
                stamps: Vec::new(),
                stamp_head: 0,
                prev_at: state.prev_at,
                any_read: state.any_read,
                records_decoded: state.records_decoded,
                chunks_decoded: state.chunks_decoded,
                poisoned: false,
                scalar: state.scalar,
            },
        }
    }

    /// Drains every decoded-but-unpolled idle stamp into `out` in one
    /// `memcpy`-shaped append; returns how many were appended.
    ///
    /// Equivalent to calling [`poll`](StreamDecoder::poll) until it runs
    /// dry and collecting the `Record::Stamp` payloads — the property
    /// tests assert exactly that — but without constructing a `Record`
    /// per stamp. Pass a reusable buffer to keep the batch path
    /// allocation-free. Non-stamp streams always return 0 (their records
    /// remain available through `poll`).
    pub fn poll_batch(&mut self, out: &mut Vec<u64>) -> usize {
        let core = &mut self.core;
        let n = core.stamps.len() - core.stamp_head;
        if n > 0 {
            out.extend_from_slice(&core.stamps[core.stamp_head..]);
            core.stamps.clear();
            core.stamp_head = 0;
        }
        n
    }
}

/// A [`StreamDecoder`]'s resumable state, captured at a point where all
/// decoded records have been polled out. Everything here is plain data,
/// so a persistence layer can serialize it (the serve checkpoint codec
/// does) and [`StreamDecoder::restore`] an equivalent decoder after a
/// crash — mid-chunk carry bytes included.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderState {
    /// The parsed stream header, if the decoder had seen one.
    pub meta: Option<TraceMeta>,
    /// Unconsumed input bytes: a partial header or partial chunk.
    pub carry: Vec<u8>,
    /// Total bytes the original decoder had accepted.
    pub bytes_fed: u64,
    /// Last decoded stamp (monotonicity anchor).
    pub prev_at: u64,
    /// Whether any record had been decoded yet.
    pub any_read: bool,
    /// Records decoded so far.
    pub records_decoded: u64,
    /// Chunks decoded so far.
    pub chunks_decoded: u64,
    /// Whether the decoder ran in scalar (per-record) mode.
    pub scalar: bool,
}

impl DecoderCore {
    /// Decodes as many complete headers/chunks as `data[*consumed..]`
    /// holds, advancing `*consumed` past each completed unit.
    fn drain(&mut self, data: &[u8], consumed: &mut usize) -> Result<(), TraceError> {
        if self.meta.is_none() {
            match self.try_decode_header(data, *consumed)? {
                Some(used) => *consumed += used,
                None => return Ok(()),
            }
        }
        while let Some(used) = self.try_decode_chunk(data, *consumed)? {
            *consumed += used;
        }
        Ok(())
    }

    /// Attempts to decode the file header at `data[from..]`. Returns the
    /// bytes consumed, or `None` if more input is needed.
    fn try_decode_header(&mut self, data: &[u8], from: usize) -> Result<Option<usize>, TraceError> {
        let avail = &data[from..];
        if avail.len() < 4 {
            // Reject wrong magic as soon as those bytes exist, so a
            // non-trace stream fails fast rather than buffering forever.
            if !avail.is_empty() && avail != &crate::meta::MAGIC[..avail.len()] {
                return Err(TraceError::BadMagic);
            }
            return Ok(None);
        }
        if avail[..4] != crate::meta::MAGIC {
            return Err(TraceError::BadMagic);
        }
        if avail.len() < TraceMeta::FIXED_LEN {
            return Ok(None);
        }
        let plen = u16::from_le_bytes([avail[6], avail[7]]) as usize;
        let total = TraceMeta::FIXED_LEN + plen + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let (meta, used) = TraceMeta::decode(&avail[..total])?;
        debug_assert_eq!(used, total);
        self.meta = Some(meta);
        Ok(Some(total))
    }

    /// Attempts to decode one framed chunk at `data[from..]`. Returns the
    /// bytes consumed, or `None` if the chunk is still partial.
    fn try_decode_chunk(&mut self, data: &[u8], from: usize) -> Result<Option<usize>, TraceError> {
        let avail = &data[from..];
        if avail.len() < 12 {
            return Ok(None);
        }
        let count = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(avail[4..8].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(avail[8..12].try_into().unwrap());
        if count == 0 || count > MAX_CHUNK_RECORDS {
            return Err(TraceError::Corrupt {
                what: "chunk record count out of range",
            });
        }
        if len == 0 || len > MAX_CHUNK_PAYLOAD {
            return Err(TraceError::Corrupt {
                what: "chunk payload length out of range",
            });
        }
        if avail.len() < 12 + len {
            return Ok(None);
        }
        let payload = &avail[12..12 + len];
        if crc32(payload) != stored_crc {
            return Err(TraceError::CrcMismatch {
                chunk: self.chunks_decoded + 1,
            });
        }
        let kind = self.meta.as_ref().expect("header precedes chunks").kind;
        let pos = if kind == StreamKind::IdleStamps && !self.scalar {
            // Columnar: the whole chunk in one pass, straight into the
            // stamp column. State advances per stamp, so a mid-chunk
            // error leaves the decoded prefix pollable — exactly what
            // the scalar path leaves behind.
            codec::decode_stamp_chunk(
                payload,
                count,
                &mut self.stamps,
                &mut self.prev_at,
                &mut self.any_read,
                &mut self.records_decoded,
            )?
        } else {
            let mut pos = 0usize;
            for _ in 0..count {
                let rec = codec::decode_record(
                    payload,
                    &mut pos,
                    kind,
                    self.any_read,
                    self.prev_at,
                    self.records_decoded as usize,
                )?;
                self.prev_at = rec.at_cycles();
                self.any_read = true;
                self.records_decoded += 1;
                self.ready.push_back(rec);
            }
            pos
        };
        if pos != len {
            return Err(TraceError::Corrupt {
                what: "trailing bytes in chunk payload",
            });
        }
        self.chunks_decoded += 1;
        Ok(Some(12 + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ApiRecord;
    use crate::writer::TraceWriter;
    use latlab_des::{CpuFreq, SimDuration};

    fn stamp_meta() -> TraceMeta {
        TraceMeta {
            kind: StreamKind::IdleStamps,
            freq: CpuFreq::PENTIUM_100,
            baseline: SimDuration::from_cycles(250),
            seed: 42,
            personality: "stream-test".to_owned(),
        }
    }

    fn encoded_stamps(n: u64) -> (Vec<u8>, Vec<u64>) {
        let stamps: Vec<u64> = (1..=n).map(|i| i * 97 + (i % 13)).collect();
        let mut w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        for &s in &stamps {
            w.write(&Record::Stamp(s)).unwrap();
        }
        (w.finish().unwrap(), stamps)
    }

    fn drain(d: &mut StreamDecoder) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(rec) = d.poll() {
            match rec {
                Record::Stamp(s) => out.push(s),
                other => panic!("unexpected record {other:?}"),
            }
        }
        out
    }

    #[test]
    fn byte_by_byte_feeding_matches_reader() {
        let (bytes, stamps) = encoded_stamps(10_000);
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for &b in &bytes {
            d.feed(&[b]).unwrap();
            got.extend(drain(&mut d));
        }
        assert_eq!(got, stamps);
        assert_eq!(d.meta(), Some(&stamp_meta()));
        assert!(d.is_clean_boundary());
        assert!(d.chunks_decoded() >= 2);
        assert_eq!(d.records_decoded(), stamps.len() as u64);
    }

    #[test]
    fn varied_fragment_sizes_match_whole_feed() {
        let (bytes, stamps) = encoded_stamps(5_000);
        for frag in [1usize, 3, 7, 64, 1024, usize::MAX] {
            let mut d = StreamDecoder::new();
            let mut got = Vec::new();
            for piece in bytes.chunks(frag.min(bytes.len())) {
                d.feed(piece).unwrap();
                got.extend(drain(&mut d));
            }
            assert_eq!(got, stamps, "fragment size {frag}");
            assert!(d.is_clean_boundary());
        }
    }

    #[test]
    fn poll_batch_drains_the_stamp_column() {
        let (bytes, stamps) = encoded_stamps(9_000);
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(777) {
            d.feed(piece).unwrap();
            let before = got.len();
            let n = d.poll_batch(&mut got);
            assert_eq!(got.len(), before + n);
            // The column is drained: a scalar poll finds nothing.
            assert!(d.poll().is_none());
        }
        assert_eq!(got, stamps);
        assert!(d.is_clean_boundary());
    }

    #[test]
    fn poll_and_poll_batch_interleave() {
        let (bytes, stamps) = encoded_stamps(6_000);
        let mut d = StreamDecoder::new();
        d.feed(&bytes).unwrap();
        let mut got = Vec::new();
        // Alternate: a few scalar polls, then a batch drain, then feed
        // nothing more — order must be preserved across the mix.
        for _ in 0..5 {
            match d.poll() {
                Some(Record::Stamp(s)) => got.push(s),
                other => panic!("unexpected {other:?}"),
            }
        }
        d.poll_batch(&mut got);
        assert_eq!(got, stamps);
    }

    #[test]
    fn scalar_mode_matches_columnar_mode() {
        let (bytes, stamps) = encoded_stamps(8_000);
        for frag in [1usize, 13, 997, usize::MAX] {
            let mut scalar = StreamDecoder::new_scalar();
            let mut batch = StreamDecoder::new();
            let mut via_scalar = Vec::new();
            let mut via_batch = Vec::new();
            for piece in bytes.chunks(frag.min(bytes.len())) {
                scalar.feed(piece).unwrap();
                batch.feed(piece).unwrap();
                // A scalar decoder has no stamp column to drain.
                assert_eq!(scalar.poll_batch(&mut via_batch), 0);
                via_scalar.extend(drain(&mut scalar));
                batch.poll_batch(&mut via_batch);
            }
            assert_eq!(via_scalar, stamps, "fragment size {frag}");
            assert_eq!(via_batch, stamps, "fragment size {frag}");
            assert!(scalar.is_clean_boundary());
            assert_eq!(scalar.records_decoded(), batch.records_decoded());
            assert_eq!(scalar.chunks_decoded(), batch.chunks_decoded());
        }
    }

    #[test]
    fn scalar_mode_reports_the_same_errors() {
        // Zero delta mid-stream: both modes must fail with NonMonotonic
        // at the same record index and keep the decoded prefix pollable.
        // TraceWriter rejects non-monotonic input, so take its header
        // and frame a bad chunk by hand.
        let w = TraceWriter::create(Vec::new(), stamp_meta()).unwrap();
        let header = w.finish().unwrap();
        let mut payload = Vec::new();
        for delta in [100u64, 100, 0, 100] {
            crate::varint::encode(delta, &mut payload);
        }
        let mut bytes = header;
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let mut scalar = StreamDecoder::new_scalar();
        let mut batch = StreamDecoder::new();
        let es = scalar.feed(&bytes).unwrap_err();
        let eb = batch.feed(&bytes).unwrap_err();
        assert_eq!(format!("{es:?}"), format!("{eb:?}"));
        assert!(matches!(es, TraceError::NonMonotonic { index: 2 }), "{es}");
        assert_eq!(drain(&mut scalar), vec![100, 200]);
        let mut col = Vec::new();
        batch.poll_batch(&mut col);
        assert_eq!(col, vec![100, 200]);
    }

    #[test]
    fn partial_chunk_is_not_a_clean_boundary() {
        let (bytes, stamps) = encoded_stamps(3_000);
        let cut = bytes.len() - 10; // mid-final-chunk
        let mut d = StreamDecoder::new();
        d.feed(&bytes[..cut]).unwrap();
        let got = drain(&mut d);
        assert!(got.len() < stamps.len());
        assert_eq!(got[..], stamps[..got.len()]);
        assert!(!d.is_clean_boundary());
        assert!(d.pending_bytes() > 0);
        // Feeding the rest completes the stream.
        d.feed(&bytes[cut..]).unwrap();
        assert!(d.is_clean_boundary());
    }

    #[test]
    fn corrupt_chunk_poisons_decoder() {
        let (mut bytes, _) = encoded_stamps(100);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip a payload byte in the final chunk
        let mut d = StreamDecoder::new();
        let err = d.feed(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::CrcMismatch { .. }), "{err}");
        assert!(d.feed(&[0]).is_err(), "decoder must stay poisoned");
    }

    #[test]
    fn non_trace_stream_fails_fast() {
        let mut d = StreamDecoder::new();
        let err = d.feed(b"GET / HTTP/1.1\r\n").unwrap_err();
        assert!(matches!(err, TraceError::BadMagic));
        // Even a short wrong prefix is rejected without waiting for more.
        let mut d = StreamDecoder::new();
        assert!(matches!(d.feed(b"XY").unwrap_err(), TraceError::BadMagic));
    }

    #[test]
    fn export_restore_mid_stream_matches_straight_decode() {
        let (bytes, stamps) = encoded_stamps(7_000);
        // Split at every flavour of boundary: mid-header, mid-chunk,
        // chunk-aligned, stream end.
        for cut in [3usize, 17, 500, 1024, bytes.len() - 9, bytes.len()] {
            let mut first = StreamDecoder::new();
            first.feed(&bytes[..cut]).unwrap();
            let mut got = Vec::new();
            first.poll_batch(&mut got);
            let state = first.export_state().expect("drained decoder exports");
            let mut second = StreamDecoder::restore(state);
            assert_eq!(second.bytes_fed(), cut as u64);
            second.feed(&bytes[cut..]).unwrap();
            second.poll_batch(&mut got);
            assert_eq!(got, stamps, "cut {cut}");
            assert!(second.is_clean_boundary());
            assert_eq!(second.records_decoded(), stamps.len() as u64);
            assert_eq!(second.bytes_fed(), bytes.len() as u64);
        }
    }

    #[test]
    fn export_refuses_undrained_or_poisoned_decoders() {
        let (bytes, _) = encoded_stamps(200);
        let mut d = StreamDecoder::new();
        d.feed(&bytes).unwrap();
        // Stamps decoded but not yet polled: no export.
        assert!(d.export_state().is_none());
        let mut col = Vec::new();
        d.poll_batch(&mut col);
        assert!(d.export_state().is_some());

        let mut poisoned = StreamDecoder::new();
        poisoned.feed(b"NOPE").unwrap_err();
        assert!(poisoned.export_state().is_none());
    }

    #[test]
    fn export_restore_preserves_scalar_mode() {
        let (bytes, stamps) = encoded_stamps(300);
        let mut d = StreamDecoder::new_scalar();
        d.feed(&bytes[..40]).unwrap();
        let got_prefix = drain(&mut d);
        let state = d.export_state().unwrap();
        assert!(state.scalar);
        let mut r = StreamDecoder::restore(state);
        r.feed(&bytes[40..]).unwrap();
        // Still scalar: poll_batch drains nothing, poll yields the rest.
        let mut none = Vec::new();
        assert_eq!(r.poll_batch(&mut none), 0);
        let mut got = got_prefix;
        got.extend(drain(&mut r));
        assert_eq!(got, stamps);
    }

    #[test]
    fn api_records_round_trip_incrementally() {
        let meta = TraceMeta {
            kind: StreamKind::ApiLog,
            ..stamp_meta()
        };
        let recs: Vec<ApiRecord> = (0..700u64)
            .map(|i| ApiRecord {
                at_cycles: i * 1000,
                thread: (i % 7) as u32,
                entry: (i % 5) as u8,
                outcome: (i % 3) as u8,
                a: i * 31,
                b: u64::MAX - i,
                queue_len: (i % 11) as u32,
            })
            .collect();
        let mut w = TraceWriter::create(Vec::new(), meta).unwrap();
        for r in &recs {
            w.write(&Record::Api(*r)).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut d = StreamDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(17) {
            d.feed(piece).unwrap();
            // poll_batch is a stamp-column operation: on an API stream it
            // must drain nothing and leave the records pollable.
            let mut none = Vec::new();
            assert_eq!(d.poll_batch(&mut none), 0);
            while let Some(rec) = d.poll() {
                match rec {
                    Record::Api(a) => got.push(a),
                    other => panic!("unexpected record {other:?}"),
                }
            }
        }
        assert_eq!(got, recs);
        assert!(d.is_clean_boundary());
    }
}
