//! The shared record codec: one implementation of the chunk-payload
//! record layout, used by every decoder in the crate.
//!
//! [`TraceReader`](crate::TraceReader) (pull, from files) and
//! [`StreamDecoder`](crate::StreamDecoder) (push, from sockets) decode
//! the same bytes under the same rules; before this module each carried
//! its own copy of the field-layout walk. Both now call
//! [`decode_record`], and the columnar batch path calls
//! [`decode_stamp_chunk`] — a single tight loop over a whole
//! varint-delta chunk that skips the per-record enum and queue
//! bookkeeping entirely. All varint work goes through [`crate::varint`];
//! there is no second varint implementation anywhere in the crate.

use crate::error::TraceError;
use crate::meta::StreamKind;
use crate::record::{ApiRecord, CounterRecord, Record};
use crate::varint;

/// Decodes one record from a chunk payload at `payload[*pos..]`,
/// advancing `*pos`. `any_read`/`prev_at` carry the delta-decoding state
/// across records; `index` is the stream-wide record index used in
/// monotonicity errors.
///
/// # Errors
///
/// Corrupt field encodings, truncated payloads, timestamp overflow, and
/// (for idle stamps) zero deltas, exactly as the file reader reports
/// them.
pub fn decode_record(
    payload: &[u8],
    pos: &mut usize,
    kind: StreamKind,
    any_read: bool,
    prev_at: u64,
    index: usize,
) -> Result<Record, TraceError> {
    let delta = varint::decode(payload, pos)?;
    let at = if any_read {
        if kind == StreamKind::IdleStamps && delta == 0 {
            return Err(TraceError::NonMonotonic { index });
        }
        prev_at.checked_add(delta).ok_or(TraceError::Corrupt {
            what: "timestamp delta overflows 64 bits",
        })?
    } else {
        delta
    };
    let decode_u32 = |payload: &[u8], pos: &mut usize, what: &'static str| {
        let v = varint::decode(payload, pos)?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt { what })
    };
    let decode_byte = |payload: &[u8], pos: &mut usize, what: &'static str| {
        let Some(&b) = payload.get(*pos) else {
            return Err(TraceError::Corrupt { what });
        };
        *pos += 1;
        Ok(b)
    };
    Ok(match kind {
        StreamKind::IdleStamps => Record::Stamp(at),
        StreamKind::ApiLog => {
            let thread = decode_u32(payload, pos, "thread id exceeds 32 bits")?;
            let entry = decode_byte(payload, pos, "API record missing entry byte")?;
            let outcome = decode_byte(payload, pos, "API record missing outcome byte")?;
            let a = varint::decode(payload, pos)?;
            let b = varint::decode(payload, pos)?;
            let queue_len = decode_u32(payload, pos, "queue length exceeds 32 bits")?;
            Record::Api(ApiRecord {
                at_cycles: at,
                thread,
                entry,
                outcome,
                a,
                b,
                queue_len,
            })
        }
        StreamKind::Counters => {
            let counter = decode_u32(payload, pos, "counter id exceeds 32 bits")?;
            let value = varint::decode(payload, pos)?;
            Record::Counter(CounterRecord {
                at_cycles: at,
                counter,
                value,
            })
        }
    })
}

/// Columnar bulk decode of one idle-stamp chunk payload: `count`
/// varint deltas become `count` absolute stamps appended to `out`, in
/// one pass with no per-record dispatch.
///
/// The delta-decoding state (`prev_at`, `any_read`, `records`) is
/// updated *through the references as each stamp decodes*, so on error
/// every stamp decoded before the failure is already in `out` and the
/// state reflects exactly what a scalar decoder would hold at the same
/// point — the batch path fails at the identical record with the
/// identical error.
///
/// Returns the payload bytes consumed.
///
/// # Errors
///
/// Same contract as [`decode_record`] over idle stamps: truncated or
/// overflowing varints, zero deltas ([`TraceError::NonMonotonic`] at the
/// stream-wide record index), timestamp overflow.
pub fn decode_stamp_chunk(
    payload: &[u8],
    count: u32,
    out: &mut Vec<u64>,
    prev_at: &mut u64,
    any_read: &mut bool,
    records: &mut u64,
) -> Result<usize, TraceError> {
    out.reserve(count as usize);
    let mut pos = 0usize;
    // Delta state lives in locals for the duration of the loop and is
    // written back on every exit, so the contract above holds on error
    // without forcing a store per record.
    let (mut prev, mut any, mut n) = (*prev_at, *any_read, *records);
    let result = (|| -> Result<(), TraceError> {
        for _ in 0..count {
            // One- and two-byte varints cover every delta below 2^14
            // cycles — all baseline-pace idle gaps and most jitter; the
            // general decoder handles longer encodings and reports the
            // exact errors for truncated or overlong ones.
            let delta = match payload.get(pos) {
                Some(&b0) if b0 < 0x80 => {
                    pos += 1;
                    u64::from(b0)
                }
                Some(&b0) => match payload.get(pos + 1) {
                    Some(&b1) if b1 < 0x80 => {
                        pos += 2;
                        u64::from(b0 & 0x7f) | (u64::from(b1) << 7)
                    }
                    _ => varint::decode(payload, &mut pos)?,
                },
                None => varint::decode(payload, &mut pos)?,
            };
            let at = if any {
                if delta == 0 {
                    return Err(TraceError::NonMonotonic { index: n as usize });
                }
                prev.checked_add(delta).ok_or(TraceError::Corrupt {
                    what: "timestamp delta overflows 64 bits",
                })?
            } else {
                delta
            };
            out.push(at);
            prev = at;
            any = true;
            n += 1;
        }
        Ok(())
    })();
    *prev_at = prev;
    *any_read = any;
    *records = n;
    result.map(|()| pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_chunk_matches_scalar_decode() {
        // Encode a payload by hand, decode it both ways.
        let stamps = [100u64, 350, 351, 1_000_000, 1_000_001];
        let mut payload = Vec::new();
        let mut prev = 0u64;
        for (i, &s) in stamps.iter().enumerate() {
            varint::encode(if i == 0 { s } else { s - prev }, &mut payload);
            prev = s;
        }

        let mut scalar = Vec::new();
        let (mut pos, mut prev_at, mut any) = (0usize, 0u64, false);
        for i in 0..stamps.len() {
            let rec =
                decode_record(&payload, &mut pos, StreamKind::IdleStamps, any, prev_at, i).unwrap();
            prev_at = rec.at_cycles();
            any = true;
            scalar.push(prev_at);
        }
        assert_eq!(pos, payload.len());

        let mut batch = Vec::new();
        let (mut prev_at, mut any, mut n) = (0u64, false, 0u64);
        let used = decode_stamp_chunk(
            &payload,
            stamps.len() as u32,
            &mut batch,
            &mut prev_at,
            &mut any,
            &mut n,
        )
        .unwrap();
        assert_eq!(used, payload.len());
        assert_eq!(batch, scalar);
        assert_eq!(batch, stamps);
        assert_eq!(n, stamps.len() as u64);
    }

    #[test]
    fn stamp_chunk_error_preserves_decoded_prefix() {
        // Second delta is zero: the batch decode must fail at index 1
        // with the first stamp already delivered.
        let mut payload = Vec::new();
        varint::encode(500, &mut payload);
        varint::encode(0, &mut payload);
        let mut out = Vec::new();
        let (mut prev_at, mut any, mut n) = (0u64, false, 0u64);
        let err =
            decode_stamp_chunk(&payload, 2, &mut out, &mut prev_at, &mut any, &mut n).unwrap_err();
        assert!(
            matches!(err, TraceError::NonMonotonic { index: 1 }),
            "{err}"
        );
        assert_eq!(out, vec![500]);
        assert_eq!((prev_at, any, n), (500, true, 1));
    }
}
