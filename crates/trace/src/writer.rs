//! Bounded-memory trace writer.
//!
//! Records are delta-encoded into an in-memory chunk buffer; when the
//! chunk reaches its record or byte budget it is framed (record count,
//! payload length, CRC-32) and flushed to the underlying `Write`. Memory
//! use is bounded by one chunk regardless of trace length.
//!
//! # Crash-recovery guarantee
//!
//! The self-describing header is written — and the underlying writer
//! flushed — before [`TraceWriter::create`] returns, so a file that
//! exists at all carries enough metadata to be opened. Every chunk is
//! independently framed and CRC-protected, so a process killed mid-run
//! leaves a file whose prefix of complete chunks is fully decodable: a
//! reader in tolerant mode (`TraceReader::set_tolerant`) recovers every
//! CRC-valid chunk and reports the torn tail instead of failing. At most
//! the records of the final in-memory chunk (≤ [`MAX_CHUNK_RECORDS`])
//! can be lost. For whole-file atomicity — a final path that either
//! holds a complete trace or nothing — write through
//! [`FileSink`](crate::FileSink), which stages into `<path>.tmp` and
//! renames on finish.

use std::io::Write;

use crate::error::TraceError;
use crate::meta::TraceMeta;
use crate::record::Record;
use crate::varint;

/// Maximum records per chunk.
pub const MAX_CHUNK_RECORDS: u32 = 4096;

/// Maximum encoded payload bytes per chunk. A reader rejects any chunk
/// header declaring more, which bounds allocation on corrupt input.
pub const MAX_CHUNK_PAYLOAD: usize = 1 << 20;

/// Streaming encoder for one trace file.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    meta: TraceMeta,
    buf: Vec<u8>,
    count: u32,
    prev_at: u64,
    any_written: bool,
    records_written: u64,
    chunks_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a new trace: writes the self-describing header immediately
    /// and flushes it through the underlying writer, so even a run killed
    /// right after creation leaves an openable (if empty) trace file.
    pub fn create(mut out: W, meta: TraceMeta) -> Result<Self, TraceError> {
        out.write_all(&meta.encode())?;
        out.flush()?;
        Ok(TraceWriter {
            out,
            meta,
            buf: Vec::new(),
            count: 0,
            prev_at: 0,
            any_written: false,
            records_written: 0,
            chunks_written: 0,
        })
    }

    /// The stream metadata this writer was created with.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total records accepted so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Rejects records of the wrong [`StreamKind`](crate::StreamKind),
    /// timestamps that run backwards (idle stamps must be strictly
    /// increasing; API/counter events merely non-decreasing), and I/O
    /// failures while flushing a full chunk.
    pub fn write(&mut self, rec: &Record) -> Result<(), TraceError> {
        if rec.kind() != self.meta.kind {
            return Err(TraceError::KindMismatch {
                expected: self.meta.kind,
                got: rec.kind(),
            });
        }
        let at = rec.at_cycles();
        let index = self.records_written as usize;
        let delta = if self.any_written {
            let d = at.wrapping_sub(self.prev_at);
            if at < self.prev_at || (matches!(rec, Record::Stamp(_)) && d == 0) {
                return Err(TraceError::NonMonotonic { index });
            }
            d
        } else {
            at
        };
        varint::encode(delta, &mut self.buf);
        match rec {
            Record::Stamp(_) => {}
            Record::Api(r) => {
                varint::encode(u64::from(r.thread), &mut self.buf);
                self.buf.push(r.entry);
                self.buf.push(r.outcome);
                varint::encode(r.a, &mut self.buf);
                varint::encode(r.b, &mut self.buf);
                varint::encode(u64::from(r.queue_len), &mut self.buf);
            }
            Record::Counter(r) => {
                varint::encode(u64::from(r.counter), &mut self.buf);
                varint::encode(r.value, &mut self.buf);
            }
        }
        self.prev_at = at;
        self.any_written = true;
        self.count += 1;
        self.records_written += 1;
        // Leave headroom below the payload cap: the largest record is an
        // ApiRecord at ≤ 40 encoded bytes.
        if self.count >= MAX_CHUNK_RECORDS || self.buf.len() >= MAX_CHUNK_PAYLOAD - 64 {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends a batch of idle-loop stamps.
    ///
    /// Byte-identical to calling [`TraceWriter::write`] with
    /// `Record::Stamp` once per value, but amortizes the per-record
    /// overhead: the stream-kind check runs once for the whole batch and
    /// the delta varints are encoded back-to-back without per-record
    /// dispatch. The kernel's idle fast-forward emits whole batches of
    /// synthesized stamps through this path.
    ///
    /// # Errors
    ///
    /// Same contract as [`TraceWriter::write`]: wrong stream kind,
    /// non-increasing timestamps, or I/O failure flushing a full chunk.
    pub fn write_stamps(&mut self, stamps: &[u64]) -> Result<(), TraceError> {
        if stamps.is_empty() {
            return Ok(());
        }
        if crate::StreamKind::IdleStamps != self.meta.kind {
            return Err(TraceError::KindMismatch {
                expected: self.meta.kind,
                got: crate::StreamKind::IdleStamps,
            });
        }
        for &at in stamps {
            let index = self.records_written as usize;
            let delta = if self.any_written {
                let d = at.wrapping_sub(self.prev_at);
                if at < self.prev_at || d == 0 {
                    return Err(TraceError::NonMonotonic { index });
                }
                d
            } else {
                at
            };
            varint::encode(delta, &mut self.buf);
            self.prev_at = at;
            self.any_written = true;
            self.count += 1;
            self.records_written += 1;
            if self.count >= MAX_CHUNK_RECORDS || self.buf.len() >= MAX_CHUNK_PAYLOAD - 64 {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.count == 0 {
            return Ok(());
        }
        let crc = crate::crc32::crc32(&self.buf);
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&self.buf)?;
        self.buf.clear();
        self.count = 0;
        self.chunks_written += 1;
        Ok(())
    }

    /// Flushes the final partial chunk and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush_chunk()?;
        self.out.flush()?;
        Ok(self.out)
    }
}
