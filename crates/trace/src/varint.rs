//! LEB128 variable-length integers: the wire encoding for stamps, deltas,
//! and small fields. One-millisecond idle-loop deltas at 100 MHz (100,000
//! cycles) encode in three bytes instead of eight.

use crate::error::TraceError;

/// Appends `value` as LEB128 (7 bits per byte, MSB = continuation).
pub fn encode(value: u64, out: &mut Vec<u8>) {
    let mut v = value;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 value from `buf[*pos..]`, advancing `*pos`.
///
/// # Errors
///
/// Returns a corruption error if the buffer ends mid-varint or the value
/// overflows 64 bits.
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceError::Corrupt {
                what: "varint runs past the chunk payload",
            });
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt {
                what: "varint overflows 64 bits",
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt {
                what: "varint longer than 10 bytes",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_edge_values() {
        for v in [0, 1, 127, 128, 300, 100_000, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            encode(v, &mut buf);
            let mut pos = 0;
            assert_eq!(decode(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        encode(u64::MAX, &mut buf);
        buf.pop();
        let mut pos = 0;
        assert!(decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn overflowing_varint_is_an_error() {
        // Eleven continuation bytes cannot fit in 64 bits.
        let buf = [0xff; 11];
        let mut pos = 0;
        assert!(decode(&buf, &mut pos).is_err());
    }
}
