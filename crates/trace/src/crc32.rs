//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for chunk and
//! header integrity. Every single-bit corruption in a framed payload is
//! detected, which the property tests rely on.

/// Computes the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"idle-loop trace chunk payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
