//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for chunk and
//! header integrity. Every single-bit corruption in a framed payload is
//! detected, which the property tests rely on.
//!
//! The implementation is slice-by-8: eight lookup tables, built at
//! compile time, let the hot loop fold eight input bytes per iteration
//! instead of shifting one bit at a time. The ingest path CRC-checks
//! every frame and every chunk, so this routine sits directly on the
//! telemetry service's throughput ceiling. Output is identical to the
//! bitwise definition (checked against it in the tests below).

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xedb8_8320;

/// `TABLES[t][b]` is the CRC contribution of byte value `b` seen `t`
/// bytes before the current fold position.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            bit += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[t - 1][b];
            tables[t][b] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            b += 1;
        }
        t += 1;
    }
    tables
}

/// Computes the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original one-bit-at-a-time definition, kept as the reference
    /// the table-driven fold must match byte for byte.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &byte in data {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn matches_bitwise_reference_at_every_length() {
        // Lengths 0..64 cover every chunks_exact remainder shape; the
        // pseudo-random fill covers every table index.
        let mut state = 0x9e37_79b9_u32;
        let data: Vec<u8> = (0..64)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"idle-loop trace chunk payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
