//! A small free-list of reusable `Vec` buffers.
//!
//! The ingest service moves three kinds of buffers per upload — frame
//! payloads (`Vec<u8>`), decoded stamp columns (`Vec<u64>`), and latency
//! sample batches (`Vec<f64>`) — and each would otherwise be allocated
//! per connection or per batch. [`BufferPool`] recycles them: a `get`
//! hands out a cleared buffer with its old capacity intact, a `put`
//! returns it. Once the pool has warmed up to the service's steady-state
//! working set, ingest performs zero heap allocation per frame.
//!
//! The pool is deliberately simple: a mutex around a stack of vectors.
//! The lock is held for a push or pop only, far from any hot inner loop
//! (one `get`/`put` pair amortizes over thousands of decoded records),
//! and a capped pool size bounds worst-case memory retention.

use std::sync::{Arc, Mutex};

/// Buffers retained per pool. Beyond this, returned buffers are dropped
/// — the cap bounds idle memory after a connection burst.
const MAX_POOLED: usize = 64;

/// Buffers whose capacity grew beyond this many *elements* are dropped
/// rather than pooled, so one pathological upload cannot pin a huge
/// allocation forever.
const MAX_POOLED_CAPACITY: usize = 8 << 20;

/// A shareable free-list of `Vec<T>` buffers. Cloning shares the pool.
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Arc<Mutex<Vec<Vec<T>>>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            free: self.free.clone(),
        }
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Takes a cleared buffer from the pool, or a fresh one if the pool
    /// is empty. The returned buffer keeps whatever capacity it had when
    /// it was `put` back.
    pub fn get(&self) -> Vec<T> {
        self.free
            .lock()
            .expect("buffer pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a buffer to the pool. The buffer is cleared here; callers
    /// need not empty it first. Oversized buffers and overflow beyond the
    /// pool cap are dropped instead of retained.
    pub fn put(&self, mut buf: Vec<T>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("buffer pool lock poisoned");
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Buffers currently resting in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("buffer pool lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_with_capacity() {
        let pool: BufferPool<u8> = BufferPool::new();
        let mut a = pool.get();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.get();
        assert!(b.is_empty(), "pooled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "capacity must survive the round trip");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn clones_share_the_free_list() {
        let pool: BufferPool<f64> = BufferPool::new();
        let other = pool.clone();
        let mut v = pool.get();
        v.push(1.0);
        other.put(v);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool: BufferPool<u64> = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_size_is_capped() {
        let pool: BufferPool<u8> = BufferPool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle(), MAX_POOLED);
    }
}
