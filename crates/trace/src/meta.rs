//! Self-describing trace header.
//!
//! A trace file begins with a fixed header that carries everything needed
//! to interpret the stream without out-of-band context: the stream kind,
//! the simulated CPU frequency, the idle-loop calibration baseline, the
//! run seed, and the free-form personality string (OS profile /
//! experiment id). The header is CRC-protected like every chunk.

use latlab_des::{CpuFreq, SimDuration};

use crate::crc32::crc32;
use crate::error::TraceError;

/// File magic: `LTRC` ("latlab trace").
pub const MAGIC: [u8; 4] = *b"LTRC";

/// Current on-disk format version.
pub const FORMAT_VERSION: u8 = 1;

/// What a trace stream contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Idle-loop cycle-counter stamps, one per loop iteration.
    IdleStamps,
    /// Message-API log records (call, outcome, payload, queue depth).
    ApiLog,
    /// Periodic counter samples (counter id, value).
    Counters,
}

impl StreamKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            StreamKind::IdleStamps => 0,
            StreamKind::ApiLog => 1,
            StreamKind::Counters => 2,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Result<Self, TraceError> {
        match b {
            0 => Ok(StreamKind::IdleStamps),
            1 => Ok(StreamKind::ApiLog),
            2 => Ok(StreamKind::Counters),
            _ => Err(TraceError::Corrupt {
                what: "unknown stream kind byte",
            }),
        }
    }

    /// Short lowercase name, used in file names and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::IdleStamps => "stamps",
            StreamKind::ApiLog => "apilog",
            StreamKind::Counters => "counters",
        }
    }
}

/// Calibration and provenance metadata stored in the trace header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// What the stream contains.
    pub kind: StreamKind,
    /// Simulated CPU frequency the cycle stamps were taken against.
    pub freq: CpuFreq,
    /// Unloaded idle-loop iteration cost, in cycles (zero only for
    /// non-stamp streams that carry no calibration).
    pub baseline: SimDuration,
    /// RNG seed of the run that produced the trace.
    pub seed: u64,
    /// Free-form provenance string: OS personality, experiment id, etc.
    pub personality: String,
}

impl TraceMeta {
    /// Fixed-size portion of the header, before the personality bytes
    /// and the trailing CRC.
    ///
    /// Layout: magic(4) version(1) kind(1) personality_len(2 LE)
    /// freq_hz(8 LE) baseline(8 LE) seed(8 LE).
    pub(crate) const FIXED_LEN: usize = 4 + 1 + 1 + 2 + 8 + 8 + 8;

    /// Serializes the header, including its CRC.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let personality = self.personality.as_bytes();
        let plen = u16::try_from(personality.len()).unwrap_or(u16::MAX);
        let personality = &personality[..plen as usize];
        let mut out = Vec::with_capacity(Self::FIXED_LEN + personality.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.push(FORMAT_VERSION);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&plen.to_le_bytes());
        out.extend_from_slice(&self.freq.hz().to_le_bytes());
        out.extend_from_slice(&self.baseline.cycles().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(personality);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Serializes the header to its on-disk byte form, CRC included.
    ///
    /// Public wrapper over the writer-internal encoder so external
    /// persistence layers (e.g. the serve checkpoint codec) can embed a
    /// header image verbatim.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Parses a header image from the start of `buf`, returning the
    /// metadata and the bytes consumed.
    ///
    /// Public wrapper over the reader-internal decoder; accepts exactly
    /// what [`to_bytes`](Self::to_bytes) produces.
    ///
    /// # Errors
    ///
    /// Same validation as the file reader: magic, version, CRC, UTF-8
    /// personality, non-zero frequency.
    pub fn from_bytes(buf: &[u8]) -> Result<(Self, usize), TraceError> {
        Self::decode(buf)
    }

    /// Parses a header from the start of `buf`, returning the metadata
    /// and the number of bytes consumed.
    pub(crate) fn decode(buf: &[u8]) -> Result<(Self, usize), TraceError> {
        if buf.len() < 4 {
            return Err(TraceError::Truncated);
        }
        if buf[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        if buf.len() < Self::FIXED_LEN {
            return Err(TraceError::Truncated);
        }
        let version = buf[4];
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let kind = StreamKind::from_byte(buf[5])?;
        let plen = u16::from_le_bytes([buf[6], buf[7]]) as usize;
        let freq_hz = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let baseline = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let seed = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        let total = Self::FIXED_LEN + plen + 4;
        if buf.len() < total {
            return Err(TraceError::Truncated);
        }
        let personality_bytes = &buf[Self::FIXED_LEN..Self::FIXED_LEN + plen];
        let stored_crc = u32::from_le_bytes(buf[Self::FIXED_LEN + plen..total].try_into().unwrap());
        if crc32(&buf[..Self::FIXED_LEN + plen]) != stored_crc {
            return Err(TraceError::CrcMismatch { chunk: 0 });
        }
        let personality = std::str::from_utf8(personality_bytes)
            .map_err(|_| TraceError::Corrupt {
                what: "personality string is not UTF-8",
            })?
            .to_owned();
        if freq_hz == 0 {
            return Err(TraceError::Corrupt {
                what: "zero CPU frequency in header",
            });
        }
        Ok((
            TraceMeta {
                kind,
                freq: CpuFreq::from_hz(freq_hz),
                baseline: SimDuration::from_cycles(baseline),
                seed,
                personality,
            },
            total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            kind: StreamKind::IdleStamps,
            freq: CpuFreq::PENTIUM_100,
            baseline: SimDuration::from_cycles(250),
            seed: 0xdead_beef,
            personality: "win95/typing".to_owned(),
        }
    }

    #[test]
    fn header_round_trips() {
        let m = meta();
        let bytes = m.encode();
        let (back, used) = TraceMeta::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = meta().encode();
        bytes[0] = b'X';
        assert!(matches!(
            TraceMeta::decode(&bytes),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = meta().encode();
        for len in 0..bytes.len() {
            assert!(TraceMeta::decode(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn header_bit_flip_is_detected() {
        let bytes = meta().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    TraceMeta::decode(&flipped).is_err(),
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
