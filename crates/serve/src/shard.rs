//! Sharded ingest workers and epoch-swapped read snapshots.
//!
//! Ingestion is partitioned across N worker threads by a stable hash of
//! the `(client, scenario)` key, so one chatty client cannot serialize
//! the whole service and all frames of one stream land on one shard
//! (keeping per-stream decode and fold order deterministic). Each shard
//! owns its streams and sketches exclusively — no locks on the fold
//! path.
//!
//! **Frame-level sharding:** connection handlers are thin pumps — they
//! read wire frames and forward them raw ([`Msg::Frame`]); the shard
//! worker owns the whole decode → extract → fold pipeline per stream.
//! That single-writer shape is what makes durability tractable: the
//! worker appends each accepted frame to its [`ShardWal`] *before*
//! acknowledging it, so the log's LSN order *is* the fold order, and
//! recovery (checkpoint + [`replay`]) reproduces the sketch exactly.
//!
//! **Resume & dedupe:** resumable streams ([`StreamId::Keyed`]) carry
//! client-assigned frame sequence numbers. The worker tracks the highest
//! committed seq per key; frames at or below it are dropped (counted in
//! [`IngestTotals::dedup_dropped`]) and re-acked, frames beyond
//! `last + 1` are a protocol error. Acknowledgements are sent only
//! after the WAL flush that makes the frame durable — an acked sample
//! is a recoverable sample, and a re-sent one is deduped, which together
//! give exactly-once delivery at the sketch level.
//!
//! **Backpressure:** each shard is fed through a bounded
//! [`sync_channel`]; producers use `try_send` and surface `BUSY` to the
//! uploader when the queue is full. The service never buffers unboundedly
//! — shedding load visibly is the contract (the paper's concern: a
//! measurement system must not silently distort what it measures).
//!
//! **Read path:** shards periodically publish an immutable
//! [`ShardSnapshot`] behind an `Arc` into their [`SnapshotSlot`]; the
//! swap is a pointer store under a briefly-held lock. Queries clone the
//! current `Arc`s and merge sketches on their own thread, so a query
//! never touches shard-internal state and never blocks ingest. Snapshot
//! *epochs* increase with every publish; published per-scenario counts
//! are monotone non-decreasing, which makes concurrent `SNAPSHOT` reads
//! internally consistent.
//!
//! **Copy-on-write publish:** each scenario's sketch lives behind its own
//! `Arc<LatencySketch>`. A publish clones only the map of `Arc` pointers;
//! sketch bodies are shared with the outgoing snapshot. The first fold
//! into a scenario *after* a publish pays one sketch clone
//! (`Arc::make_mut` detaches from the snapshot's copy); every fold until
//! the next publish then mutates in place.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::{BufferPool, StreamDecoder};

use crate::pipeline::SampleExtractor;
use crate::wal::{
    load_checkpoint, replay, write_checkpoint, Checkpoint, RecoveryStats, ShardWal, StreamCkpt,
    StreamId, WalConfig, WalRecord,
};

/// How a [`Msg::Begin`] opens its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BeginMode {
    /// Start a new upload: any mid-trace decode state a previously
    /// abandoned upload left under this key is discarded.
    Fresh,
    /// Continue an upload whose first frame was numbered `base + 1`:
    /// mid-trace decode state is kept, frames up to the committed
    /// watermark dedupe.
    Continue(u64),
}

/// Messages a shard worker consumes.
pub(crate) enum Msg {
    /// Attach a connection to a stream (creating it if new). The worker
    /// answers [`Reply::Started`] with the committed watermark.
    Begin {
        /// Stream identity (also decides resumability).
        stream: StreamId,
        /// Event class samples are accounted under.
        class: Option<EventClass>,
        /// Fresh upload vs continuation.
        mode: BeginMode,
        /// Where replies for this connection go.
        reply: Sender<Reply>,
    },
    /// One wire frame of trace bytes (buffer from the frame pool; the
    /// worker recycles it).
    Frame {
        /// Owning stream.
        stream: StreamId,
        /// Upload sequence number.
        seq: u64,
        /// Raw frame payload.
        bytes: Vec<u8>,
    },
    /// End-of-upload marker.
    End {
        /// Owning stream.
        stream: StreamId,
        /// Sequence number of the end frame.
        seq: u64,
    },
    /// The connection died mid-upload; one-shot streams are discarded.
    Cancel {
        /// Owning stream.
        stream: StreamId,
    },
    /// Commit everything queued, write a covering checkpoint, publish,
    /// and stop.
    Drain,
    /// Fault-injection hook: die *now*, as `kill -9` would — no flush,
    /// no checkpoint; unflushed WAL bytes are deliberately lost.
    Crash,
}

/// Replies a shard worker sends back to a connection handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Reply {
    /// Begin accepted; `last_seq` is the committed watermark (0 fresh).
    Started {
        /// Highest committed frame seq for the stream.
        last_seq: u64,
    },
    /// Cumulative acknowledgement: every frame up to `seq` is durable.
    Ack {
        /// Committed watermark.
        seq: u64,
    },
    /// The upload completed.
    Done {
        /// Trace records decoded over the whole upload.
        records: u64,
        /// Trace bytes accepted over the whole upload.
        bytes: u64,
    },
    /// The upload failed.
    Err(String),
}

/// The immutable state one shard publishes for readers.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// Publish counter: strictly increasing per shard, starting at 0
    /// for the empty snapshot.
    pub epoch: u64,
    /// Per-scenario sketches as of this epoch. Bodies are shared
    /// copy-on-write with the shard's working state: publishing clones
    /// the `Arc`s, and the worker detaches (clones) a scenario's sketch
    /// only on its first fold after the publish.
    pub sketches: HashMap<String, Arc<LatencySketch>>,
}

impl ShardSnapshot {
    fn empty() -> Self {
        ShardSnapshot {
            epoch: 0,
            sketches: HashMap::new(),
        }
    }
}

/// One shard's published-snapshot cell. Writers replace the `Arc`;
/// readers clone it. The lock is held only for the pointer operation.
#[derive(Debug)]
pub struct SnapshotSlot(RwLock<Arc<ShardSnapshot>>);

impl SnapshotSlot {
    fn new() -> Self {
        SnapshotSlot(RwLock::new(Arc::new(ShardSnapshot::empty())))
    }

    /// The latest published snapshot.
    pub fn load(&self) -> Arc<ShardSnapshot> {
        self.0.read().expect("snapshot lock poisoned").clone()
    }

    fn store(&self, snap: Arc<ShardSnapshot>) {
        *self.0.write().expect("snapshot lock poisoned") = snap;
    }
}

/// Configuration for the shard pool.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker thread count (≥ 1).
    pub shards: usize,
    /// Bounded queue depth per shard, in messages (≈ frames).
    pub queue_depth: usize,
    /// Publish a fresh snapshot after this many samples folded.
    pub publish_every: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().div_ceil(2).max(2))
                .unwrap_or(4),
            queue_depth: 128,
            publish_every: 64 * 1024,
        }
    }
}

/// Ingest-wide counters the shard workers maintain (surfaced by
/// `HEALTH`).
#[derive(Debug, Default)]
pub struct IngestTotals {
    /// Duplicate frames dropped by the per-stream seq watermark.
    pub dedup_dropped: AtomicU64,
    /// WAL records appended.
    pub wal_records: AtomicU64,
    /// WAL bytes appended (framed, buffered or flushed).
    pub wal_bytes: AtomicU64,
}

/// One shard as seen by producers: its queue and its snapshot slot.
struct ShardHandle {
    tx: SyncSender<Msg>,
    slot: Arc<SnapshotSlot>,
}

/// The set of shard workers.
pub struct ShardSet {
    shards: Vec<ShardHandle>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    /// Recycles frame buffers: producers `get` one to fill from the
    /// socket, workers `put` it back once folded (and logged).
    frame_pool: BufferPool<u8>,
    totals: Arc<IngestTotals>,
    recovery: RecoveryStats,
    next_conn: AtomicU64,
    wal_enabled: bool,
}

/// Why a message was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum IngestRejection {
    /// The shard's bounded queue is full — surface `BUSY` upstream.
    QueueFull,
    /// The shard has shut down.
    Closed,
}

impl ShardSet {
    /// Spawns the worker threads. With a [`WalConfig`], each shard first
    /// **recovers** — loads its newest valid checkpoint and replays the
    /// log tail through the ingest fold — before any worker accepts
    /// traffic; recovered snapshots are published immediately, so this
    /// returns with the pre-crash state fully visible.
    ///
    /// # Errors
    ///
    /// Filesystem failures opening the WAL (recovery of torn/corrupt
    /// *content* is tolerant and not an error).
    pub fn start(
        config: &ShardConfig,
        wal: Option<&WalConfig>,
        scalar: bool,
    ) -> io::Result<ShardSet> {
        let n = config.shards.max(1);
        let frame_pool: BufferPool<u8> = BufferPool::new();
        let totals = Arc::new(IngestTotals::default());
        let mut shards = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        let mut recovery = RecoveryStats::default();
        let mut max_conn = 0u64;
        for i in 0..n {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let slot = Arc::new(SnapshotSlot::new());
            let (shard_wal, dir, sketches, streams, epoch) = match wal {
                Some(cfg) => {
                    let dir = cfg.shard_dir(i);
                    let rec = recover_shard(&dir, scalar)?;
                    recovery.merge(&rec.stats);
                    max_conn = max_conn.max(rec.max_conn);
                    let shard_wal = ShardWal::open(&dir, cfg.segment_bytes, rec.next_lsn)?;
                    // Publish what recovery rebuilt before any ingest, so
                    // queries see the pre-crash state from the first epoch.
                    let epoch = u64::from(!rec.sketches.is_empty());
                    if epoch > 0 {
                        slot.store(Arc::new(ShardSnapshot {
                            epoch,
                            sketches: rec.sketches.clone(),
                        }));
                    }
                    (Some(shard_wal), Some(dir), rec.sketches, rec.streams, epoch)
                }
                None => (None, None, HashMap::new(), HashMap::new(), 0),
            };
            let worker = Worker {
                slot: slot.clone(),
                pool: frame_pool.clone(),
                totals: totals.clone(),
                scalar,
                publish_every: config.publish_every.max(1),
                checkpoint_bytes: wal.map_or(u64::MAX, |c| c.checkpoint_bytes.max(1)),
                dir,
                wal: shard_wal,
                sketches,
                streams,
                epoch,
                since_publish: 0,
                column: Vec::new(),
                samples: Vec::new(),
                replies: Vec::new(),
            };
            let join = std::thread::Builder::new()
                .name(format!("latlab-shard-{i}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            shards.push(ShardHandle { tx, slot });
            joins.push(join);
        }
        Ok(ShardSet {
            shards,
            joins: Mutex::new(joins),
            frame_pool,
            totals,
            recovery,
            next_conn: AtomicU64::new(max_conn + 1),
            wal_enabled: wal.is_some(),
        })
    }

    /// The shared frame-buffer pool. Producers take a buffer here to
    /// read a wire frame into; the folding worker returns it.
    pub fn frame_pool(&self) -> &BufferPool<u8> {
        &self.frame_pool
    }

    /// Ingest-wide counters (dedupe drops, WAL volume).
    pub fn totals(&self) -> &IngestTotals {
        &self.totals
    }

    /// What recovery did at startup (zeros when the WAL is off or the
    /// directory was empty).
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Whether a write-ahead log backs this set.
    pub fn wal_enabled(&self) -> bool {
        self.wal_enabled
    }

    /// Allocates a one-shot stream id, unique across this run *and* —
    /// because recovery seeds the counter past every id in the log —
    /// across restarts sharing a WAL directory.
    pub(crate) fn alloc_conn(&self) -> u64 {
        self.next_conn.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the set has no shards (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index a `(client, scenario)` stream routes to. Stable
    /// across the process lifetime — a stream's frames always fold on
    /// one shard.
    pub fn route(&self, client: &str, scenario: &str) -> usize {
        // FNV-1a over the joint key. The separator byte keeps
        // ("ab","c") and ("a","bc") distinct.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in client.bytes().chain([0u8]).chain(scenario.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Offers a message to a shard without blocking. On rejection the
    /// message comes back with the reason, so the caller can retry or
    /// surface `BUSY` without losing the frame buffer.
    pub(crate) fn try_send(&self, shard: usize, msg: Msg) -> Result<(), (Msg, IngestRejection)> {
        match self.shards[shard].tx.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(m)) => Err((m, IngestRejection::QueueFull)),
            Err(TrySendError::Disconnected(m)) => Err((m, IngestRejection::Closed)),
        }
    }

    /// Delivers a message even when the queue is full, blocking until a
    /// slot frees. Used for control messages that must not be dropped
    /// (e.g. `Cancel` when a connection dies). Errors only when the
    /// worker has exited.
    pub(crate) fn send(&self, shard: usize, msg: Msg) -> Result<(), IngestRejection> {
        self.shards[shard]
            .tx
            .send(msg)
            .map_err(|_| IngestRejection::Closed)
    }

    /// Clones every shard's current snapshot (the `SNAPSHOT`/query read
    /// path — never blocks ingest).
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        self.shards.iter().map(|s| s.slot.load()).collect()
    }

    /// Clones every shard's current snapshot into a caller-owned
    /// buffer, so the hot query path can reuse one allocation across
    /// refreshes ([`crate::query::QueryPlane::refresh_from`]).
    pub fn snapshots_into(&self, out: &mut Vec<Arc<ShardSnapshot>>) {
        out.clear();
        out.extend(self.shards.iter().map(|s| s.slot.load()));
    }

    /// Merges the current snapshots into per-scenario sketches plus the
    /// epoch sum, from scratch. This is the reference implementation
    /// the incremental [`crate::query::QueryPlane`] must stay
    /// bit-identical to; the live query path no longer calls it.
    pub fn merged_full(&self) -> (u64, HashMap<String, LatencySketch>) {
        crate::query::merge_full(&self.snapshots())
    }

    /// Graceful drain: every queued message is processed and committed,
    /// each shard writes a checkpoint covering its whole log (truncating
    /// every segment, so a clean restart replays nothing), publishes,
    /// and exits. Idempotent — later calls are no-ops, and later sends
    /// report [`IngestRejection::Closed`].
    pub fn drain_and_join(&self) {
        for shard in &self.shards {
            // Drain must get through even when the queue is full; send
            // blocks until the worker makes room.
            let _ = shard.tx.send(Msg::Drain);
        }
        let joins = std::mem::take(&mut *self.joins.lock().expect("join lock poisoned"));
        for join in joins {
            let _ = join.join();
        }
    }

    /// Fault-injection hook: kill every worker as `kill -9` would — no
    /// final flush, no checkpoint; WAL bytes still buffered in user
    /// space are deliberately lost. The chaos tests use this to prove
    /// that recovery rebuilds exactly the acknowledged state.
    pub fn crash_and_join(&self) {
        for shard in &self.shards {
            let _ = shard.tx.send(Msg::Crash);
        }
        let joins = std::mem::take(&mut *self.joins.lock().expect("join lock poisoned"));
        for join in joins {
            let _ = join.join();
        }
    }
}

/// Per-stream state a shard worker keeps.
struct StreamState {
    class: Option<EventClass>,
    /// Highest committed frame seq (the dedupe watermark).
    last_seq: u64,
    /// `DONE` counters of the last completed upload (replayed verbatim
    /// for a duplicate end frame).
    done_records: u64,
    done_bytes: u64,
    /// Mid-upload decoder; `None` between uploads.
    decoder: Option<StreamDecoder>,
    extractor: SampleExtractor,
    /// The attached connection, if any (latest `Begin` wins).
    reply: Option<Sender<Reply>>,
    /// Frames committed since the last ack was sent.
    ack_dirty: bool,
    /// The current upload failed; further frames are ignored until the
    /// next `Begin`.
    errored: bool,
}

impl StreamState {
    fn fresh(class: Option<EventClass>) -> StreamState {
        StreamState {
            class,
            last_seq: 0,
            done_records: 0,
            done_bytes: 0,
            decoder: None,
            extractor: SampleExtractor::new(),
            reply: None,
            ack_dirty: false,
            errored: false,
        }
    }
}

/// Decode one frame into samples and fold them — the single pipeline
/// both live ingest and WAL replay run.
#[allow(clippy::too_many_arguments)]
fn fold_frame_into(
    decoder: &mut StreamDecoder,
    extractor: &mut SampleExtractor,
    sketches: &mut HashMap<String, Arc<LatencySketch>>,
    scenario: &str,
    class: Option<EventClass>,
    scalar: bool,
    column: &mut Vec<u64>,
    samples: &mut Vec<f64>,
    bytes: &[u8],
) -> Result<u64, String> {
    decoder.feed(bytes).map_err(|e| format!("trace: {e}"))?;
    samples.clear();
    if scalar {
        extractor.pull(decoder, samples);
    } else {
        extractor.pull_batch(decoder, column, samples);
    }
    if !samples.is_empty() {
        Arc::make_mut(sketches.entry(scenario.to_owned()).or_default())
            .update_batch(class.unwrap_or(EventClass::Background), samples);
    }
    Ok(samples.len() as u64)
}

/// One shard worker: owns the streams, the sketches, and the log.
struct Worker {
    slot: Arc<SnapshotSlot>,
    pool: BufferPool<u8>,
    totals: Arc<IngestTotals>,
    scalar: bool,
    publish_every: u64,
    checkpoint_bytes: u64,
    dir: Option<PathBuf>,
    wal: Option<ShardWal>,
    sketches: HashMap<String, Arc<LatencySketch>>,
    streams: HashMap<StreamId, StreamState>,
    epoch: u64,
    since_publish: u64,
    column: Vec<u64>,
    samples: Vec<f64>,
    /// Replies held back until the commit point (WAL flush): `DONE` and
    /// `ERR` must not outrun durability.
    replies: Vec<(Sender<Reply>, Reply)>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Msg>) {
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => {
                    let mut verdict = self.handle(msg);
                    while verdict == Flow::Continue {
                        match rx.try_recv() {
                            Ok(m) => verdict = verdict.max(self.handle(m)),
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => {
                                verdict = verdict.max(Flow::Crash);
                                break;
                            }
                        }
                    }
                    if verdict == Flow::Crash {
                        // Simulated kill -9: drop the log without its
                        // BufWriter flush-on-drop, losing buffered bytes
                        // exactly as a dead process would.
                        if let Some(wal) = self.wal.take() {
                            std::mem::forget(wal);
                        }
                        return;
                    }
                    self.commit();
                    if verdict == Flow::Drain {
                        self.write_checkpoint_now();
                        self.publish();
                        return;
                    }
                    if self
                        .wal
                        .as_ref()
                        .is_some_and(|w| w.checkpoint_due(self.checkpoint_bytes))
                    {
                        self.write_checkpoint_now();
                    }
                    if self.since_publish >= self.publish_every {
                        self.publish();
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Idle moment: surface anything folded since the last
                    // publish so queries converge without traffic.
                    if self.since_publish > 0 {
                        self.publish();
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The set was dropped without a drain: crash path —
                    // no checkpoint; recovery owns whatever was flushed.
                    return;
                }
            }
        }
    }

    fn handle(&mut self, msg: Msg) -> Flow {
        match msg {
            Msg::Begin {
                stream,
                class,
                mode,
                reply,
            } => self.on_begin(stream, class, mode, reply),
            Msg::Frame { stream, seq, bytes } => self.on_frame(stream, seq, bytes),
            Msg::End { stream, seq } => self.on_end(stream, seq),
            Msg::Cancel { stream } => {
                // Only one-shot streams die with their connection;
                // keyed streams keep their resume state.
                if matches!(stream, StreamId::Conn { .. }) {
                    self.streams.remove(&stream);
                }
            }
            Msg::Drain => return Flow::Drain,
            Msg::Crash => return Flow::Crash,
        }
        Flow::Continue
    }

    fn on_begin(
        &mut self,
        stream: StreamId,
        class: Option<EventClass>,
        mode: BeginMode,
        reply: Sender<Reply>,
    ) {
        let state = self
            .streams
            .entry(stream)
            .or_insert_with(|| StreamState::fresh(class));
        state.class = class;
        state.reply = Some(reply.clone());
        state.errored = false;
        match mode {
            BeginMode::Fresh => {
                state.decoder = None;
                state.extractor = SampleExtractor::new();
            }
            BeginMode::Continue(base) => {
                if base > state.last_seq {
                    state.errored = true;
                    let _ = reply.send(Reply::Err(format!(
                        "resume base {base} ahead of committed seq {}",
                        state.last_seq
                    )));
                    return;
                }
                if base == state.last_seq {
                    // Nothing of the continued upload was committed; any
                    // decoder here belongs to an abandoned predecessor.
                    state.decoder = None;
                    state.extractor = SampleExtractor::new();
                }
                // base < last_seq: keep the mid-trace state and let the
                // client skip to the watermark.
            }
        }
        // Started carries no durability promise — answer immediately so
        // the handler can greet without waiting out a commit round.
        let _ = reply.send(Reply::Started {
            last_seq: state.last_seq,
        });
    }

    fn on_frame(&mut self, stream: StreamId, seq: u64, bytes: Vec<u8>) {
        let resume = matches!(stream, StreamId::Keyed { .. });
        let Some(state) = self.streams.get_mut(&stream) else {
            self.pool.put(bytes);
            return;
        };
        if state.errored {
            self.pool.put(bytes);
            return;
        }
        if seq <= state.last_seq {
            // Already committed — a re-send after reconnect. Re-ack so
            // the client's watermark catches up; never fold twice.
            if resume {
                state.ack_dirty = true;
            }
            self.totals.dedup_dropped.fetch_add(1, Ordering::Relaxed);
            self.pool.put(bytes);
            return;
        }
        if seq != state.last_seq + 1 {
            let expected = state.last_seq + 1;
            state.errored = true;
            state.decoder = None;
            self.reply_to(
                &stream,
                Reply::Err(format!("seq gap: expected {expected}, got {seq}")),
            );
            self.pool.put(bytes);
            return;
        }
        let scalar = self.scalar;
        let decoder = state.decoder.get_or_insert_with(|| {
            if scalar {
                StreamDecoder::new_scalar()
            } else {
                StreamDecoder::new()
            }
        });
        let folded = fold_frame_into(
            decoder,
            &mut state.extractor,
            &mut self.sketches,
            stream.scenario(),
            state.class,
            scalar,
            &mut self.column,
            &mut self.samples,
            &bytes,
        );
        match folded {
            Ok(samples) => {
                let class = state.class;
                let mut failed = None;
                if let Some(wal) = &mut self.wal {
                    if let Err(e) = wal.append_frame(&stream, class, seq, &bytes) {
                        failed = Some(format!("wal append: {e}"));
                    } else {
                        self.totals.wal_records.fetch_add(1, Ordering::Relaxed);
                        self.totals
                            .wal_bytes
                            .fetch_add(8 + bytes.len() as u64, Ordering::Relaxed);
                    }
                }
                let state = self.streams.get_mut(&stream).expect("stream exists");
                if let Some(msg) = failed {
                    // The fold already happened but the frame is not
                    // durable; fail the upload instead of acking a
                    // sample recovery could not reproduce.
                    state.errored = true;
                    state.decoder = None;
                    self.reply_to(&stream, Reply::Err(msg));
                } else {
                    state.last_seq = seq;
                    if resume {
                        state.ack_dirty = true;
                    }
                    self.since_publish += samples;
                }
            }
            Err(msg) => {
                state.errored = true;
                state.decoder = None;
                self.reply_to(&stream, Reply::Err(msg));
            }
        }
        self.pool.put(bytes);
    }

    fn on_end(&mut self, stream: StreamId, seq: u64) {
        let resume = matches!(stream, StreamId::Keyed { .. });
        let Some(state) = self.streams.get_mut(&stream) else {
            return;
        };
        if state.errored {
            self.reply_to(&stream, Reply::Err("upload already failed".to_owned()));
            return;
        }
        if seq <= state.last_seq {
            // Duplicate end after a reconnect: the upload completed in a
            // previous attempt — repeat its verdict.
            let (records, bytes) = (state.done_records, state.done_bytes);
            if resume {
                state.ack_dirty = true;
            }
            self.totals.dedup_dropped.fetch_add(1, Ordering::Relaxed);
            self.reply_to(&stream, Reply::Done { records, bytes });
            return;
        }
        if seq != state.last_seq + 1 {
            let expected = state.last_seq + 1;
            state.errored = true;
            state.decoder = None;
            self.reply_to(
                &stream,
                Reply::Err(format!("seq gap: expected {expected}, got {seq}")),
            );
            return;
        }
        if state
            .decoder
            .as_ref()
            .is_some_and(|d| !d.is_clean_boundary())
        {
            state.errored = true;
            state.decoder = None;
            self.reply_to(&stream, Reply::Err("upload ended mid-chunk".to_owned()));
            return;
        }
        let (records, bytes) = state
            .decoder
            .as_ref()
            .map_or((0, 0), |d| (d.records_decoded(), d.bytes_fed()));
        if let Some(wal) = &mut self.wal {
            match wal.append_end(&stream, seq) {
                Ok(_) => {
                    self.totals.wal_records.fetch_add(1, Ordering::Relaxed);
                    self.totals.wal_bytes.fetch_add(8 + 32, Ordering::Relaxed);
                }
                Err(e) => {
                    let state = self.streams.get_mut(&stream).expect("stream exists");
                    state.errored = true;
                    state.decoder = None;
                    self.reply_to(&stream, Reply::Err(format!("wal append: {e}")));
                    return;
                }
            }
        }
        let state = self.streams.get_mut(&stream).expect("stream exists");
        state.last_seq = seq;
        state.done_records = records;
        state.done_bytes = bytes;
        state.decoder = None;
        state.extractor = SampleExtractor::new();
        if resume {
            state.ack_dirty = true;
        }
        self.reply_to(&stream, Reply::Done { records, bytes });
        if !resume {
            // One-shot streams have nothing to resume; drop the state
            // (its WAL records still replay — recovery rebuilds and then
            // discards it the same way).
            self.streams.remove(&stream);
        }
    }

    /// Queues a reply for delivery at the next commit point.
    fn reply_to(&mut self, stream: &StreamId, reply: Reply) {
        if let Some(tx) = self.streams.get(stream).and_then(|s| s.reply.clone()) {
            self.replies.push((tx, reply));
        }
    }

    /// The commit point: make everything accepted this round durable,
    /// then release acks and verdicts.
    fn commit(&mut self) {
        if let Some(wal) = &mut self.wal {
            if let Err(e) = wal.flush() {
                // Nothing since the last flush is durable: fail every
                // stream rather than ack what recovery cannot replay.
                let msg = format!("wal flush: {e}");
                eprintln!("latlab-serve: {msg}");
                for state in self.streams.values_mut() {
                    state.ack_dirty = false;
                    state.errored = true;
                    state.decoder = None;
                }
                for (_, reply) in self.replies.iter_mut() {
                    *reply = Reply::Err(msg.clone());
                }
            }
        }
        for state in self.streams.values_mut() {
            if state.ack_dirty {
                state.ack_dirty = false;
                if let Some(tx) = &state.reply {
                    let _ = tx.send(Reply::Ack {
                        seq: state.last_seq,
                    });
                }
            }
        }
        for (tx, reply) in self.replies.drain(..) {
            let _ = tx.send(reply);
        }
    }

    /// Writes a checkpoint covering everything appended so far and
    /// prunes covered segments. Returns whether it landed.
    fn write_checkpoint_now(&mut self) -> bool {
        let Some(wal) = &mut self.wal else {
            return true;
        };
        if let Err(e) = wal.flush() {
            eprintln!("latlab-serve: wal flush before checkpoint: {e}");
            return false;
        }
        let last_lsn = wal.next_lsn() - 1;
        let mut streams = Vec::with_capacity(self.streams.len());
        for (id, state) in &self.streams {
            let decoder = match &state.decoder {
                None => None,
                Some(d) => match d.export_state() {
                    Some(s) => Some(s),
                    // A decoder with undrained records should not exist at
                    // a commit boundary; skip this checkpoint round rather
                    // than persist a lie.
                    None => return false,
                },
            };
            streams.push(StreamCkpt {
                id: id.clone(),
                class: state.class,
                last_seq: state.last_seq,
                done_records: state.done_records,
                done_bytes: state.done_bytes,
                prev_stamp: state.extractor.prev(),
                decoder,
            });
        }
        let ckpt = Checkpoint {
            last_lsn,
            sketches: self
                .sketches
                .iter()
                .map(|(k, v)| (k.clone(), (**v).clone()))
                .collect(),
            streams,
        };
        let dir = self.dir.as_ref().expect("wal dir set when wal is");
        if let Err(e) = write_checkpoint(dir, &ckpt) {
            eprintln!("latlab-serve: checkpoint write: {e}");
            return false;
        }
        if let Err(e) = wal.note_checkpoint(last_lsn) {
            eprintln!("latlab-serve: segment prune: {e}");
        }
        true
    }

    /// A publish clones `Arc` pointers only — O(scenarios) refcount
    /// bumps, no sketch bodies copied here.
    fn publish(&mut self) {
        self.epoch += 1;
        self.slot.store(Arc::new(ShardSnapshot {
            epoch: self.epoch,
            sketches: self.sketches.clone(),
        }));
        self.since_publish = 0;
    }
}

/// Worker-loop control flow, ordered by precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Flow {
    Continue,
    Drain,
    Crash,
}

/// What one shard rebuilt at startup.
struct Recovered {
    sketches: HashMap<String, Arc<LatencySketch>>,
    streams: HashMap<StreamId, StreamState>,
    stats: RecoveryStats,
    next_lsn: u64,
    max_conn: u64,
}

/// Checkpoint load + tail replay for one shard directory, run before
/// the worker accepts any traffic.
fn recover_shard(dir: &Path, scalar: bool) -> io::Result<Recovered> {
    let t0 = Instant::now();
    let mut stats = RecoveryStats::default();
    let mut sketches: HashMap<String, Arc<LatencySketch>> = HashMap::new();
    let mut streams: HashMap<StreamId, StreamState> = HashMap::new();
    let mut max_conn = 0u64;
    let mut after_lsn = 0u64;
    if let Some(ckpt) = load_checkpoint(dir)? {
        stats.checkpoints = 1;
        after_lsn = ckpt.last_lsn;
        for (scenario, sketch) in ckpt.sketches {
            sketches.insert(scenario, Arc::new(sketch));
        }
        for s in ckpt.streams {
            if let Some(c) = s.id.conn_id() {
                max_conn = max_conn.max(c);
            }
            let mut state = StreamState::fresh(s.class);
            state.last_seq = s.last_seq;
            state.done_records = s.done_records;
            state.done_bytes = s.done_bytes;
            state.decoder = s.decoder.map(StreamDecoder::restore);
            state.extractor = SampleExtractor::with_prev(s.prev_stamp);
            streams.insert(s.id, state);
        }
    }
    let mut column: Vec<u64> = Vec::new();
    let mut samples: Vec<f64> = Vec::new();
    let (rstats, next_lsn) = replay(dir, after_lsn, |_lsn, rec| match rec {
        WalRecord::Frame {
            stream,
            class,
            seq,
            bytes,
        } => {
            if let Some(c) = stream.conn_id() {
                max_conn = max_conn.max(c);
            }
            let state = streams
                .entry(stream.clone())
                .or_insert_with(|| StreamState::fresh(class));
            if state.errored || seq <= state.last_seq {
                return;
            }
            state.class = class;
            let decoder = state.decoder.get_or_insert_with(|| {
                if scalar {
                    StreamDecoder::new_scalar()
                } else {
                    StreamDecoder::new()
                }
            });
            let before = decoder.records_decoded();
            match fold_frame_into(
                decoder,
                &mut state.extractor,
                &mut sketches,
                stream.scenario(),
                class,
                scalar,
                &mut column,
                &mut samples,
                &bytes,
            ) {
                Ok(folded) => {
                    let after = state
                        .decoder
                        .as_ref()
                        .map_or(before, |d| d.records_decoded());
                    stats.records += after - before;
                    stats.samples += folded;
                    state.last_seq = seq;
                }
                Err(_) => {
                    // Same terminal state live ingest reached: the stream
                    // errored; its committed prefix stays folded.
                    state.errored = true;
                    state.decoder = None;
                }
            }
        }
        WalRecord::End { stream, seq } => {
            if let Some(state) = streams.get_mut(&stream) {
                if state.errored || seq <= state.last_seq {
                    return;
                }
                let (records, bytes) = state
                    .decoder
                    .as_ref()
                    .map_or((0, 0), |d| (d.records_decoded(), d.bytes_fed()));
                state.last_seq = seq;
                state.done_records = records;
                state.done_bytes = bytes;
                state.decoder = None;
                state.extractor = SampleExtractor::new();
            }
        }
    })?;
    stats.segments = rstats.segments;
    stats.frames = rstats.replayed;
    stats.torn_tails = u64::from(rstats.torn);
    // One-shot streams died with their connections; their folded prefix
    // stays in the sketch (as it would have, had the process lived).
    streams.retain(|id, _| matches!(id, StreamId::Keyed { .. }));
    for state in streams.values_mut() {
        state.errored = false;
    }
    stats.millis = t0.elapsed().as_millis() as u64;
    Ok(Recovered {
        sketches,
        streams,
        stats,
        next_lsn,
        max_conn,
    })
}

/// Shared in-crate test helpers for driving a [`ShardSet`] directly
/// (without a listener): temp WAL dirs, keyed streams, frame chopping,
/// retried sends, and the begin/upload/wait primitives. Used by this
/// module's tests and by the query-plane equivalence tests in
/// [`crate::query`].
#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use std::sync::mpsc::channel;

    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "latlab-shard-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        pub(crate) fn wal(&self) -> WalConfig {
            WalConfig::new(&self.0)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    pub(crate) fn config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            queue_depth: 64,
            publish_every: u64::MAX,
        }
    }

    pub(crate) fn keyed(client: &str, scenario: &str) -> StreamId {
        StreamId::Keyed {
            client: client.to_owned(),
            scenario: scenario.to_owned(),
        }
    }

    pub(crate) fn frames_of(corpus: &[u8], frame_len: usize) -> Vec<Vec<u8>> {
        corpus.chunks(frame_len).map(<[u8]>::to_vec).collect()
    }

    /// Sends, retrying transient `QueueFull` (the bounded queue is load
    /// shedding, not an error, when the test is just slower than ingest).
    pub(crate) fn send_retry(set: &ShardSet, shard: usize, mut msg: Msg) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match set.try_send(shard, msg) {
                Ok(()) => return,
                Err((m, IngestRejection::QueueFull)) if Instant::now() < deadline => {
                    msg = m;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err((_, why)) => panic!("shard send failed: {why:?}"),
            }
        }
    }

    pub(crate) fn begin(
        set: &ShardSet,
        shard: usize,
        stream: &StreamId,
        mode: BeginMode,
    ) -> (Receiver<Reply>, u64) {
        let (tx, rx) = channel();
        send_retry(
            set,
            shard,
            Msg::Begin {
                stream: stream.clone(),
                class: Some(EventClass::Keystroke),
                mode,
                reply: tx,
            },
        );
        match rx.recv_timeout(Duration::from_secs(5)).expect("started") {
            Reply::Started { last_seq } => (rx, last_seq),
            other => panic!("expected Started, got {other:?}"),
        }
    }

    /// Sends frames `[from..]` of `frames` numbered `base + 1 + i`, then
    /// the end frame, and waits for the verdict.
    pub(crate) fn upload_tail(
        set: &ShardSet,
        shard: usize,
        stream: &StreamId,
        rx: &Receiver<Reply>,
        frames: &[Vec<u8>],
        base: u64,
        from: usize,
    ) -> Reply {
        for (i, frame) in frames.iter().enumerate().skip(from) {
            send_retry(
                set,
                shard,
                Msg::Frame {
                    stream: stream.clone(),
                    seq: base + 1 + i as u64,
                    bytes: frame.clone(),
                },
            );
        }
        send_retry(
            set,
            shard,
            Msg::End {
                stream: stream.clone(),
                seq: base + 1 + frames.len() as u64,
            },
        );
        loop {
            match rx.recv_timeout(Duration::from_secs(5)).expect("verdict") {
                Reply::Ack { .. } => continue,
                verdict => return verdict,
            }
        }
    }

    /// Polls one shard's slot until its epoch reaches `want`.
    pub(crate) fn wait_for_epoch(set: &ShardSet, shard: usize, want: u64) -> Arc<ShardSnapshot> {
        for _ in 0..1000 {
            let snap = set.snapshots()[shard].clone();
            if snap.epoch >= want {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("shard {shard} never reached epoch {want}");
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::*;
    use super::*;
    use crate::slam::idle_corpus;

    #[test]
    fn routing_is_stable_and_key_sensitive() {
        let set = ShardSet::start(&config(4), None, false).unwrap();
        let a = set.route("client-1", "fig5");
        assert_eq!(a, set.route("client-1", "fig5"));
        let distinct = (0..32)
            .map(|i| set.route(&format!("client-{i}"), "fig5"))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "32 clients all routed to one shard");
        set.drain_and_join();
    }

    #[test]
    fn upload_folds_to_the_exact_corpus_sketch() {
        let corpus = idle_corpus(30_000, 0xf01d, 40);
        let expect = crate::pipeline::fold_corpus(&corpus, 4096, EventClass::Keystroke, false);
        let set = ShardSet::start(&config(2), None, false).unwrap();
        let stream = keyed("c", "fig5");
        let shard = set.route("c", "fig5");
        let frames = frames_of(&corpus, 4096);
        let (rx, base) = begin(&set, shard, &stream, BeginMode::Fresh);
        assert_eq!(base, 0);
        match upload_tail(&set, shard, &stream, &rx, &frames, 0, 0) {
            Reply::Done { records, bytes } => {
                assert_eq!(records, 30_000);
                assert_eq!(bytes, corpus.len() as u64);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        set.drain_and_join();
        let (_, merged) = set.merged_full();
        let got = &merged["fig5"];
        assert_eq!(got.total(), expect.sketch.total());
        let (gc, ec) = (
            got.class(EventClass::Keystroke),
            expect.sketch.class(EventClass::Keystroke),
        );
        assert_eq!(gc.stats().mean(), ec.stats().mean());
        for q in [0.5, 0.99] {
            assert_eq!(gc.quantile(q), ec.quantile(q));
        }
    }

    #[test]
    fn queue_full_is_reported_not_buffered() {
        let set = ShardSet::start(
            &ShardConfig {
                shards: 1,
                queue_depth: 1,
                publish_every: u64::MAX,
            },
            None,
            false,
        )
        .unwrap();
        let stream = keyed("c", "flood");
        let (_rx, _) = begin(&set, 0, &stream, BeginMode::Fresh);
        // Large valid frames keep the single worker decoding long enough
        // for the bounded queue (depth 1) to fill.
        let corpus = idle_corpus(1 << 20, 0xbe9c, 64);
        let frames = frames_of(&corpus, 1 << 20);
        let mut saw_full = false;
        let mut seq = 0u64;
        'outer: for _ in 0..64 {
            for frame in &frames {
                seq += 1;
                let msg = Msg::Frame {
                    stream: stream.clone(),
                    seq,
                    bytes: frame.clone(),
                };
                if let Err((returned, IngestRejection::QueueFull)) = set.try_send(0, msg) {
                    // The rejected frame comes back intact for retry.
                    match returned {
                        Msg::Frame { bytes, .. } => assert_eq!(&bytes, frame),
                        other => panic!(
                            "wrong message returned: {:?}",
                            std::mem::discriminant(&other)
                        ),
                    }
                    saw_full = true;
                    break 'outer;
                }
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        set.drain_and_join();
    }

    #[test]
    fn resume_dedupes_and_replays_the_done_verdict() {
        let corpus = idle_corpus(10_000, 0x5e5e, 64);
        let frames = frames_of(&corpus, 8192);
        let set = ShardSet::start(&config(1), None, false).unwrap();
        let stream = keyed("c", "dup");
        let (rx, base) = begin(&set, 0, &stream, BeginMode::Fresh);
        assert_eq!(base, 0);
        let done = upload_tail(&set, 0, &stream, &rx, &frames, 0, 0);
        let Reply::Done { records, bytes } = done else {
            panic!("expected Done, got {done:?}");
        };
        assert_eq!(set.totals().dedup_dropped.load(Ordering::Relaxed), 0);
        // Reconnect claiming the same upload: the watermark says it all
        // landed; a full re-send dedupes every frame and the end frame
        // replays the verdict.
        let (rx, watermark) = begin(&set, 0, &stream, BeginMode::Continue(0));
        assert_eq!(watermark, frames.len() as u64 + 1);
        let replayed = upload_tail(&set, 0, &stream, &rx, &frames, 0, 0);
        assert_eq!(replayed, Reply::Done { records, bytes });
        assert_eq!(
            set.totals().dedup_dropped.load(Ordering::Relaxed),
            frames.len() as u64 + 1
        );
        set.drain_and_join();
        let (_, merged) = set.merged_full();
        // Exactly-once: the double-sent corpus folded exactly once.
        let expect = crate::pipeline::fold_corpus(&corpus, 8192, EventClass::Keystroke, false);
        assert_eq!(merged["dup"].total(), expect.sketch.total());
    }

    #[test]
    fn seq_gaps_are_rejected() {
        let set = ShardSet::start(&config(1), None, false).unwrap();
        let stream = keyed("c", "gap");
        let (rx, _) = begin(&set, 0, &stream, BeginMode::Fresh);
        let corpus = idle_corpus(1_000, 0x11, 0);
        send_retry(
            &set,
            0,
            Msg::Frame {
                stream: stream.clone(),
                seq: 3, // expected 1
                bytes: corpus[..512].to_vec(),
            },
        );
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Reply::Err(msg) => assert!(msg.contains("seq gap"), "{msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        set.drain_and_join();
    }

    #[test]
    fn crash_recovers_exactly_the_acknowledged_state() {
        let tmp = TempDir::new("crash");
        let corpus = idle_corpus(40_000, 0xc4a5, 48);
        let frames = frames_of(&corpus, 4096);
        let half = frames.len() / 2;

        let set = ShardSet::start(&config(1), Some(&tmp.wal()), false).unwrap();
        let stream = keyed("c", "fig5");
        let (rx, base) = begin(&set, 0, &stream, BeginMode::Fresh);
        assert_eq!(base, 0);
        for (i, frame) in frames[..half].iter().enumerate() {
            send_retry(
                &set,
                0,
                Msg::Frame {
                    stream: stream.clone(),
                    seq: 1 + i as u64,
                    bytes: frame.clone(),
                },
            );
        }
        // Wait for the cumulative ack covering everything sent: ack ⇒
        // WAL-flushed ⇒ these frames must survive the crash.
        let mut acked = 0u64;
        let deadline = Instant::now() + Duration::from_secs(10);
        while acked < half as u64 {
            assert!(Instant::now() < deadline, "never acked: {acked}");
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Reply::Ack { seq } => acked = seq,
                other => panic!("unexpected {other:?}"),
            }
        }
        set.crash_and_join();

        // Restart: recovery must rebuild exactly the fold of the acked
        // prefix — frames [0, acked), in order.
        let set = ShardSet::start(&config(1), Some(&tmp.wal()), false).unwrap();
        assert!(
            set.recovery().frames >= acked,
            "replayed {:?}",
            set.recovery()
        );
        let mut expect_decoder = StreamDecoder::new();
        let mut expect_extractor = SampleExtractor::new();
        let mut expect: HashMap<String, Arc<LatencySketch>> = HashMap::new();
        let (mut col, mut smp) = (Vec::new(), Vec::new());
        for frame in &frames[..acked as usize] {
            fold_frame_into(
                &mut expect_decoder,
                &mut expect_extractor,
                &mut expect,
                "fig5",
                Some(EventClass::Keystroke),
                false,
                &mut col,
                &mut smp,
                frame,
            )
            .unwrap();
        }
        let expect = &expect["fig5"];
        let (_, merged) = set.merged_full();
        let got = &merged["fig5"];
        assert_eq!(got.total(), expect.total());
        let (gc, ec) = (
            got.class(EventClass::Keystroke),
            expect.class(EventClass::Keystroke),
        );
        assert_eq!(gc.stats().mean(), ec.stats().mean());
        assert_eq!(gc.stats().max(), ec.stats().max());

        // Resume from the watermark and finish: the final sketch equals
        // the whole corpus folded exactly once.
        let (rx, watermark) = begin(&set, 0, &stream, BeginMode::Continue(0));
        assert_eq!(watermark, acked);
        match upload_tail(&set, 0, &stream, &rx, &frames, 0, watermark as usize) {
            Reply::Done { records, .. } => assert_eq!(records, 40_000),
            other => panic!("expected Done, got {other:?}"),
        }
        set.drain_and_join();
        let whole = crate::pipeline::fold_corpus(&corpus, 4096, EventClass::Keystroke, false);
        let (_, merged) = set.merged_full();
        assert_eq!(merged["fig5"].total(), whole.sketch.total());
        assert_eq!(
            merged["fig5"].class(EventClass::Keystroke).stats().mean(),
            whole.sketch.class(EventClass::Keystroke).stats().mean()
        );
    }

    #[test]
    fn drain_checkpoint_leaves_nothing_to_replay() {
        let tmp = TempDir::new("drain");
        let corpus = idle_corpus(20_000, 0xd7a1, 64);
        let frames = frames_of(&corpus, 4096);
        let set = ShardSet::start(&config(2), Some(&tmp.wal()), false).unwrap();
        let stream = keyed("c", "fig5");
        let shard = set.route("c", "fig5");
        let (rx, _) = begin(&set, shard, &stream, BeginMode::Fresh);
        assert!(matches!(
            upload_tail(&set, shard, &stream, &rx, &frames, 0, 0),
            Reply::Done { .. }
        ));
        set.drain_and_join();
        // A clean restart loads the checkpoint and replays zero records.
        let set = ShardSet::start(&config(2), Some(&tmp.wal()), false).unwrap();
        let rec = set.recovery();
        assert!(rec.checkpoints >= 1);
        assert_eq!(rec.frames, 0, "drain left WAL records: {rec:?}");
        assert_eq!(rec.torn_tails, 0);
        let (_, merged) = set.merged_full();
        let expect = crate::pipeline::fold_corpus(&corpus, 4096, EventClass::Keystroke, false);
        assert_eq!(merged["fig5"].total(), expect.sketch.total());
        // And the resume watermark survived the restart.
        let (_rx, watermark) = begin(&set, shard, &stream, BeginMode::Continue(0));
        assert_eq!(watermark, frames.len() as u64 + 1);
        set.drain_and_join();
    }

    #[test]
    fn publish_shares_clean_scenarios_and_detaches_dirty_ones() {
        let set = ShardSet::start(
            &ShardConfig {
                shards: 1,
                queue_depth: 64,
                publish_every: 1, // every folded frame publishes
            },
            None,
            false,
        )
        .unwrap();
        let corpus = idle_corpus(5_000, 0xab, 16);
        let one_upload = |scenario: &str, client: &str| {
            let stream = keyed(client, scenario);
            let (rx, _) = begin(&set, 0, &stream, BeginMode::Fresh);
            let frames = frames_of(&corpus, corpus.len());
            assert!(matches!(
                upload_tail(&set, 0, &stream, &rx, &frames, 0, 0),
                Reply::Done { .. }
            ));
        };
        one_upload("dirty", "c1");
        one_upload("clean", "c2");
        let before = wait_for_epoch(&set, 0, 2);
        one_upload("dirty", "c3");
        let after = wait_for_epoch(&set, 0, 3);
        // The untouched scenario's sketch body is shared between epochs —
        // a publish is pointer clones, not a deep map copy…
        assert!(
            Arc::ptr_eq(&before.sketches["clean"], &after.sketches["clean"]),
            "clean scenario should share its sketch across epochs"
        );
        // …while the folded-into scenario detached, leaving the older
        // snapshot's view immutable.
        assert!(
            !Arc::ptr_eq(&before.sketches["dirty"], &after.sketches["dirty"]),
            "dirty scenario must copy-on-write, not mutate the snapshot"
        );
        assert_eq!(
            after.sketches["dirty"].total(),
            2 * before.sketches["dirty"].total()
        );
        set.drain_and_join();
    }

    #[test]
    fn workers_recycle_frame_buffers() {
        let set = ShardSet::start(&config(1), None, false).unwrap();
        let corpus = idle_corpus(1_000, 0x77, 0);
        let stream = keyed("c", "s");
        let (rx, _) = begin(&set, 0, &stream, BeginMode::Fresh);
        let mut buf = set.frame_pool().get();
        buf.extend_from_slice(&corpus);
        send_retry(
            &set,
            0,
            Msg::Frame {
                stream: stream.clone(),
                seq: 1,
                bytes: buf,
            },
        );
        send_retry(
            &set,
            0,
            Msg::End {
                stream: stream.clone(),
                seq: 2,
            },
        );
        loop {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Reply::Ack { .. } => continue,
                Reply::Done { .. } => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            set.frame_pool().idle(),
            1,
            "folded frame's buffer should return to the pool"
        );
        set.drain_and_join();
    }

    #[test]
    fn published_counts_are_monotonic() {
        let set = ShardSet::start(
            &ShardConfig {
                shards: 1,
                queue_depth: 1024,
                publish_every: 100,
            },
            None,
            false,
        )
        .unwrap();
        let corpus = idle_corpus(2_000, 0x99, 8);
        let frames = frames_of(&corpus, 2048);
        let mut last_count = 0u64;
        let mut last_epoch = 0u64;
        for round in 0..10 {
            let stream = keyed(&format!("c{round}"), "mono");
            let (rx, _) = begin(&set, 0, &stream, BeginMode::Fresh);
            assert!(matches!(
                upload_tail(&set, 0, &stream, &rx, &frames, 0, 0),
                Reply::Done { .. }
            ));
            let (epoch, merged) = set.merged_full();
            let count = merged.get("mono").map_or(0, |s| s.total());
            assert!(count >= last_count, "round {round}: count went backwards");
            assert!(epoch >= last_epoch, "round {round}: epoch went backwards");
            last_count = count;
            last_epoch = epoch;
        }
        set.drain_and_join();
    }
}
