//! Sharded ingest workers and epoch-swapped read snapshots.
//!
//! Ingestion is partitioned across N worker threads by a stable hash of
//! the `(client, scenario)` key, so one chatty client cannot serialize
//! the whole service and all samples of one stream land on one shard
//! (keeping per-stream fold order deterministic). Each shard owns its
//! sketches exclusively — no locks on the fold path.
//!
//! **Backpressure:** each shard is fed through a bounded
//! [`sync_channel`]; producers use `try_send` and surface `BUSY` to the
//! uploader when the queue is full. The service never buffers unboundedly
//! — shedding load visibly is the contract (the paper's concern: a
//! measurement system must not silently distort what it measures).
//!
//! **Read path:** shards periodically publish an immutable
//! [`ShardSnapshot`] behind an `Arc` into their [`SnapshotSlot`]; the
//! swap is a pointer store under a briefly-held lock. Queries clone the
//! current `Arc`s and merge sketches on their own thread, so a query
//! never touches shard-internal state and never blocks ingest. Snapshot
//! *epochs* increase with every publish; published per-scenario counts
//! are monotone non-decreasing, which makes concurrent `SNAPSHOT` reads
//! internally consistent.
//!
//! **Copy-on-write publish:** each scenario's sketch lives behind its own
//! `Arc<LatencySketch>`. A publish clones only the map of `Arc` pointers;
//! sketch bodies are shared with the outgoing snapshot. The first fold
//! into a scenario *after* a publish pays one sketch clone
//! (`Arc::make_mut` detaches from the snapshot's copy); every fold until
//! the next publish then mutates in place. So a publish costs O(dirty
//! scenarios) sketch clones amortized across the epoch — not O(all
//! scenarios) eager clones as a whole-map deep copy would — and a reader
//! holding a snapshot `Arc` can never observe a partially-merged epoch:
//! the sketches it references are immutable from the moment the slot
//! pointer is swapped.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::BufferPool;

/// A batch of classified latency samples bound for one shard.
#[derive(Debug)]
pub struct Batch {
    /// Aggregation key (scenario / experiment id).
    pub scenario: String,
    /// Event class the samples are accounted under.
    pub class: EventClass,
    /// Latency samples, ms.
    pub samples: Vec<f64>,
}

/// Messages a shard worker consumes.
enum Msg {
    /// Fold a batch of samples.
    Ingest(Batch),
    /// Publish now and stop once the queue is empty.
    Drain,
}

/// The immutable state one shard publishes for readers.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// Publish counter: strictly increasing per shard, starting at 0
    /// for the empty snapshot.
    pub epoch: u64,
    /// Per-scenario sketches as of this epoch. Bodies are shared
    /// copy-on-write with the shard's working state: publishing clones
    /// the `Arc`s, and the worker detaches (clones) a scenario's sketch
    /// only on its first fold after the publish.
    pub sketches: HashMap<String, Arc<LatencySketch>>,
}

impl ShardSnapshot {
    fn empty() -> Self {
        ShardSnapshot {
            epoch: 0,
            sketches: HashMap::new(),
        }
    }
}

/// One shard's published-snapshot cell. Writers replace the `Arc`;
/// readers clone it. The lock is held only for the pointer operation.
#[derive(Debug)]
pub struct SnapshotSlot(RwLock<Arc<ShardSnapshot>>);

impl SnapshotSlot {
    fn new() -> Self {
        SnapshotSlot(RwLock::new(Arc::new(ShardSnapshot::empty())))
    }

    /// The latest published snapshot.
    pub fn load(&self) -> Arc<ShardSnapshot> {
        self.0.read().expect("snapshot lock poisoned").clone()
    }

    fn store(&self, snap: Arc<ShardSnapshot>) {
        *self.0.write().expect("snapshot lock poisoned") = snap;
    }
}

/// Configuration for the shard pool.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker thread count (≥ 1).
    pub shards: usize,
    /// Bounded queue depth per shard, in batches.
    pub queue_depth: usize,
    /// Publish a fresh snapshot after this many samples folded.
    pub publish_every: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().div_ceil(2).max(2))
                .unwrap_or(4),
            queue_depth: 128,
            publish_every: 64 * 1024,
        }
    }
}

/// One shard as seen by producers: its queue and its snapshot slot.
struct ShardHandle {
    tx: SyncSender<Msg>,
    slot: Arc<SnapshotSlot>,
}

/// The set of shard workers.
pub struct ShardSet {
    shards: Vec<ShardHandle>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    /// Recycles `Batch::samples` vectors: producers `get` one to fill,
    /// workers `put` it back after folding. Rejected batches return their
    /// buffer to the caller, who decides.
    sample_pool: BufferPool<f64>,
}

/// Why a batch was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum IngestRejection {
    /// The shard's bounded queue is full — surface `BUSY` upstream.
    QueueFull,
    /// The shard has shut down.
    Closed,
}

impl ShardSet {
    /// Spawns the worker threads.
    pub fn start(config: &ShardConfig) -> ShardSet {
        let n = config.shards.max(1);
        let sample_pool: BufferPool<f64> = BufferPool::new();
        let mut shards = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            let slot = Arc::new(SnapshotSlot::new());
            let worker_slot = slot.clone();
            let worker_pool = sample_pool.clone();
            let publish_every = config.publish_every.max(1);
            let join = std::thread::Builder::new()
                .name(format!("latlab-shard-{i}"))
                .spawn(move || shard_worker(rx, worker_slot, worker_pool, publish_every))
                .expect("spawn shard worker");
            shards.push(ShardHandle { tx, slot });
            joins.push(join);
        }
        ShardSet {
            shards,
            joins: Mutex::new(joins),
            sample_pool,
        }
    }

    /// The shared sample-buffer pool. Producers take a buffer here to
    /// build a [`Batch`]; after a successful
    /// [`try_ingest`](Self::try_ingest) the folding worker returns it.
    pub fn sample_pool(&self) -> &BufferPool<f64> {
        &self.sample_pool
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the set has no shards (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index a `(client, scenario)` stream routes to. Stable
    /// across the process lifetime — a stream's samples always fold on
    /// one shard.
    pub fn route(&self, client: &str, scenario: &str) -> usize {
        // FNV-1a over the joint key. The separator byte keeps
        // ("ab","c") and ("a","bc") distinct.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in client.bytes().chain([0u8]).chain(scenario.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Offers a batch to a shard without blocking. On rejection the
    /// batch comes back with the reason, so the caller can retry or
    /// surface `BUSY` without cloning samples up front.
    pub fn try_ingest(&self, shard: usize, batch: Batch) -> Result<(), (Batch, IngestRejection)> {
        match self.shards[shard].tx.try_send(Msg::Ingest(batch)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(Msg::Ingest(b))) => Err((b, IngestRejection::QueueFull)),
            Err(TrySendError::Disconnected(Msg::Ingest(b))) => Err((b, IngestRejection::Closed)),
            Err(_) => unreachable!("only Ingest messages are offered"),
        }
    }

    /// Clones every shard's current snapshot (the `SNAPSHOT`/query read
    /// path — never blocks ingest).
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        self.shards.iter().map(|s| s.slot.load()).collect()
    }

    /// Merges the current snapshots into per-scenario sketches plus the
    /// epoch sum.
    pub fn merged(&self) -> (u64, HashMap<String, LatencySketch>) {
        let mut epoch = 0u64;
        let mut merged: HashMap<String, LatencySketch> = HashMap::new();
        for snap in self.snapshots() {
            epoch += snap.epoch;
            for (scenario, sketch) in &snap.sketches {
                merged
                    .entry(scenario.clone())
                    .and_modify(|m| m.merge(sketch))
                    .or_insert_with(|| (**sketch).clone());
            }
        }
        (epoch, merged)
    }

    /// Graceful drain: every queued batch is folded and published, then
    /// the workers exit. Idempotent — later calls are no-ops, and later
    /// [`try_ingest`](Self::try_ingest) calls report
    /// [`IngestRejection::Closed`].
    pub fn drain_and_join(&self) {
        for shard in &self.shards {
            // Drain must get through even when the queue is full; send
            // blocks until the worker makes room.
            let _ = shard.tx.send(Msg::Drain);
        }
        let joins = std::mem::take(&mut *self.joins.lock().expect("join lock poisoned"));
        for join in joins {
            let _ = join.join();
        }
    }
}

/// The shard worker loop: fold batches copy-on-write, publish snapshots.
fn shard_worker(
    rx: Receiver<Msg>,
    slot: Arc<SnapshotSlot>,
    pool: BufferPool<f64>,
    publish_every: u64,
) {
    let mut sketches: HashMap<String, Arc<LatencySketch>> = HashMap::new();
    let mut epoch = 0u64;
    let mut since_publish = 0u64;
    // Fold one batch into the working map and recycle its sample buffer.
    // `Arc::make_mut` detaches from the published snapshot's copy on the
    // scenario's first fold after a publish; in-place thereafter.
    let fold = |sketches: &mut HashMap<String, Arc<LatencySketch>>, batch: Batch| {
        Arc::make_mut(sketches.entry(batch.scenario).or_default())
            .update_batch(batch.class, &batch.samples);
        pool.put(batch.samples);
    };
    // A publish clones `Arc` pointers only — O(scenarios) refcount bumps,
    // no sketch bodies copied here.
    let publish = |sketches: &HashMap<String, Arc<LatencySketch>>, epoch: &mut u64| {
        *epoch += 1;
        slot.store(Arc::new(ShardSnapshot {
            epoch: *epoch,
            sketches: sketches.clone(),
        }));
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Msg::Ingest(batch)) => {
                since_publish += batch.samples.len() as u64;
                fold(&mut sketches, batch);
                if since_publish >= publish_every {
                    publish(&sketches, &mut epoch);
                    since_publish = 0;
                }
            }
            Ok(Msg::Drain) => {
                // Fold whatever else is already queued, then stop.
                while let Ok(msg) = rx.try_recv() {
                    if let Msg::Ingest(batch) = msg {
                        fold(&mut sketches, batch);
                    }
                }
                publish(&sketches, &mut epoch);
                return;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Idle moment: surface anything folded since the last
                // publish so queries converge without traffic.
                if since_publish > 0 {
                    publish(&sketches, &mut epoch);
                    since_publish = 0;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                if since_publish > 0 {
                    publish(&sketches, &mut epoch);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(scenario: &str, samples: Vec<f64>) -> Batch {
        Batch {
            scenario: scenario.to_owned(),
            class: EventClass::Keystroke,
            samples,
        }
    }

    #[test]
    fn routing_is_stable_and_key_sensitive() {
        let set = ShardSet::start(&ShardConfig {
            shards: 4,
            ..ShardConfig::default()
        });
        let a = set.route("client-1", "fig5");
        assert_eq!(a, set.route("client-1", "fig5"));
        let distinct = (0..32)
            .map(|i| set.route(&format!("client-{i}"), "fig5"))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "32 clients all routed to one shard");
        set.drain_and_join();
    }

    #[test]
    fn drain_folds_everything_queued() {
        let set = ShardSet::start(&ShardConfig {
            shards: 2,
            queue_depth: 64,
            publish_every: u64::MAX, // only the drain publish
        });
        let mut expect = 0u64;
        for i in 0..40 {
            let shard = set.route("c", "fig5");
            let samples: Vec<f64> = (0..25).map(|j| 1.0 + (i * 25 + j) as f64).collect();
            expect += samples.len() as u64;
            set.try_ingest(shard, batch("fig5", samples)).unwrap();
        }
        // Merged view *before* drain may lag (publish_every is ∞)…
        let shard = set.route("c", "fig5");
        let slot_epoch = set.snapshots()[shard].epoch;
        assert!(slot_epoch <= 2);
        set.drain_and_join();
        // …but after the drain every queued batch has been folded and
        // published.
        let (_, merged) = set.merged();
        assert_eq!(merged.get("fig5").map_or(0, |s| s.total()), expect);
        assert_eq!(expect, 1000);
        // Post-drain ingest is rejected, not silently dropped.
        assert!(matches!(
            set.try_ingest(shard, batch("fig5", vec![1.0])),
            Err((_, IngestRejection::Closed))
        ));
    }

    #[test]
    fn queue_full_is_reported_not_buffered() {
        let set = ShardSet::start(&ShardConfig {
            shards: 1,
            queue_depth: 1,
            publish_every: u64::MAX,
        });
        // Large batches keep the single worker busy long enough for the
        // bounded queue to fill: accepting is O(len) fold work.
        let big = || batch("flood", (0..2_000_000).map(|i| 1.0 + i as f64).collect());
        let mut saw_full = false;
        for _ in 0..64 {
            if let Err((returned, IngestRejection::QueueFull)) = set.try_ingest(0, big()) {
                // The rejected batch comes back intact for retry.
                assert_eq!(returned.samples.len(), 2_000_000);
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "bounded queue never reported Full");
        set.drain_and_join();
    }

    /// Polls one shard's slot until its epoch reaches `want`.
    fn wait_for_epoch(set: &ShardSet, shard: usize, want: u64) -> Arc<ShardSnapshot> {
        for _ in 0..1000 {
            let snap = set.snapshots()[shard].clone();
            if snap.epoch >= want {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("shard {shard} never reached epoch {want}");
    }

    #[test]
    fn publish_shares_clean_scenarios_and_detaches_dirty_ones() {
        let set = ShardSet::start(&ShardConfig {
            shards: 1,
            queue_depth: 64,
            publish_every: 1, // every fold publishes
        });
        set.try_ingest(0, batch("dirty", vec![1.0, 2.0])).unwrap();
        set.try_ingest(0, batch("clean", vec![3.0])).unwrap();
        let before = wait_for_epoch(&set, 0, 2);
        set.try_ingest(0, batch("dirty", vec![4.0])).unwrap();
        let after = wait_for_epoch(&set, 0, 3);
        // The untouched scenario's sketch body is shared between epochs —
        // a publish is pointer clones, not a deep map copy…
        assert!(
            Arc::ptr_eq(&before.sketches["clean"], &after.sketches["clean"]),
            "clean scenario should share its sketch across epochs"
        );
        // …while the folded-into scenario detached, leaving the older
        // snapshot's view immutable.
        assert!(
            !Arc::ptr_eq(&before.sketches["dirty"], &after.sketches["dirty"]),
            "dirty scenario must copy-on-write, not mutate the snapshot"
        );
        assert_eq!(before.sketches["dirty"].total(), 2);
        assert_eq!(after.sketches["dirty"].total(), 3);
        set.drain_and_join();
    }

    #[test]
    fn workers_recycle_sample_buffers() {
        let set = ShardSet::start(&ShardConfig {
            shards: 1,
            queue_depth: 64,
            publish_every: 1,
        });
        let mut samples = set.sample_pool().get();
        samples.extend_from_slice(&[1.0, 2.0, 3.0]);
        set.try_ingest(0, batch("s", samples)).unwrap();
        wait_for_epoch(&set, 0, 1);
        assert_eq!(
            set.sample_pool().idle(),
            1,
            "folded batch's buffer should return to the pool"
        );
        set.drain_and_join();
    }

    #[test]
    fn published_counts_are_monotonic() {
        let set = ShardSet::start(&ShardConfig {
            shards: 1,
            queue_depth: 1024,
            publish_every: 100,
        });
        let mut last_count = 0u64;
        let mut last_epoch = 0u64;
        for round in 0..20 {
            for _ in 0..10 {
                let _ = set.try_ingest(0, batch("mono", (0..50).map(|i| 1.0 + i as f64).collect()));
            }
            std::thread::sleep(Duration::from_millis(5));
            let (epoch, merged) = set.merged();
            let count = merged.get("mono").map_or(0, |s| s.total());
            assert!(count >= last_count, "round {round}: count went backwards");
            assert!(epoch >= last_epoch, "round {round}: epoch went backwards");
            last_count = count;
            last_epoch = epoch;
        }
        set.drain_and_join();
    }
}
