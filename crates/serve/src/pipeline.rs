//! The server-side ingest pipeline — decode → sample extraction → sketch
//! fold — factored out of the connection handler so it can run over an
//! in-memory corpus with no sockets attached.
//!
//! Two shapes of the same pipeline live here:
//!
//! * the **scalar reference path**: a [`StreamDecoder::new_scalar`]
//!   decoder materializes one `Record` per stamp, [`StreamDecoder::poll`]
//!   hands them back one at a time, each stamp gap becomes at most one
//!   sample, and every sample updates the [`LatencySketch`] individually
//!   — exactly the shape the service shipped with, kept as the
//!   behavioural reference;
//! * the **columnar batch path**: [`StreamDecoder::poll_batch`] drains
//!   whole decoded chunks into a stamp column, gaps are converted in one
//!   tight loop, and samples fold through
//!   [`LatencySketch::update_batch`] a batch at a time.
//!
//! [`fold_corpus`] runs either shape start-to-finish over a `.ltrc` byte
//! stream; the perf harness times both over the same corpus to report
//! the batch-over-scalar speedup, and the tests assert the two produce
//! bit-identical sketches.

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::{StreamDecoder, StreamKind};

/// Samples accumulated before a batch is offered to a shard (or, here,
/// folded into the sketch). Large enough to amortize channel traffic,
/// small enough that snapshots stay fresh during a long upload.
pub(crate) const INGEST_BATCH: usize = 4096;

/// Per-connection trace-record → latency-sample conversion.
///
/// * `IdleStamps`: consecutive stamp gaps are compared to the trace's
///   calibrated baseline interval; any *excess* is event-handling time
///   and becomes one sample (ms). Baseline-pace gaps contribute nothing
///   — idle is not latency.
/// * `ApiLog` / `Counters`: records are counted (they carry no single
///   latency number at this layer); uploads of these kinds are accepted
///   so a corpus can be shipped wholesale.
pub(crate) struct SampleExtractor {
    prev_stamp: Option<u64>,
}

impl SampleExtractor {
    pub(crate) fn new() -> Self {
        SampleExtractor { prev_stamp: None }
    }

    /// Rebuilds an extractor from a checkpointed previous stamp.
    pub(crate) fn with_prev(prev_stamp: Option<u64>) -> Self {
        SampleExtractor { prev_stamp }
    }

    /// The previous stamp, for checkpointing mid-stream state.
    pub(crate) fn prev(&self) -> Option<u64> {
        self.prev_stamp
    }

    /// Drains decoded records into `out` as latency samples, one record
    /// at a time (the scalar reference path).
    pub(crate) fn pull(&mut self, decoder: &mut StreamDecoder, out: &mut Vec<f64>) {
        let Some(meta) = decoder.meta().cloned() else {
            return;
        };
        if meta.kind != StreamKind::IdleStamps {
            while decoder.poll().is_some() {}
            return;
        }
        let baseline = meta.baseline.cycles();
        while let Some(rec) = decoder.poll() {
            let at = rec.at_cycles();
            if let Some(prev) = self.prev_stamp {
                let gap = at.saturating_sub(prev);
                if gap > baseline {
                    let excess = latlab_des::SimDuration::from_cycles(gap - baseline);
                    out.push(meta.freq.to_ms(excess));
                }
            }
            self.prev_stamp = Some(at);
        }
    }

    /// Columnar variant of [`pull`](Self::pull): drains the decoder's
    /// whole stamp column at once, then converts gaps to samples in one
    /// tight loop. Uses the exact same float operations in the same
    /// order as the scalar path, so the resulting samples are
    /// bit-identical. Non-stamp streams fall back to the scalar drain.
    pub(crate) fn pull_batch(
        &mut self,
        decoder: &mut StreamDecoder,
        column: &mut Vec<u64>,
        out: &mut Vec<f64>,
    ) {
        let Some(meta) = decoder.meta().cloned() else {
            return;
        };
        if meta.kind != StreamKind::IdleStamps {
            while decoder.poll().is_some() {}
            return;
        }
        column.clear();
        if decoder.poll_batch(column) == 0 {
            return;
        }
        let baseline = meta.baseline.cycles();
        let mut prev = self.prev_stamp;
        for &at in column.iter() {
            if let Some(p) = prev {
                let gap = at.saturating_sub(p);
                if gap > baseline {
                    let excess = latlab_des::SimDuration::from_cycles(gap - baseline);
                    out.push(meta.freq.to_ms(excess));
                }
            }
            prev = Some(at);
        }
        self.prev_stamp = prev;
    }
}

/// What one [`fold_corpus`] pass produced.
#[derive(Debug)]
pub struct FoldOutcome {
    /// Corpus bytes pushed through the decoder.
    pub bytes: u64,
    /// Trace records decoded.
    pub records: u64,
    /// Latency samples extracted and folded.
    pub samples: u64,
    /// The folded sketch (identical between the two paths).
    pub sketch: LatencySketch,
}

/// Runs the full server-side ingest pipeline — decode, sample
/// extraction, sketch fold — over one in-memory `.ltrc` corpus, fed in
/// `frame_len`-byte fragments as a socket would deliver it.
///
/// `scalar` selects the per-record reference path (`poll` + one
/// [`LatencySketch::push`] per sample); otherwise the columnar batch
/// path runs (`poll_batch` + [`LatencySketch::update_batch`] every
/// [`INGEST_BATCH`] samples). Both fold orders are identical, so the
/// returned sketches are bit-identical — the perf harness times the two
/// over the same corpus for the batch-over-scalar figure.
///
/// # Panics
///
/// Panics if `corpus` is not a valid `.ltrc` byte stream — this is a
/// measurement harness for generated corpora, not an ingest frontend.
pub fn fold_corpus(
    corpus: &[u8],
    frame_len: usize,
    class: EventClass,
    scalar: bool,
) -> FoldOutcome {
    assert!(frame_len > 0, "frame_len must be positive");
    let mut decoder = if scalar {
        StreamDecoder::new_scalar()
    } else {
        StreamDecoder::new()
    };
    let mut extractor = SampleExtractor::new();
    let mut sketch = LatencySketch::new();
    let mut column: Vec<u64> = Vec::new();
    let mut pending: Vec<f64> = Vec::with_capacity(INGEST_BATCH);
    let mut samples = 0u64;
    for frame in corpus.chunks(frame_len) {
        decoder.feed(frame).expect("valid corpus");
        if scalar {
            extractor.pull(&mut decoder, &mut pending);
            for &ms in &pending {
                sketch.push(class, ms);
            }
        } else {
            extractor.pull_batch(&mut decoder, &mut column, &mut pending);
            if pending.len() >= INGEST_BATCH {
                sketch.update_batch(class, &pending);
            } else {
                continue;
            }
        }
        samples += pending.len() as u64;
        pending.clear();
    }
    if !pending.is_empty() {
        if scalar {
            for &ms in &pending {
                sketch.push(class, ms);
            }
        } else {
            sketch.update_batch(class, &pending);
        }
        samples += pending.len() as u64;
    }
    assert!(
        decoder.is_clean_boundary(),
        "corpus ended mid-chunk — not a finished trace"
    );
    FoldOutcome {
        bytes: decoder.bytes_fed(),
        records: decoder.records_decoded(),
        samples,
        sketch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slam::{idle_corpus, synthetic_corpus};

    #[test]
    fn batch_and_scalar_folds_are_bit_identical() {
        for corpus in [
            synthetic_corpus(30_000, 0xf01d, 40),
            idle_corpus(30_000, 0xf01d, 40),
        ] {
            let b = fold_corpus(&corpus, 64 * 1024, EventClass::Keystroke, false);
            let s = fold_corpus(&corpus, 64 * 1024, EventClass::Keystroke, true);
            assert_eq!(b.bytes, s.bytes);
            assert_eq!(b.records, s.records);
            assert_eq!(b.samples, s.samples);
            assert_eq!(b.records, 30_000);
            assert!(b.samples > 0);
            assert_eq!(b.sketch.total(), s.sketch.total());
            assert_eq!(b.sketch.total_misses(), s.sketch.total_misses());
            let (bc, sc) = (
                b.sketch.class(EventClass::Keystroke),
                s.sketch.class(EventClass::Keystroke),
            );
            assert_eq!(bc.stats().mean(), sc.stats().mean());
            assert_eq!(bc.stats().min(), sc.stats().min());
            assert_eq!(bc.stats().max(), sc.stats().max());
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(bc.quantile(q), sc.quantile(q), "q{q}");
            }
        }
    }

    #[test]
    fn fragmentation_does_not_change_the_fold() {
        let corpus = idle_corpus(20_000, 0x0f0f, 64);
        let whole = fold_corpus(&corpus, corpus.len(), EventClass::Keystroke, false);
        let tiny = fold_corpus(&corpus, 977, EventClass::Keystroke, false);
        assert_eq!(whole.samples, tiny.samples);
        assert_eq!(whole.sketch.total(), tiny.sketch.total());
        let (wc, tc) = (
            whole.sketch.class(EventClass::Keystroke),
            tiny.sketch.class(EventClass::Keystroke),
        );
        assert_eq!(wc.stats().mean(), tc.stats().mean());
    }
}
