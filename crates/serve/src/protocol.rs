//! The latlab-serve wire protocol.
//!
//! One TCP connection is either an **ingest** connection or a **query**
//! connection, decided by its first line:
//!
//! ```text
//! PUT <client> <scenario> [class]\n      → ingest mode
//! STATS | PCTL | SNAPSHOT | HEALTH | …   → query mode
//! ```
//!
//! # Ingest framing
//!
//! After the server acknowledges the `PUT` line with `OK\n`, the client
//! streams the raw bytes of one `.ltrc` trace in **length-prefixed,
//! CRC-protected frames** (the CRC-32 is the same polynomial the trace
//! chunks use, via [`latlab_trace::crc32`]):
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! A zero-length frame (`len == 0`, `crc == 0`) ends the upload; the
//! server replies `DONE <records> <bytes>\n`. Frame boundaries need not
//! align with trace chunk boundaries — the server reassembles through
//! [`latlab_trace::StreamDecoder`]. If a shard queue is full the server
//! replies `BUSY\n` and closes: explicit rejection, never unbounded
//! buffering. Malformed trace bytes earn `ERR <reason>\n`.
//!
//! # Resumable ingest
//!
//! A `PUT` line ending in `RESUME [<base>]` opens a **resumable**
//! upload. The server keys the stream by `(client, scenario)`, replies
//! `OK <seq>\n` where `<seq>` is the highest frame sequence number it
//! has already committed for that key (0 for a fresh stream), and the
//! client numbers its frames `seq+1, seq+2, …` using the seq-prefixed
//! frame layout. A bare `RESUME` starts a **new** upload (the server
//! discards any mid-trace state a previous abandoned upload left
//! behind); `RESUME <base>` **continues** an upload whose first frame
//! was numbered `base + 1`, so the server keeps its mid-trace decode
//! state and the client re-sends only frames past the greeting's
//! watermark:
//!
//! ```text
//! [seq: u64 LE][payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! The end-of-upload frame keeps its own sequence number with a zero
//! length. While an upload runs the server sends cumulative `OK <seq>\n`
//! acknowledgement lines; a client that reconnects after a reset learns
//! the committed watermark from the greeting and re-sends only the
//! unacknowledged tail. Frames at or below the watermark are
//! deduplicated server-side, which is what turns acknowledged-sample
//! delivery into an exactly-once invariant at the sketch level.
//!
//! # Query protocol
//!
//! Line-delimited text. Single-line answers except `STATS`, whose block
//! is terminated by a lone `.`:
//!
//! ```text
//! HEALTH                 → ok uptime_s=… shards=… ingested_records=… …
//! PCTL <scenario> <p>    → pctl scenario=… p=… ms=…        (p in [0,1] or percent)
//! STATS <scenario>       → scenario=… / class=… lines / .
//! SNAPSHOT               → one-line JSON of the merged epoch snapshot
//! SHUTDOWN               → draining            (starts graceful drain)
//! QUIT                   → closes the connection
//! ```
//!
//! All four read queries are answered from the server's incremental
//! [`crate::query::QueryPlane`] — a cached merged view refreshed per
//! command, re-merging only scenarios whose published sketch changed —
//! so none of them blocks ingest or pays a full cross-shard merge in
//! steady state. `HEALTH` reports the plane's behaviour in its trailing
//! fields: `total_samples`/`total_misses` (precomputed view totals) and
//! `view_refreshes`/`view_hits`/`view_remerged`/`view_cold_rebuilds`
//! (cache effectiveness).

use std::io::{self, Read, Write};

use latlab_trace::crc32;

/// Largest accepted ingest frame payload. Bounds per-connection memory
/// on hostile input, like the trace reader's chunk cap.
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// Largest accepted protocol line (PUT/query commands).
pub const MAX_LINE: usize = 1024;

/// Acknowledgement that an ingest header was accepted.
pub const OK_LINE: &str = "OK";

/// Backpressure rejection: a shard queue was full.
pub const BUSY_LINE: &str = "BUSY";

/// A protocol-level failure while reading framed payloads.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed or closed mid-frame.
    Io(io::Error),
    /// The payload did not match its CRC.
    CrcMismatch,
    /// The header declared a payload beyond [`MAX_FRAME_PAYLOAD`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::CrcMismatch => write!(f, "frame CRC mismatch"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one framed payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Writes the zero-length end-of-upload frame.
pub fn write_end_frame(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())
}

/// Reads one frame into `buf` (cleared first). Returns `false` on the
/// end-of-upload frame, `true` when a payload was read.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 {
        return Ok(false);
    }
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    if crc32(buf) != stored_crc {
        return Err(FrameError::CrcMismatch);
    }
    Ok(true)
}

/// Writes one seq-prefixed framed payload (resumable-upload layout).
pub fn write_seq_frame(w: &mut impl Write, seq: u64, payload: &[u8]) -> io::Result<()> {
    w.write_all(&seq.to_le_bytes())?;
    write_frame(w, payload)
}

/// Writes the seq-prefixed end-of-upload frame.
pub fn write_seq_end_frame(w: &mut impl Write, seq: u64) -> io::Result<()> {
    w.write_all(&seq.to_le_bytes())?;
    write_end_frame(w)
}

/// Reads one seq-prefixed frame into `buf` (cleared first). Returns the
/// frame's sequence number and whether a payload was read (`false` =
/// end-of-upload frame).
pub fn read_seq_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<(u64, bool), FrameError> {
    let mut seq = [0u8; 8];
    r.read_exact(&mut seq)?;
    let seq = u64::from_le_bytes(seq);
    let more = read_frame(r, buf)?;
    Ok((seq, more))
}

/// A parsed `PUT` ingest header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutHeader {
    /// Client identity (free-form token; part of the shard key).
    pub client: String,
    /// Scenario the uploaded trace belongs to (the aggregation key).
    pub scenario: String,
    /// Event class the samples are accounted under, if the uploader
    /// declared one (defaults by stream kind otherwise).
    pub class: Option<latlab_analysis::EventClass>,
    /// Whether the upload is resumable: seq-prefixed frames, committed
    /// sequence numbers acknowledged, dedupe by `(client, scenario)`.
    pub resume: bool,
    /// For a resumable upload, the base the upload being *continued*
    /// started from (its first frame was `base + 1`). `None` starts a
    /// new upload. Meaningless unless [`resume`](Self::resume) is set.
    pub resume_base: Option<u64>,
}

impl PutHeader {
    /// Parses `PUT <client> <scenario> [class] [RESUME [<base>]]`.
    pub fn parse(line: &str) -> Result<PutHeader, String> {
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("PUT") {
            return Err("not a PUT line".to_owned());
        }
        let client = parts
            .next()
            .ok_or_else(|| "PUT requires <client> <scenario>".to_owned())?;
        let scenario = parts
            .next()
            .ok_or_else(|| "PUT requires <client> <scenario>".to_owned())?;
        let mut class = None;
        let mut resume = false;
        let mut resume_base = None;
        let mut next = parts.next();
        if let Some(name) = next {
            if name != "RESUME" {
                class = Some(
                    latlab_analysis::EventClass::parse(name)
                        .ok_or_else(|| format!("unknown event class {name:?}"))?,
                );
                next = parts.next();
            }
        }
        if let Some(tok) = next {
            if tok != "RESUME" {
                return Err(format!("unexpected token {tok:?} after PUT header"));
            }
            resume = true;
            if let Some(base) = parts.next() {
                resume_base = Some(
                    base.parse::<u64>()
                        .map_err(|_| format!("bad RESUME base {base:?}"))?,
                );
            }
        }
        if parts.next().is_some() {
            return Err("trailing tokens after PUT header".to_owned());
        }
        Ok(PutHeader {
            client: client.to_owned(),
            scenario: scenario.to_owned(),
            class,
            resume,
            resume_base,
        })
    }

    /// Renders the header line (without the newline).
    pub fn render(&self) -> String {
        let mut line = match self.class {
            Some(c) => format!("PUT {} {} {}", self.client, self.scenario, c.name()),
            None => format!("PUT {} {}", self.client, self.scenario),
        };
        if self.resume {
            line.push_str(" RESUME");
            if let Some(base) = self.resume_base {
                line.push_str(&format!(" {base}"));
            }
        }
        line
    }
}

/// A parsed query command.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Per-class statistics block for one scenario.
    Stats(String),
    /// One quantile (0.0..=1.0) over all classes of one scenario.
    Pctl(String, f64),
    /// The full merged snapshot as JSON.
    Snapshot,
    /// Liveness and counters.
    Health,
    /// Begin graceful drain.
    Shutdown,
    /// Close this connection.
    Quit,
}

impl Query {
    /// Parses one query line. Percentiles accept either a fraction
    /// (`0.99`) or a percentage (`99`); anything above 1 is divided by
    /// 100.
    pub fn parse(line: &str) -> Result<Query, String> {
        let mut parts = line.split_ascii_whitespace();
        let cmd = parts.next().ok_or_else(|| "empty command".to_owned())?;
        let q = match cmd {
            "STATS" => {
                let scenario = parts
                    .next()
                    .ok_or_else(|| "STATS requires <scenario>".to_owned())?;
                Query::Stats(scenario.to_owned())
            }
            "PCTL" => {
                let scenario = parts
                    .next()
                    .ok_or_else(|| "PCTL requires <scenario> <p>".to_owned())?;
                let p: f64 = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| "PCTL requires a numeric percentile".to_owned())?;
                let p = if p > 1.0 { p / 100.0 } else { p };
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("percentile {p} out of range"));
                }
                Query::Pctl(scenario.to_owned(), p)
            }
            "SNAPSHOT" => Query::Snapshot,
            "HEALTH" => Query::Health,
            "SHUTDOWN" => Query::Shutdown,
            "QUIT" => Query::Quit,
            other => return Err(format!("unknown command {other:?}")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing tokens after {cmd}"));
        }
        Ok(q)
    }

    /// The command verb, as it appears on the wire. Probers key their
    /// per-verb latency accounting on this.
    pub fn verb(&self) -> &'static str {
        match self {
            Query::Stats(_) => "STATS",
            Query::Pctl(_, _) => "PCTL",
            Query::Snapshot => "SNAPSHOT",
            Query::Health => "HEALTH",
            Query::Shutdown => "SHUTDOWN",
            Query::Quit => "QUIT",
        }
    }

    /// Renders the query line (without the newline); `parse` of the
    /// result round-trips, with percentiles in fraction form.
    pub fn render(&self) -> String {
        match self {
            Query::Stats(scenario) => format!("STATS {scenario}"),
            Query::Pctl(scenario, p) => format!("PCTL {scenario} {p}"),
            _ => self.verb().to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_analysis::EventClass;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, &[0u8; 1000]).unwrap();
        write_end_frame(&mut wire).unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf.len(), 1000);
        assert!(!read_frame(&mut r, &mut buf).unwrap());
    }

    #[test]
    fn corrupt_frame_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0x40;
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut &wire[..], &mut buf),
            Err(FrameError::CrcMismatch)
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut &wire[..], &mut buf),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn put_header_parses() {
        let h = PutHeader::parse("PUT host-1 fig5 keystroke").unwrap();
        assert_eq!(h.client, "host-1");
        assert_eq!(h.scenario, "fig5");
        assert_eq!(h.class, Some(EventClass::Keystroke));
        assert!(!h.resume);
        let h2 = PutHeader::parse(&h.render()).unwrap();
        assert_eq!(h, h2);
        assert!(PutHeader::parse("PUT host-1").is_err());
        assert!(PutHeader::parse("PUT h s nosuchclass").is_err());
        assert!(PutHeader::parse("GET h s").is_err());
    }

    #[test]
    fn resume_token_parses_in_both_positions() {
        let h = PutHeader::parse("PUT h s RESUME").unwrap();
        assert!(h.resume);
        assert_eq!(h.class, None);
        assert_eq!(h.resume_base, None);
        let h = PutHeader::parse("PUT h s keystroke RESUME").unwrap();
        assert!(h.resume);
        assert_eq!(h.class, Some(EventClass::Keystroke));
        assert_eq!(PutHeader::parse(&h.render()).unwrap(), h);
        assert!(PutHeader::parse("PUT h s RESUME keystroke").is_err());
        assert!(PutHeader::parse("PUT h s keystroke RESUME 5 extra").is_err());
    }

    #[test]
    fn resume_base_parses_and_renders() {
        let h = PutHeader::parse("PUT h s RESUME 42").unwrap();
        assert!(h.resume);
        assert_eq!(h.resume_base, Some(42));
        let h = PutHeader::parse("PUT h s keystroke RESUME 7").unwrap();
        assert_eq!(h.class, Some(EventClass::Keystroke));
        assert_eq!(h.resume_base, Some(7));
        assert_eq!(PutHeader::parse(&h.render()).unwrap(), h);
        assert!(PutHeader::parse("PUT h s RESUME notanumber").is_err());
    }

    #[test]
    fn seq_frames_round_trip() {
        let mut wire = Vec::new();
        write_seq_frame(&mut wire, 7, b"hello").unwrap();
        write_seq_frame(&mut wire, 8, &[3u8; 500]).unwrap();
        write_seq_end_frame(&mut wire, 9).unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert_eq!(read_seq_frame(&mut r, &mut buf).unwrap(), (7, true));
        assert_eq!(buf, b"hello");
        assert_eq!(read_seq_frame(&mut r, &mut buf).unwrap(), (8, true));
        assert_eq!(buf.len(), 500);
        assert_eq!(read_seq_frame(&mut r, &mut buf).unwrap(), (9, false));
    }

    #[test]
    fn queries_parse() {
        assert_eq!(
            Query::parse("STATS fig5").unwrap(),
            Query::Stats("fig5".to_owned())
        );
        assert_eq!(
            Query::parse("PCTL fig5 0.99").unwrap(),
            Query::Pctl("fig5".to_owned(), 0.99)
        );
        // Percent form normalizes.
        assert_eq!(
            Query::parse("PCTL fig5 99").unwrap(),
            Query::Pctl("fig5".to_owned(), 0.99)
        );
        assert_eq!(Query::parse("HEALTH").unwrap(), Query::Health);
        assert_eq!(Query::parse("SNAPSHOT").unwrap(), Query::Snapshot);
        assert_eq!(Query::parse("SHUTDOWN").unwrap(), Query::Shutdown);
        assert!(Query::parse("PCTL fig5").is_err());
        assert!(Query::parse("PCTL fig5 200").is_err());
        assert!(Query::parse("FLY me").is_err());
        assert!(Query::parse("HEALTH now").is_err());
    }

    #[test]
    fn query_render_round_trips_and_verbs_match_the_wire() {
        let queries = [
            Query::Stats("fig5".to_owned()),
            Query::Pctl("fig5".to_owned(), 0.99),
            Query::Snapshot,
            Query::Health,
            Query::Shutdown,
            Query::Quit,
        ];
        for q in queries {
            let line = q.render();
            assert_eq!(Query::parse(&line).unwrap(), q, "{line}");
            assert!(line.starts_with(q.verb()), "{line} vs {}", q.verb());
        }
    }
}
