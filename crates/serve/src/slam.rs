//! `latlab-slam`: the load generator.
//!
//! Replays one or more in-memory `.ltrc` blobs against a running
//! `latlab-serve` from N concurrent uploader threads, while a separate
//! thread measures query-path latency the whole time. The point of the
//! split is the service's own claim: the read path must stay fast
//! *while* ingest is saturated, so query latency is only meaningful
//! when measured under upload load.
//!
//! The prober cycles through the three read verbs — `PCTL` (rotating
//! over the scenarios being uploaded), `SNAPSHOT`, and `HEALTH` — and
//! the report breaks latency out per verb, since each stresses a
//! different part of the query plane (memoized quantile, whole-view
//! serialization, precomputed totals). [`SlamConfig::scenarios`] fans
//! the upload load out over N scenario names, which is how the query
//! plane gets stressed at high scenario cardinality.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use latlab_analysis::EventClass;

use crate::client::{upload, upload_resumable, QueryClient, ResumeOpts, UploadOutcome};
use crate::protocol::{PutHeader, Query};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct SlamConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent uploader connections.
    pub connections: usize,
    /// Scenario the uploads land under (the prefix, when `scenarios`
    /// fans out).
    pub scenario: String,
    /// Distinct scenario names to spread uploads over. 1 keeps the bare
    /// [`scenario`](Self::scenario) name; N > 1 uploads round-robin to
    /// `<scenario>-0` … `<scenario>-{N-1}`, and the prober's `PCTL`
    /// rotates over the same names.
    pub scenarios: usize,
    /// Event class declared on each `PUT` (None → server default).
    pub class: Option<EventClass>,
    /// Wall-clock run length; uploaders loop over the corpus until this
    /// elapses.
    pub duration: Duration,
    /// Frame payload size used when slicing traces onto the wire.
    pub frame_len: usize,
    /// Pause between query-thread probes.
    pub query_interval: Duration,
    /// Base backoff after a `BUSY` reply. Doubles per consecutive
    /// rejection of the same blob, up to [`busy_backoff_cap`]
    /// (`Self::busy_backoff_cap`), with seeded jitter on top.
    pub busy_backoff: Duration,
    /// Ceiling for the doubling backoff.
    pub busy_backoff_cap: Duration,
    /// Retries per blob before giving up and moving on. Bounds how long
    /// one uploader can camp on a saturated shard.
    pub busy_max_retries: u32,
    /// Seed for the backoff jitter. Runs with the same config and seed
    /// jitter identically; different uploader threads derive distinct
    /// streams so their retries decorrelate instead of re-colliding.
    pub seed: u64,
    /// Upload on the resumable path (`PUT … RESUME`): connection resets
    /// and read timeouts are survived by reconnecting and resuming from
    /// the server's committed watermark instead of failing the blob.
    pub resume: bool,
    /// Reconnect attempts per blob on the resumable path before the
    /// upload counts as an error.
    pub max_reconnects: u32,
}

impl Default for SlamConfig {
    fn default() -> Self {
        SlamConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            connections: 4,
            scenario: "slam".to_owned(),
            scenarios: 1,
            class: Some(EventClass::Keystroke),
            duration: Duration::from_secs(5),
            frame_len: 64 * 1024,
            query_interval: Duration::from_millis(10),
            busy_backoff: Duration::from_millis(2),
            busy_backoff_cap: Duration::from_millis(50),
            busy_max_retries: 8,
            seed: 0x51a3_ed01,
            resume: false,
            max_reconnects: 8,
        }
    }
}

/// What a slam run observed.
#[derive(Debug, Clone)]
pub struct SlamReport {
    /// Uploads acknowledged with `DONE`.
    pub uploads_done: u64,
    /// Uploads shed with `BUSY` (every rejection, including ones later
    /// retried successfully).
    pub uploads_busy: u64,
    /// `BUSY` rejections that were retried after a backoff (as opposed
    /// to abandoned once [`SlamConfig::busy_max_retries`] ran out).
    pub upload_retries: u64,
    /// Uploads that failed outright (transport or `ERR`).
    pub upload_errors: u64,
    /// Payload bytes acknowledged by the server.
    pub bytes_acked: u64,
    /// Records acknowledged by the server.
    pub records_acked: u64,
    /// Connections re-established after transport failures (resumable
    /// path only).
    pub reconnects: u64,
    /// Frames skipped on reconnects because the server's committed
    /// watermark already covered them (resumable path only).
    pub frames_resumed: u64,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
    /// Query probes completed (all verbs).
    pub queries: u64,
    /// Query round-trip p50 (ms) over all verbs, 0 if no probes landed.
    pub query_p50_ms: f64,
    /// Query round-trip p99 (ms) over all verbs, 0 if no probes landed.
    pub query_p99_ms: f64,
    /// Worst query round-trip (ms) over all verbs.
    pub query_max_ms: f64,
    /// Per-verb breakdown (`PCTL`, `SNAPSHOT`, `HEALTH`), in probe
    /// order.
    pub verbs: Vec<VerbLatency>,
}

/// One query verb's round-trip latency under load.
#[derive(Debug, Clone)]
pub struct VerbLatency {
    /// The wire verb (`PCTL`, `SNAPSHOT`, `HEALTH`).
    pub verb: &'static str,
    /// Probes of this verb completed.
    pub queries: u64,
    /// Round-trip p50 (ms), 0 if no probes landed.
    pub p50_ms: f64,
    /// Round-trip p99 (ms), 0 if no probes landed.
    pub p99_ms: f64,
    /// Worst round-trip (ms).
    pub max_ms: f64,
}

impl SlamReport {
    /// Acknowledged ingest throughput in MB/s (decimal megabytes, the
    /// unit the acceptance gate uses).
    pub fn mb_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes_acked as f64 / 1_000_000.0 / secs
    }
}

/// Runs the load: `connections` uploader threads looping over `corpus`
/// plus one query-latency prober, for `config.duration`.
///
/// # Errors
///
/// Fails only on setup (empty corpus); per-upload failures are counted
/// in the report instead.
pub fn run(config: &SlamConfig, corpus: &[Vec<u8>]) -> io::Result<SlamReport> {
    if corpus.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "slam corpus is empty",
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let bytes = Arc::new(AtomicU64::new(0));
    let records = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let frames_resumed = Arc::new(AtomicU64::new(0));
    let corpus: Arc<Vec<Vec<u8>>> = Arc::new(corpus.to_vec());
    // The scenario names uploads round-robin over (and PCTL probes hit).
    let scenario_names: Arc<Vec<String>> = Arc::new(if config.scenarios <= 1 {
        vec![config.scenario.clone()]
    } else {
        (0..config.scenarios)
            .map(|k| format!("{}-{k}", config.scenario))
            .collect()
    });

    let started = Instant::now();
    let mut uploaders = Vec::new();
    for i in 0..config.connections.max(1) {
        let stop = stop.clone();
        let done = done.clone();
        let busy = busy.clone();
        let retries = retries.clone();
        let errors = errors.clone();
        let bytes = bytes.clone();
        let records = records.clone();
        let reconnects = reconnects.clone();
        let frames_resumed = frames_resumed.clone();
        let corpus = corpus.clone();
        // One header per scenario name, built once per thread; the
        // upload loop round-robins over them without allocating.
        let headers: Vec<PutHeader> = scenario_names
            .iter()
            .map(|scenario| PutHeader {
                client: format!("slam-{i}"),
                scenario: scenario.clone(),
                class: config.class,
                resume: config.resume,
                resume_base: None,
            })
            .collect();
        let addr = config.addr;
        let frame_len = config.frame_len;
        let backoff_base = config.busy_backoff.max(Duration::from_micros(100));
        let backoff_cap = config.busy_backoff_cap.max(backoff_base);
        let max_retries = config.busy_max_retries;
        let resume_opts = config.resume.then(|| ResumeOpts {
            max_reconnects: config.max_reconnects,
            read_timeout: Duration::from_secs(10),
            reconnect_backoff: Duration::from_millis(10),
        });
        // Each uploader jitters from its own seeded stream: deterministic
        // per (config.seed, thread index), decorrelated across threads.
        let mut rng = (config.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
        uploaders.push(
            std::thread::Builder::new()
                .name(format!("slam-up-{i}"))
                .spawn(move || {
                    let mut next = i; // stagger corpus start points
                    'run: while !stop.load(Ordering::Relaxed) {
                        let blob = &corpus[next % corpus.len()];
                        let header = &headers[next % headers.len()];
                        next += 1;
                        let mut backoff = backoff_base;
                        let mut attempts = 0u32;
                        loop {
                            // The resumable path reconnects and resumes
                            // internally; resets and timeouts only count
                            // as errors once its reconnect budget is
                            // spent.
                            let outcome = match &resume_opts {
                                Some(opts) => upload_resumable(addr, header, blob, frame_len, opts)
                                    .map(|r| {
                                        reconnects.fetch_add(r.reconnects, Ordering::Relaxed);
                                        frames_resumed
                                            .fetch_add(r.frames_resumed, Ordering::Relaxed);
                                        r.outcome
                                    }),
                                None => upload(addr, header, blob, frame_len),
                            };
                            match outcome {
                                Ok(UploadOutcome::Done {
                                    records: r,
                                    bytes: b,
                                }) => {
                                    done.fetch_add(1, Ordering::Relaxed);
                                    records.fetch_add(r, Ordering::Relaxed);
                                    bytes.fetch_add(b, Ordering::Relaxed);
                                    break;
                                }
                                Ok(UploadOutcome::Busy) => {
                                    busy.fetch_add(1, Ordering::Relaxed);
                                    if attempts >= max_retries || stop.load(Ordering::Relaxed) {
                                        // Give up on this blob; move on.
                                        continue 'run;
                                    }
                                    attempts += 1;
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    // Sleep backoff/2 .. backoff: the fixed
                                    // half keeps pressure off the shard, the
                                    // jittered half decorrelates retries.
                                    rng ^= rng << 13;
                                    rng ^= rng >> 7;
                                    rng ^= rng << 17;
                                    let half_us = (backoff.as_micros() as u64 / 2).max(1);
                                    let jitter = Duration::from_micros(rng % half_us);
                                    std::thread::sleep(backoff / 2 + jitter);
                                    backoff = (backoff * 2).min(backoff_cap);
                                }
                                Ok(UploadOutcome::Rejected(_)) | Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_millis(2));
                                    break;
                                }
                            }
                        }
                    }
                })
                .expect("spawn uploader"),
        );
    }

    // The query prober shares the run with the uploaders: latencies it
    // records are read-path latencies under ingest load. Each probe is
    // tagged with its verb index so the report can break latency out
    // per verb.
    let latencies: Arc<Mutex<Vec<(u8, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let prober = {
        let stop = stop.clone();
        let latencies = latencies.clone();
        let addr = config.addr;
        let names = scenario_names.clone();
        let interval = config.query_interval;
        std::thread::Builder::new()
            .name("slam-query".to_owned())
            .spawn(move || {
                let mut client = None;
                let mut probe = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if client.is_none() {
                        client = QueryClient::connect(addr).ok();
                    }
                    if let Some(c) = client.as_mut() {
                        // Cycle the read verbs; PCTL rotates through the
                        // uploaded scenario names. All three replies are
                        // single lines, so one roundtrip each.
                        let verb = (probe % PROBE_VERBS.len()) as u8;
                        let query = match verb {
                            0 => Query::Pctl(
                                names[(probe / PROBE_VERBS.len()) % names.len()].clone(),
                                0.99,
                            ),
                            1 => Query::Snapshot,
                            _ => Query::Health,
                        };
                        let t0 = Instant::now();
                        match c.roundtrip(&query.render()) {
                            Ok(_) => {
                                let ms = t0.elapsed().as_secs_f64() * 1e3;
                                latencies.lock().expect("latency lock").push((verb, ms));
                            }
                            Err(_) => client = None,
                        }
                        probe += 1;
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn prober")
    };

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::SeqCst);
    for u in uploaders {
        let _ = u.join();
    }
    let _ = prober.join();
    let elapsed = started.elapsed();

    let all = latencies.lock().expect("latency lock").clone();
    let (queries, query_p50_ms, query_p99_ms, query_max_ms) =
        percentiles(all.iter().map(|&(_, ms)| ms).collect());
    let verbs = PROBE_VERBS
        .iter()
        .enumerate()
        .map(|(k, &verb)| {
            let (queries, p50_ms, p99_ms, max_ms) = percentiles(
                all.iter()
                    .filter(|&&(v, _)| v == k as u8)
                    .map(|&(_, ms)| ms)
                    .collect(),
            );
            VerbLatency {
                verb,
                queries,
                p50_ms,
                p99_ms,
                max_ms,
            }
        })
        .collect();
    Ok(SlamReport {
        uploads_done: done.load(Ordering::SeqCst),
        uploads_busy: busy.load(Ordering::SeqCst),
        upload_retries: retries.load(Ordering::SeqCst),
        upload_errors: errors.load(Ordering::SeqCst),
        bytes_acked: bytes.load(Ordering::SeqCst),
        records_acked: records.load(Ordering::SeqCst),
        reconnects: reconnects.load(Ordering::SeqCst),
        frames_resumed: frames_resumed.load(Ordering::SeqCst),
        elapsed,
        queries,
        query_p50_ms,
        query_p99_ms,
        query_max_ms,
        verbs,
    })
}

/// The verbs the prober cycles, in tag order.
const PROBE_VERBS: [&str; 3] = ["PCTL", "SNAPSHOT", "HEALTH"];

/// `(count, p50, p99, max)` of a latency sample set (0s when empty),
/// with the nearest-rank pick the slam report has always used.
fn percentiles(mut lat: Vec<f64>) -> (u64, f64, f64, f64) {
    lat.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let rank = (q * (lat.len() - 1) as f64).round() as usize;
        lat[rank.min(lat.len() - 1)]
    };
    (
        lat.len() as u64,
        pick(0.50),
        pick(0.99),
        lat.last().copied().unwrap_or(0.0),
    )
}

/// Builds a deterministic synthetic idle-stamp trace for load runs with
/// no recorded corpus at hand: a 100 MHz machine whose idle loop stamps
/// every ~250 cycles, with a latency spike every `spike_every` stamps.
///
/// # Panics
///
/// Never — the generated stream is monotone by construction.
pub fn synthetic_corpus(records: u64, seed: u64, spike_every: u64) -> Vec<u8> {
    generate_corpus(records, seed, spike_every, true)
}

/// Like [`synthetic_corpus`], but faithful to the paper's §2.3 idle-loop
/// shape: the overwhelming majority of stamps arrive at exactly baseline
/// pace (idle is not latency — they decode but produce no sample), a
/// small fraction carry sub-millisecond jitter, and a spike lands every
/// `spike_every` stamps. This is the profile the perf harness measures
/// ingest throughput on, since it keeps the pipeline decode-bound the
/// way a real recorded corpus does.
///
/// # Panics
///
/// Never — the generated stream is monotone by construction.
pub fn idle_corpus(records: u64, seed: u64, spike_every: u64) -> Vec<u8> {
    generate_corpus(records, seed, spike_every, false)
}

fn generate_corpus(records: u64, seed: u64, spike_every: u64, dense: bool) -> Vec<u8> {
    use latlab_des::{CpuFreq, SimDuration};
    use latlab_trace::{StreamKind, TraceMeta, TraceWriter};

    let meta = TraceMeta {
        kind: StreamKind::IdleStamps,
        freq: CpuFreq::PENTIUM_100,
        baseline: SimDuration::from_cycles(250),
        seed,
        personality: "slam-synthetic".to_owned(),
    };
    let mut w = TraceWriter::create(Vec::new(), meta).expect("in-memory trace writer");
    let mut at = 1_000u64;
    let mut state = seed | 1;
    let mut stamps = Vec::with_capacity(records.min(1 << 20) as usize);
    for i in 1..=records {
        // xorshift jitter keeps deltas varied (and the varints honest).
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Dense profile: every gap jitters, so nearly every record
        // yields a sample (a fold-stress corpus). Idle profile: 1 in 16
        // gaps jitter (drawn from higher state bits, independent of the
        // selection), the rest run at exact baseline pace.
        let jitter = if dense {
            state % 32
        } else if state.is_multiple_of(16) {
            (state >> 4) % 32
        } else {
            0
        };
        at += 250 + jitter;
        if spike_every > 0 && i % spike_every == 0 {
            // An "event" stole the CPU: 2–10 ms of extra cycles at 100 MHz.
            at += 200_000 + (state % 800_000);
        }
        stamps.push(at);
    }
    // The batched writer emits bytes identical to per-record writes.
    w.write_stamps(&stamps).expect("in-memory trace write");
    w.finish().expect("in-memory trace finish")
}
