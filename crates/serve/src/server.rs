//! The threaded TCP service: accept loop, connection handlers, and the
//! graceful-drain lifecycle.
//!
//! One thread accepts; each connection gets a handler thread. An ingest
//! connection streams framed `.ltrc` bytes through a
//! [`StreamDecoder`], converts idle-stamp intervals to
//! excess-over-baseline latency samples, and offers batches to the
//! [`ShardSet`] without ever blocking indefinitely — a full shard queue
//! surfaces as a `BUSY` reply, not as hidden buffering. Query
//! connections read from published snapshots only, so a query can never
//! stall ingest (and vice versa).
//!
//! Shutdown is a drain, not an abort: `SHUTDOWN` (or
//! [`Server::request_shutdown`]) stops the accept loop, lets in-flight
//! connections finish (bounded by the read timeout), folds every queued
//! batch, publishes final snapshots, and only then joins the workers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::{BufferPool, StreamDecoder};
use serde::Serialize;

use crate::pipeline::{SampleExtractor, INGEST_BATCH};
use crate::protocol::{read_frame, FrameError, PutHeader, Query, BUSY_LINE, MAX_LINE, OK_LINE};
use crate::shard::{Batch, IngestRejection, ShardConfig, ShardSet};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Shard pool sizing and publish cadence.
    pub shard: ShardConfig,
    /// Per-connection socket read timeout. A connection silent this
    /// long is dropped; during a drain it bounds how long the server
    /// waits for stragglers.
    pub read_timeout: Duration,
    /// How long an ingest handler retries a full shard queue before
    /// answering `BUSY`. Zero means reject on the first full queue.
    pub busy_retry: Duration,
    /// Use the per-record scalar decode path instead of the columnar
    /// batch path. The batch path is the default; the scalar path is the
    /// reference implementation, kept selectable for comparison (the
    /// perf harness measures both).
    pub scalar_ingest: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            shard: ShardConfig::default(),
            read_timeout: Duration::from_secs(30),
            busy_retry: Duration::from_millis(100),
            scalar_ingest: false,
        }
    }
}

/// Monotone service counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// Trace records decoded off the wire.
    pub ingested_records: AtomicU64,
    /// Payload bytes accepted on ingest connections.
    pub ingested_bytes: AtomicU64,
    /// Uploads rejected with `BUSY` (shard queue full).
    pub busy_rejections: AtomicU64,
    /// Query commands answered.
    pub queries: AtomicU64,
    /// Connections that ended with a protocol or transport error.
    pub failed_connections: AtomicU64,
}

/// State shared by the accept loop and every handler.
struct Inner {
    shards: ShardSet,
    stats: ServeStats,
    draining: AtomicBool,
    started: Instant,
    read_timeout: Duration,
    busy_retry: Duration,
    scalar_ingest: bool,
    /// Recycled frame-payload buffers (one held per ingest connection).
    frame_pool: BufferPool<u8>,
    /// Recycled decoded-stamp columns for the batch path.
    stamp_pool: BufferPool<u64>,
}

/// A running service instance.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the accept loop plus the shard workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            shards: ShardSet::start(&config.shard),
            stats: ServeStats::default(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            read_timeout: config.read_timeout,
            busy_retry: config.busy_retry,
            scalar_ingest: config.scalar_ingest,
            frame_pool: BufferPool::new(),
            stamp_pool: BufferPool::new(),
        });
        let accept_inner = inner.clone();
        let accept = std::thread::Builder::new()
            .name("latlab-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Server {
            inner,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.inner.stats
    }

    /// True once a drain has been requested (via this method, the
    /// `SHUTDOWN` command, or a signal handler calling it).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: stop accepting, finish in-flight
    /// connections, fold all queued batches. Returns immediately; use
    /// [`join`](Self::join) to wait.
    pub fn request_shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete and returns the final merged
    /// state: `(epoch_sum, per-scenario sketches)`. Every sample that
    /// was acknowledged with `DONE` is in the result.
    pub fn join(mut self) -> (u64, HashMap<String, LatencySketch>) {
        self.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.inner.shards.drain_and_join();
        self.inner.shards.merged()
    }
}

/// Accepts connections until a drain is requested, then joins every
/// handler it spawned.
fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_inner = inner.clone();
                let h = std::thread::Builder::new()
                    .name("latlab-conn".to_owned())
                    .spawn(move || {
                        if handle_connection(stream, &conn_inner).is_err() {
                            conn_inner
                                .stats
                                .failed_connections
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    });
                if let Ok(h) = h {
                    handlers.push(h);
                }
                // Keep the handler list from growing without bound on
                // long runs; finished threads are joined opportunistically.
                if handlers.len() >= 256 {
                    handlers.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Reads one `\n`-terminated line, bounded by [`MAX_LINE`]. `Ok(None)`
/// means EOF before any byte of a line.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = r.take(MAX_LINE as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_LINE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol line too long",
        ));
    }
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "protocol line not UTF-8"))
}

/// Dispatches a fresh connection on its first line.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    stream.set_read_timeout(Some(inner.read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let Some(first) = read_line(&mut reader)? else {
        return Ok(());
    };
    if first.starts_with("PUT ") {
        handle_ingest(&first, &mut reader, &mut writer, inner)
    } else {
        handle_queries(&first, &mut reader, &mut writer, inner)
    }
}

/// One `PUT` upload: frames → stream decoder → latency samples → shards.
///
/// The working buffers — frame payload, decoded-stamp column, and the
/// pending sample batch — come from the shared pools and go back when
/// the upload ends (cleanly or not), so a warmed-up service allocates
/// nothing per frame. Buffers inside a batch already offered to a shard
/// are returned by the folding worker instead; a batch the shard
/// rejected with `BUSY` is dropped with the connection (the pool refills
/// from the next upload).
fn handle_ingest(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
) -> io::Result<()> {
    let header = match PutHeader::parse(first) {
        Ok(h) => h,
        Err(msg) => {
            writeln!(writer, "ERR {msg}")?;
            return writer.flush();
        }
    };
    if inner.draining.load(Ordering::SeqCst) {
        writeln!(writer, "ERR draining")?;
        return writer.flush();
    }
    writeln!(writer, "{OK_LINE}")?;
    writer.flush()?;

    let mut frame = inner.frame_pool.get();
    let mut stamps = inner.stamp_pool.get();
    let mut pending = inner.shards.sample_pool().get();
    pending.reserve(INGEST_BATCH);
    let result = ingest_stream(
        &header,
        reader,
        writer,
        inner,
        &mut frame,
        &mut stamps,
        &mut pending,
    );
    inner.frame_pool.put(frame);
    inner.stamp_pool.put(stamps);
    inner.shards.sample_pool().put(pending);
    result
}

/// The ingest frame loop, factored out so [`handle_ingest`] can recycle
/// the working buffers on every exit path.
fn ingest_stream(
    header: &PutHeader,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
    frame: &mut Vec<u8>,
    stamps: &mut Vec<u64>,
    pending: &mut Vec<f64>,
) -> io::Result<()> {
    let shard = inner.shards.route(&header.client, &header.scenario);
    let mut decoder = if inner.scalar_ingest {
        StreamDecoder::new_scalar()
    } else {
        StreamDecoder::new()
    };
    let mut extractor = SampleExtractor::new();
    loop {
        match read_frame(reader, frame) {
            Ok(true) => {
                if let Err(e) = decoder.feed(frame) {
                    writeln!(writer, "ERR trace: {e}")?;
                    writer.flush()?;
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                inner
                    .stats
                    .ingested_bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if inner.scalar_ingest {
                    extractor.pull(&mut decoder, pending);
                } else {
                    extractor.pull_batch(&mut decoder, stamps, pending);
                }
                if pending.len() >= INGEST_BATCH && !offer(inner, shard, header, pending, writer)? {
                    return Ok(());
                }
            }
            Ok(false) => break,
            Err(FrameError::Io(e)) => return Err(e),
            Err(e) => {
                writeln!(writer, "ERR {e}")?;
                writer.flush()?;
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
        }
    }
    if !decoder.is_clean_boundary() {
        writeln!(writer, "ERR upload ended mid-chunk")?;
        writer.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "upload ended mid-chunk",
        ));
    }
    if !pending.is_empty() && !offer(inner, shard, header, pending, writer)? {
        return Ok(());
    }
    inner
        .stats
        .ingested_records
        .fetch_add(decoder.records_decoded(), Ordering::Relaxed);
    writeln!(
        writer,
        "DONE {} {}",
        decoder.records_decoded(),
        decoder.bytes_fed()
    )?;
    writer.flush()
}

/// Offers the pending samples to a shard, retrying a full queue within
/// the configured window. Returns `Ok(false)` after answering `BUSY`.
fn offer(
    inner: &Arc<Inner>,
    shard: usize,
    header: &PutHeader,
    pending: &mut Vec<f64>,
    writer: &mut impl Write,
) -> io::Result<bool> {
    // Swap the filled batch out for a recycled buffer; the folding
    // worker returns the filled one to the pool when it's done.
    let mut batch = Batch {
        scenario: header.scenario.clone(),
        class: header.class.unwrap_or(EventClass::Background),
        samples: std::mem::replace(pending, inner.shards.sample_pool().get()),
    };
    let deadline = Instant::now() + inner.busy_retry;
    loop {
        match inner.shards.try_ingest(shard, batch) {
            Ok(()) => return Ok(true),
            Err((returned, IngestRejection::QueueFull)) => {
                if Instant::now() >= deadline {
                    inner.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{BUSY_LINE}")?;
                    writer.flush()?;
                    return Ok(false);
                }
                batch = returned;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err((_, IngestRejection::Closed)) => {
                writeln!(writer, "ERR draining")?;
                writer.flush()?;
                return Ok(false);
            }
        }
    }
}

/// JSON view of the merged snapshot (the `SNAPSHOT` reply).
#[derive(Debug, Serialize)]
struct SnapshotView {
    /// Sum of shard epochs; grows with every publish anywhere.
    epoch: u64,
    /// Samples across all scenarios.
    total: u64,
    /// Per-scenario summaries, keyed by scenario name.
    scenarios: std::collections::BTreeMap<String, ScenarioView>,
}

/// One scenario inside [`SnapshotView`].
#[derive(Debug, Serialize)]
struct ScenarioView {
    count: u64,
    misses: u64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn scenario_view(sketch: &LatencySketch) -> ScenarioView {
    let q = |p: f64| sketch.quantile(p).unwrap_or(0.0);
    ScenarioView {
        count: sketch.total(),
        misses: sketch.total_misses(),
        p50_ms: q(0.50),
        p90_ms: q(0.90),
        p99_ms: q(0.99),
        max_ms: q(1.0),
    }
}

/// The query loop: answers commands until `QUIT`, EOF, or drain.
fn handle_queries(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
) -> io::Result<()> {
    let mut line = Some(first.to_owned());
    loop {
        let Some(current) = line.take() else {
            match read_line(reader) {
                Ok(Some(l)) => line = Some(l),
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle connection: stay open unless draining.
                    if inner.draining.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
            continue;
        };
        if current.is_empty() {
            continue;
        }
        inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        match Query::parse(&current) {
            Err(msg) => writeln!(writer, "ERR {msg}")?,
            Ok(Query::Quit) => {
                writer.flush()?;
                return Ok(());
            }
            Ok(Query::Shutdown) => {
                inner.draining.store(true, Ordering::SeqCst);
                writeln!(writer, "draining")?;
            }
            Ok(Query::Health) => {
                let (epoch, merged) = inner.shards.merged();
                let s = &inner.stats;
                writeln!(
                    writer,
                    "ok uptime_s={} shards={} connections={} ingested_records={} \
                     ingested_bytes={} busy_rejections={} queries={} failed={} \
                     scenarios={} epoch={}",
                    inner.started.elapsed().as_secs(),
                    inner.shards.len(),
                    s.connections.load(Ordering::Relaxed),
                    s.ingested_records.load(Ordering::Relaxed),
                    s.ingested_bytes.load(Ordering::Relaxed),
                    s.busy_rejections.load(Ordering::Relaxed),
                    s.queries.load(Ordering::Relaxed),
                    s.failed_connections.load(Ordering::Relaxed),
                    merged.len(),
                    epoch,
                )?;
            }
            Ok(Query::Pctl(scenario, p)) => {
                let (_, merged) = inner.shards.merged();
                match merged.get(&scenario).and_then(|s| s.quantile(p)) {
                    Some(ms) => {
                        writeln!(writer, "pctl scenario={scenario} p={p} ms={ms:.4}")?;
                    }
                    None => writeln!(writer, "ERR no data for scenario {scenario:?}")?,
                }
            }
            Ok(Query::Stats(scenario)) => {
                let (_, merged) = inner.shards.merged();
                match merged.get(&scenario) {
                    None => writeln!(writer, "ERR no data for scenario {scenario:?}")?,
                    Some(sketch) => {
                        writeln!(
                            writer,
                            "scenario={scenario} total={} misses={}",
                            sketch.total(),
                            sketch.total_misses()
                        )?;
                        for class in EventClass::ALL {
                            let c = sketch.class(class);
                            if c.count() == 0 {
                                continue;
                            }
                            writeln!(
                                writer,
                                "class={} count={} misses={} saturated={} \
                                 mean_ms={:.4} p50_ms={:.4} p99_ms={:.4} max_ms={:.4}",
                                class.name(),
                                c.count(),
                                c.misses(),
                                c.saturated(),
                                c.stats().mean(),
                                c.quantile(0.50).unwrap_or(0.0),
                                c.quantile(0.99).unwrap_or(0.0),
                                c.stats().max(),
                            )?;
                        }
                        writeln!(writer, ".")?;
                    }
                }
            }
            Ok(Query::Snapshot) => {
                let (epoch, merged) = inner.shards.merged();
                let view = SnapshotView {
                    epoch,
                    total: merged.values().map(LatencySketch::total).sum(),
                    scenarios: merged
                        .iter()
                        .map(|(name, sketch)| (name.clone(), scenario_view(sketch)))
                        .collect(),
                };
                let json = serde_json::to_string(&view)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                writeln!(writer, "{json}")?;
            }
        }
        writer.flush()?;
    }
}
