//! The threaded TCP service: accept loop, connection handlers, and the
//! graceful-drain lifecycle.
//!
//! One thread accepts; each connection gets a handler thread. An ingest
//! handler is a thin **frame pump**: it reads framed `.ltrc` bytes off
//! the socket and forwards whole frames to the [`ShardSet`] — the shard
//! worker owns decoding, sample extraction, folding, and (when enabled)
//! the write-ahead log, so the log's order *is* the fold order. The
//! handler never blocks indefinitely on a shard: a full queue surfaces
//! as a `BUSY` reply, not as hidden buffering. Query connections read
//! from published snapshots only, so a query can never stall ingest
//! (and vice versa).
//!
//! **Durability:** with a WAL configured, [`Server::start`] runs
//! recovery (checkpoint load + log replay, inside
//! [`ShardSet::start`]) *before* binding the listener — a recovering
//! server is invisible until its pre-crash state is queryable.
//! Resumable uploads (`PUT … RESUME`) are greeted with `OK <seq>`, the
//! committed watermark, and receive cumulative `OK <seq>` ack lines as
//! their frames become durable; an acked frame survives `kill -9`, and
//! a re-sent frame at or below the watermark is deduplicated, so every
//! sample lands in the sketch exactly once.
//!
//! Shutdown is a drain, not an abort: `SHUTDOWN` (or
//! [`Server::request_shutdown`]) stops the accept loop, lets in-flight
//! connections finish (bounded by the read timeout), commits and
//! checkpoints every shard's log — truncating it, so a clean restart
//! replays nothing — publishes final snapshots, and only then joins the
//! workers.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::BufferPool;
use serde::Serialize;

use crate::protocol::{
    read_frame, read_seq_frame, FrameError, PutHeader, Query, BUSY_LINE, MAX_LINE, OK_LINE,
};
use crate::query::QueryPlane;
use crate::shard::{BeginMode, IngestRejection, Msg, Reply, ShardConfig, ShardSet};
use crate::wal::{RecoveryStats, StreamId, WalConfig};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Shard pool sizing and publish cadence.
    pub shard: ShardConfig,
    /// Write-ahead log; `None` runs the service purely in memory.
    pub wal: Option<WalConfig>,
    /// Per-connection socket read timeout. A connection silent this
    /// long is dropped; during a drain it bounds how long the server
    /// waits for stragglers.
    pub read_timeout: Duration,
    /// How long an ingest handler retries a full shard queue before
    /// answering `BUSY`. Zero means reject on the first full queue.
    pub busy_retry: Duration,
    /// Use the per-record scalar decode path instead of the columnar
    /// batch path. The batch path is the default; the scalar path is the
    /// reference implementation, kept selectable for comparison (the
    /// perf harness measures both).
    pub scalar_ingest: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            shard: ShardConfig::default(),
            wal: None,
            read_timeout: Duration::from_secs(30),
            busy_retry: Duration::from_millis(100),
            scalar_ingest: false,
        }
    }
}

/// Monotone service counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// Trace records acknowledged via `DONE` replies.
    pub ingested_records: AtomicU64,
    /// Frame payload bytes read off ingest connections.
    pub ingested_bytes: AtomicU64,
    /// Uploads rejected with `BUSY` (shard queue full).
    pub busy_rejections: AtomicU64,
    /// Query commands answered.
    pub queries: AtomicU64,
    /// Connections that ended with a protocol or transport error.
    pub failed_connections: AtomicU64,
}

/// State shared by the accept loop and every handler.
struct Inner {
    shards: ShardSet,
    /// The incremental query plane: one cached merged view shared by
    /// every query connection, refreshed (cheaply, via `Arc::ptr_eq`
    /// dirty detection) per command instead of re-merged from scratch.
    plane: QueryPlane,
    /// Recycles reply-encoding buffers across query connections, so
    /// the steady-state response path performs no allocation.
    reply_pool: BufferPool<u8>,
    stats: ServeStats,
    draining: AtomicBool,
    started: Instant,
    read_timeout: Duration,
    busy_retry: Duration,
}

/// A running service instance.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Recovers durable state (when a WAL is configured), then binds
    /// and starts the accept loop plus the shard workers. No connection
    /// is accepted before recovery has fully replayed the log.
    ///
    /// # Errors
    ///
    /// Propagates WAL-directory and bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        // Recover before bind: nothing can observe a half-recovered
        // service through the socket.
        let shards = ShardSet::start(&config.shard, config.wal.as_ref(), config.scalar_ingest)?;
        let listener = TcpListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            shards,
            plane: QueryPlane::new(),
            reply_pool: BufferPool::new(),
            stats: ServeStats::default(),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            read_timeout: config.read_timeout,
            busy_retry: config.busy_retry,
        });
        let accept_inner = inner.clone();
        let accept = std::thread::Builder::new()
            .name("latlab-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Server {
            inner,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.inner.stats
    }

    /// What recovery replayed at startup (all zeros without a WAL).
    pub fn recovery(&self) -> &RecoveryStats {
        self.inner.shards.recovery()
    }

    /// True once a drain has been requested (via this method, the
    /// `SHUTDOWN` command, or a signal handler calling it).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: stop accepting, finish in-flight
    /// connections, commit and checkpoint every shard. Returns
    /// immediately; use [`join`](Self::join) to wait.
    pub fn request_shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete and returns the final merged
    /// state: `(epoch_sum, per-scenario sketches)`. Every sample that
    /// was acknowledged is in the result, and (with a WAL) the final
    /// checkpoint covers the whole log.
    pub fn join(mut self) -> (u64, HashMap<String, LatencySketch>) {
        self.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.inner.shards.drain_and_join();
        // One last plane refresh picks up the final publishes
        // incrementally; only scenarios dirtied since the last query are
        // re-merged, instead of one parting full merge.
        self.inner
            .plane
            .refresh_from(&self.inner.shards)
            .to_sketches()
    }

    /// Fault-injection hook: dies as `kill -9` would — no drain, no
    /// final flush or checkpoint. In-flight connections fail; WAL bytes
    /// not yet flushed are lost. The chaos tests restart from the same
    /// WAL directory and assert recovery rebuilds exactly the
    /// acknowledged state.
    pub fn crash(mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.inner.shards.crash_and_join();
    }
}

/// Accepts connections until a drain is requested, then joins every
/// handler it spawned.
fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_inner = inner.clone();
                let h = std::thread::Builder::new()
                    .name("latlab-conn".to_owned())
                    .spawn(move || {
                        if handle_connection(stream, &conn_inner).is_err() {
                            conn_inner
                                .stats
                                .failed_connections
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    });
                if let Ok(h) = h {
                    handlers.push(h);
                }
                // Keep the handler list from growing without bound on
                // long runs; finished threads are joined opportunistically.
                if handlers.len() >= 256 {
                    handlers.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Reads one `\n`-terminated line, bounded by [`MAX_LINE`]. `Ok(None)`
/// means EOF before any byte of a line.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = r.take(MAX_LINE as u64 + 1);
    let n = limited.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_LINE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol line too long",
        ));
    }
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "protocol line not UTF-8"))
}

/// Dispatches a fresh connection on its first line.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) -> io::Result<()> {
    stream.set_read_timeout(Some(inner.read_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let Some(first) = read_line(&mut reader)? else {
        return Ok(());
    };
    if first.starts_with("PUT ") {
        handle_ingest(&first, &mut reader, &mut writer, inner)
    } else {
        handle_queries(&first, &mut reader, &mut writer, inner)
    }
}

/// One `PUT` upload: attach the connection to its stream on the owning
/// shard, pump frames, relay acks and the verdict.
///
/// Resumable uploads (`RESUME`) address a durable [`StreamId::Keyed`]
/// stream; plain uploads get a one-shot [`StreamId::Conn`] stream that
/// dies with the connection (a handler exiting abnormally cancels it).
fn handle_ingest(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
) -> io::Result<()> {
    let header = match PutHeader::parse(first) {
        Ok(h) => h,
        Err(msg) => {
            writeln!(writer, "ERR {msg}")?;
            return writer.flush();
        }
    };
    if inner.draining.load(Ordering::SeqCst) {
        writeln!(writer, "ERR draining")?;
        return writer.flush();
    }
    let stream = if header.resume {
        StreamId::Keyed {
            client: header.client.clone(),
            scenario: header.scenario.clone(),
        }
    } else {
        StreamId::Conn {
            conn: inner.shards.alloc_conn(),
            scenario: header.scenario.clone(),
        }
    };
    let mode = match (header.resume, header.resume_base) {
        (true, Some(base)) => BeginMode::Continue(base),
        _ => BeginMode::Fresh,
    };
    let shard = inner.shards.route(&header.client, &header.scenario);
    let (reply_tx, reply_rx) = channel();
    if !offer(
        inner,
        shard,
        Msg::Begin {
            stream: stream.clone(),
            class: header.class,
            mode,
            reply: reply_tx,
        },
        writer,
    )? {
        return Ok(());
    }
    let watermark = match recv_reply(&reply_rx, inner.read_timeout) {
        Some(Reply::Started { last_seq }) => last_seq,
        Some(Reply::Err(msg)) => {
            writeln!(writer, "ERR {msg}")?;
            return writer.flush();
        }
        _ => {
            writeln!(writer, "ERR shard unavailable")?;
            writer.flush()?;
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "shard gone"));
        }
    };
    // The greeting: resumable clients learn the committed watermark and
    // skip what the server already holds; legacy clients get plain OK.
    if header.resume {
        writeln!(writer, "OK {watermark}")?;
    } else {
        writeln!(writer, "{OK_LINE}")?;
    }
    writer.flush()?;
    let result = pump_frames(
        &stream,
        header.resume,
        shard,
        reader,
        writer,
        inner,
        &reply_rx,
    );
    if !matches!(result, Ok(true)) {
        // The upload did not complete: free the one-shot stream's state.
        // Keyed streams stay — their watermark is what resume is for.
        if matches!(stream, StreamId::Conn { .. }) {
            let _ = inner.shards.send(shard, Msg::Cancel { stream });
        }
    }
    result.map(|_| ())
}

/// The frame loop: socket → shard queue, with ack relay in between.
/// `Ok(true)` means the upload completed (`DONE` or duplicate-`DONE`).
fn pump_frames(
    stream: &StreamId,
    resume: bool,
    shard: usize,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
    reply_rx: &Receiver<Reply>,
) -> io::Result<bool> {
    let mut auto_seq = 0u64; // numbers legacy frames server-side
    let end_seq;
    loop {
        let mut frame = inner.shards.frame_pool().get();
        let read = if resume {
            read_seq_frame(reader, &mut frame)
        } else {
            read_frame(reader, &mut frame).map(|more| (auto_seq + 1, more))
        };
        match read {
            Ok((seq, true)) => {
                auto_seq = seq;
                inner
                    .stats
                    .ingested_bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                let msg = Msg::Frame {
                    stream: stream.clone(),
                    seq,
                    bytes: frame,
                };
                if !offer(inner, shard, msg, writer)? {
                    return Ok(false);
                }
                if !relay_pending(reply_rx, resume, writer)? {
                    return Ok(false);
                }
            }
            Ok((seq, false)) => {
                inner.shards.frame_pool().put(frame);
                end_seq = if resume { seq } else { auto_seq + 1 };
                break;
            }
            Err(FrameError::Io(e)) => {
                inner.shards.frame_pool().put(frame);
                return Err(e);
            }
            Err(e) => {
                inner.shards.frame_pool().put(frame);
                writeln!(writer, "ERR {e}")?;
                writer.flush()?;
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
        }
    }
    if !offer(
        inner,
        shard,
        Msg::End {
            stream: stream.clone(),
            seq: end_seq,
        },
        writer,
    )? {
        return Ok(false);
    }
    // Await the verdict, relaying acks that commit ahead of it.
    loop {
        match recv_reply(reply_rx, inner.read_timeout) {
            Some(Reply::Ack { seq }) => {
                if resume {
                    writeln!(writer, "OK {seq}")?;
                    writer.flush()?;
                }
            }
            Some(Reply::Done { records, bytes }) => {
                inner
                    .stats
                    .ingested_records
                    .fetch_add(records, Ordering::Relaxed);
                writeln!(writer, "DONE {records} {bytes}")?;
                writer.flush()?;
                return Ok(true);
            }
            Some(Reply::Err(msg)) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
                return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
            }
            Some(Reply::Started { .. }) | None => {
                writeln!(writer, "ERR shard unavailable")?;
                writer.flush()?;
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "shard gone"));
            }
        }
    }
}

/// Forwards already-arrived replies without blocking. `Ok(false)` ends
/// the upload (the worker reported an error).
fn relay_pending(
    reply_rx: &Receiver<Reply>,
    resume: bool,
    writer: &mut impl Write,
) -> io::Result<bool> {
    loop {
        match reply_rx.try_recv() {
            Ok(Reply::Ack { seq }) => {
                if resume {
                    writeln!(writer, "OK {seq}")?;
                    writer.flush()?;
                }
            }
            Ok(Reply::Err(msg)) => {
                writeln!(writer, "ERR {msg}")?;
                writer.flush()?;
                return Ok(false);
            }
            // A stale Done can only be a duplicate-end replay racing the
            // socket; the verdict loop is where it matters.
            Ok(Reply::Done { .. } | Reply::Started { .. }) => {}
            Err(TryRecvError::Empty) => return Ok(true),
            Err(TryRecvError::Disconnected) => {
                writeln!(writer, "ERR shard unavailable")?;
                writer.flush()?;
                return Ok(false);
            }
        }
    }
}

/// Receives one reply, tolerating spurious wakeups up to the timeout.
fn recv_reply(rx: &Receiver<Reply>, timeout: Duration) -> Option<Reply> {
    rx.recv_timeout(timeout).ok()
}

/// Offers a message to a shard, retrying a full queue within the
/// configured window. Returns `Ok(false)` after answering `BUSY` (or
/// `ERR draining` when the shard has shut down).
fn offer(inner: &Arc<Inner>, shard: usize, msg: Msg, writer: &mut impl Write) -> io::Result<bool> {
    let deadline = Instant::now() + inner.busy_retry;
    let mut msg = msg;
    loop {
        match inner.shards.try_send(shard, msg) {
            Ok(()) => return Ok(true),
            Err((returned, IngestRejection::QueueFull)) => {
                if Instant::now() >= deadline {
                    inner.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{BUSY_LINE}")?;
                    writer.flush()?;
                    return Ok(false);
                }
                msg = returned;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err((_, IngestRejection::Closed)) => {
                writeln!(writer, "ERR draining")?;
                writer.flush()?;
                return Ok(false);
            }
        }
    }
}

/// JSON view of the merged snapshot (the `SNAPSHOT` reply).
#[derive(Debug, Serialize)]
struct SnapshotView {
    /// Sum of shard epochs; grows with every publish anywhere.
    epoch: u64,
    /// Samples across all scenarios.
    total: u64,
    /// Per-scenario summaries, keyed by scenario name.
    scenarios: std::collections::BTreeMap<String, ScenarioView>,
}

/// One scenario inside [`SnapshotView`].
#[derive(Debug, Serialize)]
struct ScenarioView {
    count: u64,
    misses: u64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// The query loop: answers commands until `QUIT`, EOF, or drain.
/// Encoding happens into a [`BufferPool`]-recycled buffer that is
/// flushed to the socket in one write, so the handler borrows no
/// allocation per reply in steady state.
fn handle_queries(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
) -> io::Result<()> {
    let mut buf = inner.reply_pool.get();
    let result = query_loop(first, reader, writer, inner, &mut buf);
    inner.reply_pool.put(buf);
    result
}

fn query_loop(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    inner: &Arc<Inner>,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    // Scratch for SNAPSHOT's batched quantile lookups.
    let mut quantiles: Vec<f64> = Vec::new();
    let mut line = Some(first.to_owned());
    loop {
        let Some(current) = line.take() else {
            match read_line(reader) {
                Ok(Some(l)) => line = Some(l),
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle connection: stay open unless draining.
                    if inner.draining.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
            continue;
        };
        if current.is_empty() {
            continue;
        }
        inner.stats.queries.fetch_add(1, Ordering::Relaxed);
        buf.clear();
        match Query::parse(&current) {
            Err(msg) => writeln!(buf, "ERR {msg}")?,
            Ok(Query::Quit) => {
                writer.flush()?;
                return Ok(());
            }
            Ok(Query::Shutdown) => {
                inner.draining.store(true, Ordering::SeqCst);
                writeln!(buf, "draining")?;
            }
            Ok(Query::Health) => {
                let view = inner.plane.refresh_from(&inner.shards);
                let plane = inner.plane.stats();
                let s = &inner.stats;
                let totals = inner.shards.totals();
                let rec = inner.shards.recovery();
                writeln!(
                    buf,
                    "ok uptime_s={} shards={} connections={} ingested_records={} \
                     ingested_bytes={} busy_rejections={} queries={} failed={} \
                     scenarios={} epoch={} wal={} wal_records={} wal_bytes={} \
                     dedup_dropped={} recovered_frames={} recovered_records={} \
                     recovered_samples={} recovered_torn={} recovery_ms={} \
                     total_samples={} total_misses={} view_refreshes={} \
                     view_hits={} view_remerged={} view_cold_rebuilds={}",
                    inner.started.elapsed().as_secs(),
                    inner.shards.len(),
                    s.connections.load(Ordering::Relaxed),
                    s.ingested_records.load(Ordering::Relaxed),
                    s.ingested_bytes.load(Ordering::Relaxed),
                    s.busy_rejections.load(Ordering::Relaxed),
                    s.queries.load(Ordering::Relaxed),
                    s.failed_connections.load(Ordering::Relaxed),
                    view.len(),
                    view.epoch(),
                    u8::from(inner.shards.wal_enabled()),
                    totals.wal_records.load(Ordering::Relaxed),
                    totals.wal_bytes.load(Ordering::Relaxed),
                    totals.dedup_dropped.load(Ordering::Relaxed),
                    rec.frames,
                    rec.records,
                    rec.samples,
                    rec.torn_tails,
                    rec.millis,
                    view.total(),
                    view.total_misses(),
                    plane.refreshes,
                    plane.hits,
                    plane.remerged,
                    plane.cold_rebuilds,
                )?;
            }
            Ok(Query::Pctl(scenario, p)) => {
                let view = inner.plane.refresh_from(&inner.shards);
                match view.get(&scenario).and_then(|e| e.quantile(p)) {
                    Some(ms) => {
                        writeln!(buf, "pctl scenario={scenario} p={p} ms={ms:.4}")?;
                    }
                    None => writeln!(buf, "ERR no data for scenario {scenario:?}")?,
                }
            }
            Ok(Query::Stats(scenario)) => {
                let view = inner.plane.refresh_from(&inner.shards);
                match view.get(&scenario) {
                    None => writeln!(buf, "ERR no data for scenario {scenario:?}")?,
                    Some(entry) => {
                        writeln!(
                            buf,
                            "scenario={scenario} total={} misses={}",
                            entry.total(),
                            entry.misses()
                        )?;
                        for class in EventClass::ALL {
                            let c = entry.sketch().class(class);
                            if c.count() == 0 {
                                continue;
                            }
                            writeln!(
                                buf,
                                "class={} count={} misses={} saturated={} \
                                 mean_ms={:.4} p50_ms={:.4} p99_ms={:.4} max_ms={:.4}",
                                class.name(),
                                c.count(),
                                c.misses(),
                                c.saturated(),
                                c.stats().mean(),
                                c.quantile(0.50).unwrap_or(0.0),
                                c.quantile(0.99).unwrap_or(0.0),
                                c.stats().max(),
                            )?;
                        }
                        writeln!(buf, ".")?;
                    }
                }
            }
            Ok(Query::Snapshot) => {
                let view = inner.plane.refresh_from(&inner.shards);
                let snapshot = SnapshotView {
                    epoch: view.epoch(),
                    total: view.total(),
                    scenarios: view
                        .iter()
                        .map(|(name, entry)| {
                            entry.quantiles(&[0.50, 0.90, 0.99, 1.0], &mut quantiles);
                            (
                                name.to_owned(),
                                ScenarioView {
                                    count: entry.total(),
                                    misses: entry.misses(),
                                    p50_ms: quantiles[0],
                                    p90_ms: quantiles[1],
                                    p99_ms: quantiles[2],
                                    max_ms: quantiles[3],
                                },
                            )
                        })
                        .collect(),
                };
                let json = serde_json::to_string(&snapshot)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                writeln!(buf, "{json}")?;
            }
        }
        writer.write_all(buf)?;
        writer.flush()?;
    }
}
