//! Per-shard write-ahead log and checkpointing.
//!
//! Durability for ingest works at the frame level: every accepted frame
//! is appended to the owning shard's log *before* it is acknowledged, so
//! an acknowledged sample is always recoverable. The on-disk pieces:
//!
//! * **Segments** (`seg-<first_lsn>.wal`): a `LWAL` header followed by
//!   [`WalRecord`]s in the same length-prefixed CRC-32 framing the wire
//!   protocol uses ([`crate::protocol::write_frame`]). Records carry
//!   implicit, densely increasing log sequence numbers (LSNs) starting
//!   at the segment's `first_lsn`. Segments rotate at a size threshold.
//! * **Checkpoints** (`ckpt-<last_lsn>.ckpt`): an epoch snapshot of the
//!   shard's state — every scenario sketch (via
//!   [`LatencySketch::encode`]) plus every live upload stream's resume
//!   state (committed seq, mid-trace [`DecoderState`], extractor stamp)
//!   — written to a temp file and atomically renamed, with a trailing
//!   CRC-32 over the whole image.
//!
//! Recovery = newest valid checkpoint + [`replay`] of every record with
//! an LSN past it, through the same decode→extract→fold path live
//! ingest uses. A torn tail (partial final record, from a crash mid
//! `write(2)`) is treated as a clean end of log: replay stops at the
//! last intact record, exactly like the trace reader's tolerant
//! salvage. Nothing here calls `fsync` — the contract is crash-safety
//! against process death (`kill -9`), where completed `write(2)`s
//! survive, not against power loss.
//!
//! Checkpoints prune: every segment fully covered by the checkpoint's
//! `last_lsn` is deleted, and a drain-time checkpoint covers everything,
//! so a clean restart replays nothing.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use latlab_analysis::{EventClass, LatencySketch};
use latlab_trace::{crc32, DecoderState, TraceMeta};

use crate::protocol::{write_frame, MAX_FRAME_PAYLOAD};

/// Segment file magic: `LWAL` ("latlab WAL").
pub const SEGMENT_MAGIC: [u8; 4] = *b"LWAL";

/// Checkpoint file magic: `LCKP` ("latlab checkpoint").
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LCKP";

/// Current on-disk WAL format version (segments and checkpoints).
pub const WAL_VERSION: u8 = 1;

/// Segment header: magic + version + first_lsn.
const SEGMENT_HEADER_LEN: usize = 4 + 1 + 8;

/// A WAL record wraps one wire frame plus stream identity; allow for
/// the wrapping overhead on top of the wire payload cap.
const MAX_WAL_RECORD: usize = MAX_FRAME_PAYLOAD + 4096;

/// Checkpoint files kept around after a new one lands (the newest is
/// authoritative; one predecessor survives as a fallback).
const CHECKPOINTS_KEPT: usize = 2;

/// Write-ahead log tuning.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Root directory; each shard logs under `<dir>/shard-<i>/`.
    pub dir: PathBuf,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Write a checkpoint after this many record bytes since the last.
    pub checkpoint_bytes: u64,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, checkpoint every 32 MiB appended.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 << 20,
            checkpoint_bytes: 32 << 20,
        }
    }

    /// The per-shard log directory.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}"))
    }
}

/// Identity of one upload stream inside a shard.
///
/// Resumable uploads are **keyed** by `(client, scenario)` — the key the
/// dedupe watermark and resume state live under. Legacy uploads get a
/// per-connection id instead, so any number of them may run concurrently
/// under the same `(client, scenario)` without colliding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// A resumable stream: survives disconnects, dedupes by seq.
    Keyed {
        /// Client identity from the `PUT` header.
        client: String,
        /// Scenario the samples fold under.
        scenario: String,
    },
    /// A legacy one-shot stream, alive only as long as its connection.
    Conn {
        /// Server-assigned connection id, unique across a server run
        /// (and, after recovery, across restarts sharing a WAL).
        conn: u64,
        /// Scenario the samples fold under.
        scenario: String,
    },
}

impl StreamId {
    /// The scenario this stream folds into.
    pub fn scenario(&self) -> &str {
        match self {
            StreamId::Keyed { scenario, .. } | StreamId::Conn { scenario, .. } => scenario,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StreamId::Keyed { client, scenario } => {
                out.push(0);
                put_str(out, client);
                put_str(out, scenario);
            }
            StreamId::Conn { conn, scenario } => {
                out.push(1);
                out.extend_from_slice(&conn.to_le_bytes());
                put_str(out, scenario);
            }
        }
    }

    fn decode(buf: &[u8], at: &mut usize) -> Option<StreamId> {
        match get_u8(buf, at)? {
            0 => {
                let client = get_str(buf, at)?;
                let scenario = get_str(buf, at)?;
                Some(StreamId::Keyed { client, scenario })
            }
            1 => {
                let conn = get_u64(buf, at)?;
                let scenario = get_str(buf, at)?;
                Some(StreamId::Conn { conn, scenario })
            }
            _ => None,
        }
    }

    /// The conn id, for legacy streams.
    pub(crate) fn conn_id(&self) -> Option<u64> {
        match self {
            StreamId::Conn { conn, .. } => Some(*conn),
            StreamId::Keyed { .. } => None,
        }
    }
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An accepted trace frame: replay feeds `bytes` to the stream's
    /// decoder exactly as live ingest did.
    Frame {
        /// Owning stream.
        stream: StreamId,
        /// Event class the stream's samples are accounted under.
        class: Option<EventClass>,
        /// Upload sequence number of this frame.
        seq: u64,
        /// Raw wire-frame payload (trace bytes).
        bytes: Vec<u8>,
    },
    /// The end-of-upload marker: the stream's trace completed cleanly.
    End {
        /// Owning stream.
        stream: StreamId,
        /// Sequence number of the end frame.
        seq: u64,
    },
}

/// Serializes a `Frame` record payload from borrowed parts (the worker
/// logs pooled frame buffers without giving them up).
pub(crate) fn encode_frame_record(
    stream: &StreamId,
    class: Option<EventClass>,
    seq: u64,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    out.push(1);
    stream.encode(out);
    out.push(class.map_or(0, |c| c.index() as u8 + 1));
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes an `End` record payload from borrowed parts.
pub(crate) fn encode_end_record(stream: &StreamId, seq: u64, out: &mut Vec<u8>) {
    out.push(2);
    stream.encode(out);
    out.extend_from_slice(&seq.to_le_bytes());
}

impl WalRecord {
    /// Serializes the record payload (the part that goes inside the
    /// length+CRC framing).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Frame {
                stream,
                class,
                seq,
                bytes,
            } => encode_frame_record(stream, *class, *seq, bytes, out),
            WalRecord::End { stream, seq } => encode_end_record(stream, *seq, out),
        }
    }

    /// Parses a record payload; `None` on any malformation.
    pub fn decode(buf: &[u8]) -> Option<WalRecord> {
        let mut at = 0usize;
        match get_u8(buf, &mut at)? {
            1 => {
                let stream = StreamId::decode(buf, &mut at)?;
                let class = decode_class(get_u8(buf, &mut at)?)?;
                let seq = get_u64(buf, &mut at)?;
                let bytes = buf[at..].to_vec();
                Some(WalRecord::Frame {
                    stream,
                    class,
                    seq,
                    bytes,
                })
            }
            2 => {
                let stream = StreamId::decode(buf, &mut at)?;
                let seq = get_u64(buf, &mut at)?;
                if at != buf.len() {
                    return None;
                }
                Some(WalRecord::End { stream, seq })
            }
            _ => None,
        }
    }

    /// Owning stream of the record.
    pub fn stream(&self) -> &StreamId {
        match self {
            WalRecord::Frame { stream, .. } | WalRecord::End { stream, .. } => stream,
        }
    }
}

/// `None` class encodes as 0, otherwise `index + 1`.
fn decode_class(b: u8) -> Option<Option<EventClass>> {
    if b == 0 {
        return Some(None);
    }
    EventClass::ALL.get(b as usize - 1).map(|&c| Some(c))
}

/// One shard's append side of the log.
#[derive(Debug)]
pub struct ShardWal {
    dir: PathBuf,
    segment_bytes: u64,
    next_lsn: u64,
    writer: BufWriter<File>,
    active_path: PathBuf,
    active_first_lsn: u64,
    active_bytes: u64,
    /// Other segment files on disk, by first LSN (sorted ascending).
    finished: Vec<(u64, PathBuf)>,
    since_checkpoint: u64,
    records_appended: u64,
    bytes_appended: u64,
    scratch: Vec<u8>,
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("seg-{first_lsn:020}.wal"))
}

fn checkpoint_path(dir: &Path, last_lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{last_lsn:020}.ckpt"))
}

/// Lists `(numeric id, path)` of files matching `<prefix><020 digits><suffix>`,
/// sorted ascending by id.
fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(id) = rest.strip_suffix(suffix) else {
            continue;
        };
        if let Ok(id) = id.parse::<u64>() {
            out.push((id, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

fn open_segment(dir: &Path, first_lsn: u64) -> io::Result<(PathBuf, BufWriter<File>)> {
    let path = segment_path(dir, first_lsn);
    let mut writer = BufWriter::new(File::create(&path)?);
    writer.write_all(&SEGMENT_MAGIC)?;
    writer.write_all(&[WAL_VERSION])?;
    writer.write_all(&first_lsn.to_le_bytes())?;
    Ok((path, writer))
}

/// Truncates a segment starting at `first_lsn` at the boundary of the
/// first record with `lsn >= next_lsn` (or at the first damaged record),
/// so nothing at or past the recovered horizon can ever replay.
fn truncate_past(path: &Path, first_lsn: u64, next_lsn: u64) -> io::Result<()> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    if reader.read_exact(&mut header).is_err() {
        return Ok(()); // shorter than its header: nothing intact to cut
    }
    let mut lsn = first_lsn;
    let mut keep = SEGMENT_HEADER_LEN as u64;
    let mut scratch = Vec::new();
    while lsn < next_lsn {
        match read_wal_record(&mut reader, &mut scratch) {
            RecordRead::Record => {
                keep += 8 + scratch.len() as u64;
                lsn += 1;
            }
            RecordRead::End | RecordRead::Torn => break,
        }
    }
    if fs::metadata(path)?.len() > keep {
        fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(keep)?;
    }
    Ok(())
}

impl ShardWal {
    /// Opens the log for appending, starting at `next_lsn` (one past the
    /// last recovered record). Segment files at or beyond `next_lsn` are
    /// unreachable remnants of a torn tail and are deleted; older ones
    /// stay until a checkpoint covers them.
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the directory or the first segment.
    pub fn open(dir: &Path, segment_bytes: u64, next_lsn: u64) -> io::Result<ShardWal> {
        fs::create_dir_all(dir)?;
        let mut finished = Vec::new();
        for (first_lsn, path) in list_numbered(dir, "seg-", ".wal")? {
            if first_lsn >= next_lsn {
                fs::remove_file(&path)?;
            } else {
                finished.push((first_lsn, path));
            }
        }
        // The newest kept segment may still carry records at or past the
        // horizon (recovery stopped short inside it); cut them off so
        // they can never replay alongside their re-logged successors.
        if let Some((first_lsn, path)) = finished.last() {
            truncate_past(path, *first_lsn, next_lsn)?;
        }
        let (active_path, writer) = open_segment(dir, next_lsn)?;
        Ok(ShardWal {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(SEGMENT_HEADER_LEN as u64 + 1),
            next_lsn,
            writer,
            active_path,
            active_first_lsn: next_lsn,
            active_bytes: SEGMENT_HEADER_LEN as u64,
            finished,
            since_checkpoint: 0,
            records_appended: 0,
            bytes_appended: 0,
            scratch: Vec::new(),
        })
    }

    /// Appends one record, returning its LSN. Buffered — not readable
    /// back (nor crash-durable) until [`flush`](Self::flush).
    ///
    /// # Errors
    ///
    /// Filesystem write failures.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        self.scratch.clear();
        rec.encode(&mut self.scratch);
        self.commit_scratch()
    }

    /// Appends a `Frame` record from borrowed parts.
    ///
    /// # Errors
    ///
    /// Filesystem write failures.
    pub(crate) fn append_frame(
        &mut self,
        stream: &StreamId,
        class: Option<EventClass>,
        seq: u64,
        payload: &[u8],
    ) -> io::Result<u64> {
        self.scratch.clear();
        encode_frame_record(stream, class, seq, payload, &mut self.scratch);
        self.commit_scratch()
    }

    /// Appends an `End` record from borrowed parts.
    ///
    /// # Errors
    ///
    /// Filesystem write failures.
    pub(crate) fn append_end(&mut self, stream: &StreamId, seq: u64) -> io::Result<u64> {
        self.scratch.clear();
        encode_end_record(stream, seq, &mut self.scratch);
        self.commit_scratch()
    }

    fn commit_scratch(&mut self) -> io::Result<u64> {
        write_frame(&mut self.writer, &self.scratch)?;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let framed = 8 + self.scratch.len() as u64;
        self.active_bytes += framed;
        self.since_checkpoint += framed;
        self.records_appended += 1;
        self.bytes_appended += framed;
        if self.active_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(lsn)
    }

    /// Flushes buffered appends to the OS. After this returns, every
    /// appended record survives process death.
    ///
    /// # Errors
    ///
    /// Filesystem write failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        let (path, writer) = open_segment(&self.dir, self.next_lsn)?;
        let old = std::mem::replace(&mut self.active_path, path);
        self.finished.push((self.active_first_lsn, old));
        self.active_first_lsn = self.next_lsn;
        self.active_bytes = SEGMENT_HEADER_LEN as u64;
        self.writer = writer;
        Ok(())
    }

    /// LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Whether enough bytes accumulated since the last checkpoint to
    /// warrant another (per [`WalConfig::checkpoint_bytes`]).
    pub fn checkpoint_due(&self, checkpoint_bytes: u64) -> bool {
        self.since_checkpoint >= checkpoint_bytes
    }

    /// Lifetime records appended by this writer.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Lifetime framed bytes appended by this writer.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Records that a checkpoint covering everything up to `last_lsn`
    /// landed: prunes every segment fully covered by it (a drain-time
    /// checkpoint covers all of them, leaving an empty log).
    ///
    /// # Errors
    ///
    /// Filesystem failures deleting or re-creating segments.
    pub fn note_checkpoint(&mut self, last_lsn: u64) -> io::Result<()> {
        self.flush()?;
        self.since_checkpoint = 0;
        // A finished segment's range ends where its successor begins.
        let mut bounds: Vec<u64> = self.finished.iter().map(|&(first, _)| first).collect();
        bounds.push(self.active_first_lsn);
        let keep: Vec<(u64, PathBuf)> = std::mem::take(&mut self.finished)
            .into_iter()
            .enumerate()
            .filter_map(|(i, (first, path))| {
                // Covered iff every lsn in [first, bounds[i+1]) is ≤ last_lsn.
                if bounds[i + 1] <= last_lsn + 1 {
                    let _ = fs::remove_file(&path);
                    None
                } else {
                    Some((first, path))
                }
            })
            .collect();
        self.finished = keep;
        // The active segment is covered when its last record is: swap in
        // a fresh one so the old bytes never replay.
        if self.next_lsn <= last_lsn + 1 && self.next_lsn > self.active_first_lsn {
            let (path, writer) = open_segment(&self.dir, self.next_lsn)?;
            let old = std::mem::replace(&mut self.active_path, path);
            self.writer = writer;
            self.active_first_lsn = self.next_lsn;
            self.active_bytes = SEGMENT_HEADER_LEN as u64;
            fs::remove_file(old)?;
        }
        Ok(())
    }
}

/// Resume/dedupe state of one stream, as checkpointed.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCkpt {
    /// Stream identity.
    pub id: StreamId,
    /// Event class its samples fold under.
    pub class: Option<EventClass>,
    /// Highest committed frame sequence number (the dedupe watermark).
    pub last_seq: u64,
    /// Records reported by the last completed upload's `DONE`.
    pub done_records: u64,
    /// Bytes reported by the last completed upload's `DONE`.
    pub done_bytes: u64,
    /// Sample extractor's previous stamp, if mid-trace.
    pub prev_stamp: Option<u64>,
    /// Mid-trace decoder state, if an upload is in flight.
    pub decoder: Option<DecoderState>,
}

impl StreamCkpt {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        out.push(self.class.map_or(0, |c| c.index() as u8 + 1));
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.extend_from_slice(&self.done_records.to_le_bytes());
        out.extend_from_slice(&self.done_bytes.to_le_bytes());
        match self.prev_stamp {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        match &self.decoder {
            None => out.push(0),
            Some(d) => {
                out.push(1);
                encode_decoder(d, out);
            }
        }
    }

    fn decode(buf: &[u8], at: &mut usize) -> Option<StreamCkpt> {
        let id = StreamId::decode(buf, at)?;
        let class = decode_class(get_u8(buf, at)?)?;
        let last_seq = get_u64(buf, at)?;
        let done_records = get_u64(buf, at)?;
        let done_bytes = get_u64(buf, at)?;
        let prev_stamp = match get_u8(buf, at)? {
            0 => None,
            1 => Some(get_u64(buf, at)?),
            _ => return None,
        };
        let decoder = match get_u8(buf, at)? {
            0 => None,
            1 => Some(decode_decoder(buf, at)?),
            _ => return None,
        };
        Some(StreamCkpt {
            id,
            class,
            last_seq,
            done_records,
            done_bytes,
            prev_stamp,
            decoder,
        })
    }
}

fn encode_decoder(d: &DecoderState, out: &mut Vec<u8>) {
    match &d.meta {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            let img = m.to_bytes();
            out.extend_from_slice(&(img.len() as u32).to_le_bytes());
            out.extend_from_slice(&img);
        }
    }
    out.extend_from_slice(&(d.carry.len() as u32).to_le_bytes());
    out.extend_from_slice(&d.carry);
    out.extend_from_slice(&d.bytes_fed.to_le_bytes());
    out.extend_from_slice(&d.prev_at.to_le_bytes());
    out.push(d.any_read as u8);
    out.extend_from_slice(&d.records_decoded.to_le_bytes());
    out.extend_from_slice(&d.chunks_decoded.to_le_bytes());
    out.push(d.scalar as u8);
}

fn decode_decoder(buf: &[u8], at: &mut usize) -> Option<DecoderState> {
    let meta = match get_u8(buf, at)? {
        0 => None,
        1 => {
            let len = get_u32(buf, at)? as usize;
            let img = get_bytes(buf, at, len)?;
            let (meta, used) = TraceMeta::from_bytes(img).ok()?;
            if used != img.len() {
                return None;
            }
            Some(meta)
        }
        _ => return None,
    };
    let carry_len = get_u32(buf, at)? as usize;
    let carry = get_bytes(buf, at, carry_len)?.to_vec();
    let bytes_fed = get_u64(buf, at)?;
    let prev_at = get_u64(buf, at)?;
    let any_read = get_u8(buf, at)? != 0;
    let records_decoded = get_u64(buf, at)?;
    let chunks_decoded = get_u64(buf, at)?;
    let scalar = get_u8(buf, at)? != 0;
    Some(DecoderState {
        meta,
        carry,
        bytes_fed,
        prev_at,
        any_read,
        records_decoded,
        chunks_decoded,
        scalar,
    })
}

/// One shard's epoch snapshot: everything needed to resume folding
/// after the records it covers.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Highest LSN whose effects the snapshot includes; replay starts
    /// right after it.
    pub last_lsn: u64,
    /// Scenario sketches, by name.
    pub sketches: Vec<(String, LatencySketch)>,
    /// Live stream resume states.
    pub streams: Vec<StreamCkpt>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(WAL_VERSION);
        out.extend_from_slice(&self.last_lsn.to_le_bytes());
        out.extend_from_slice(&(self.sketches.len() as u32).to_le_bytes());
        for (scenario, sketch) in &self.sketches {
            put_str(&mut out, scenario);
            sketch.encode(&mut out);
        }
        out.extend_from_slice(&(self.streams.len() as u32).to_le_bytes());
        for stream in &self.streams {
            stream.encode(&mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<Checkpoint> {
        if buf.len() < 4 + 1 + 8 + 4 + 4 + 4 {
            return None;
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut at = 0usize;
        if get_bytes(body, &mut at, 4)? != CHECKPOINT_MAGIC {
            return None;
        }
        if get_u8(body, &mut at)? != WAL_VERSION {
            return None;
        }
        let last_lsn = get_u64(body, &mut at)?;
        let n_sketches = get_u32(body, &mut at)?;
        let mut sketches = Vec::with_capacity(n_sketches as usize);
        for _ in 0..n_sketches {
            let scenario = get_str(body, &mut at)?;
            let (sketch, used) = LatencySketch::decode(&body[at..])?;
            at += used;
            sketches.push((scenario, sketch));
        }
        let n_streams = get_u32(body, &mut at)?;
        let mut streams = Vec::with_capacity(n_streams as usize);
        for _ in 0..n_streams {
            streams.push(StreamCkpt::decode(body, &mut at)?);
        }
        if at != body.len() {
            return None;
        }
        Some(Checkpoint {
            last_lsn,
            sketches,
            streams,
        })
    }
}

/// Writes a checkpoint atomically (temp file + rename) and prunes all
/// but the newest [`CHECKPOINTS_KEPT`] checkpoint files.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_checkpoint(dir: &Path, ckpt: &Checkpoint) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let bytes = ckpt.encode();
    let tmp = dir.join(format!("ckpt-{:020}.tmp", ckpt.last_lsn));
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, checkpoint_path(dir, ckpt.last_lsn))?;
    let all = list_numbered(dir, "ckpt-", ".ckpt")?;
    if all.len() > CHECKPOINTS_KEPT {
        for (_, path) in &all[..all.len() - CHECKPOINTS_KEPT] {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

/// Loads the newest checkpoint that passes CRC and structural
/// validation, falling back to older ones; `None` if none is usable.
///
/// # Errors
///
/// Filesystem failures listing the directory (an unreadable or corrupt
/// individual file is a fallback, not an error).
pub fn load_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    for (_, path) in list_numbered(dir, "ckpt-", ".ckpt")?.into_iter().rev() {
        if let Ok(bytes) = fs::read(&path) {
            if let Some(ckpt) = Checkpoint::decode(&bytes) {
                return Ok(Some(ckpt));
            }
        }
    }
    Ok(None)
}

/// What [`replay`] walked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Segment files visited.
    pub segments: u64,
    /// Records delivered to the callback (LSN past the checkpoint).
    pub replayed: u64,
    /// Records skipped because the checkpoint already covered them.
    pub skipped: u64,
    /// Whether replay stopped at a torn record (crash tail).
    pub torn: bool,
}

/// Replays every intact record with `lsn > after_lsn`, in LSN order,
/// stopping cleanly at the first torn record or LSN discontinuity.
/// Returns the stats and the next LSN to log at.
///
/// # Errors
///
/// Filesystem failures opening or reading segment files (torn/corrupt
/// *content* is a clean stop, not an error).
pub fn replay(
    dir: &Path,
    after_lsn: u64,
    mut apply: impl FnMut(u64, WalRecord),
) -> io::Result<(ReplayStats, u64)> {
    let mut stats = ReplayStats::default();
    let mut next_lsn = after_lsn + 1;
    let mut scratch = Vec::new();
    for (named_first, path) in list_numbered(dir, "seg-", ".wal")? {
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = [0u8; SEGMENT_HEADER_LEN];
        if reader.read_exact(&mut header).is_err()
            || header[..4] != SEGMENT_MAGIC
            || header[4] != WAL_VERSION
        {
            stats.torn = true;
            break;
        }
        let first_lsn = u64::from_le_bytes(header[5..].try_into().unwrap());
        if first_lsn != named_first {
            stats.torn = true;
            break;
        }
        if first_lsn > next_lsn {
            // A gap means the segment carrying next_lsn was lost; records
            // past the gap must not fold without their predecessors.
            stats.torn = true;
            break;
        }
        stats.segments += 1;
        let mut lsn = first_lsn;
        loop {
            match read_wal_record(&mut reader, &mut scratch) {
                RecordRead::Record => {
                    let Some(rec) = WalRecord::decode(&scratch) else {
                        stats.torn = true;
                        return Ok((stats, next_lsn));
                    };
                    if lsn > after_lsn {
                        apply(lsn, rec);
                        stats.replayed += 1;
                    } else {
                        stats.skipped += 1;
                    }
                    lsn += 1;
                    next_lsn = next_lsn.max(lsn);
                }
                RecordRead::End => break,
                RecordRead::Torn => {
                    stats.torn = true;
                    return Ok((stats, next_lsn));
                }
            }
        }
    }
    Ok((stats, next_lsn))
}

enum RecordRead {
    Record,
    End,
    Torn,
}

/// Reads one WAL record frame. Like [`crate::protocol::read_frame`] but
/// with the WAL's larger payload cap, and classifying a clean EOF at a
/// record boundary (`End`) apart from everything else (`Torn`).
fn read_wal_record(r: &mut impl Read, buf: &mut Vec<u8>) -> RecordRead {
    // Filled byte-by-byte so EOF at offset zero (a record boundary) is
    // told apart from EOF mid-header (a torn tail) — `read_exact` alone
    // reports both as `UnexpectedEof`.
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return RecordRead::End,
            Ok(0) => return RecordRead::Torn,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return RecordRead::Torn,
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 || len > MAX_WAL_RECORD {
        return RecordRead::Torn;
    }
    buf.clear();
    buf.resize(len, 0);
    if r.read_exact(buf).is_err() {
        return RecordRead::Torn;
    }
    if crc32(buf) != stored_crc {
        return RecordRead::Torn;
    }
    RecordRead::Record
}

/// What recovery did for one shard (or, summed, for the whole server).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Checkpoints loaded (one per shard that had a valid one).
    pub checkpoints: u64,
    /// Segment files replayed.
    pub segments: u64,
    /// WAL records replayed past checkpoints.
    pub frames: u64,
    /// Trace records decoded during replay.
    pub records: u64,
    /// Latency samples re-folded during replay.
    pub samples: u64,
    /// Shards whose log ended in a torn record (salvaged cleanly).
    pub torn_tails: u64,
    /// Wall-clock recovery time, milliseconds.
    pub millis: u64,
}

impl RecoveryStats {
    /// Accumulates another shard's stats into a server-level total.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.checkpoints += other.checkpoints;
        self.segments += other.segments;
        self.frames += other.frames;
        self.records += other.records;
        self.samples += other.samples;
        self.torn_tails += other.torn_tails;
        self.millis = self.millis.max(other.millis);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

fn get_u8(buf: &[u8], at: &mut usize) -> Option<u8> {
    let b = *buf.get(*at)?;
    *at += 1;
    Some(b)
}

fn get_u16(buf: &[u8], at: &mut usize) -> Option<u16> {
    let bytes = get_bytes(buf, at, 2)?;
    Some(u16::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = get_bytes(buf, at, 4)?;
    Some(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let bytes = get_bytes(buf, at, 8)?;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_bytes<'b>(buf: &'b [u8], at: &mut usize, len: usize) -> Option<&'b [u8]> {
    let end = at.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let slice = &buf[*at..end];
    *at = end;
    Some(slice)
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = get_u16(buf, at)? as usize;
    let bytes = get_bytes(buf, at, len)?;
    String::from_utf8(bytes.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "latlab-wal-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn keyed(client: &str) -> StreamId {
        StreamId::Keyed {
            client: client.to_owned(),
            scenario: "fig5".to_owned(),
        }
    }

    fn frame_rec(client: &str, seq: u64, len: usize) -> WalRecord {
        WalRecord::Frame {
            stream: keyed(client),
            class: Some(EventClass::Keystroke),
            seq,
            bytes: (0..len).map(|i| (i as u8).wrapping_mul(31)).collect(),
        }
    }

    #[test]
    fn record_codec_round_trips() {
        let records = [
            frame_rec("host-1", 7, 100),
            WalRecord::Frame {
                stream: StreamId::Conn {
                    conn: 42,
                    scenario: "s".to_owned(),
                },
                class: None,
                seq: 1,
                bytes: Vec::new(),
            },
            WalRecord::End {
                stream: keyed("host-1"),
                seq: 8,
            },
        ];
        for rec in &records {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(WalRecord::decode(&buf).as_ref(), Some(rec));
        }
        assert_eq!(WalRecord::decode(&[]), None);
        assert_eq!(WalRecord::decode(&[9]), None);
    }

    #[test]
    fn append_flush_replay_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let mut wal = ShardWal::open(&tmp.0, 1 << 20, 1).unwrap();
        let recs: Vec<WalRecord> = (1..=20).map(|i| frame_rec("c", i, 64)).collect();
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(wal.append(rec).unwrap(), i as u64 + 1);
        }
        wal.flush().unwrap();
        let mut seen = Vec::new();
        let (stats, next) = replay(&tmp.0, 0, |lsn, rec| seen.push((lsn, rec))).unwrap();
        assert_eq!(next, 21);
        assert_eq!(stats.replayed, 20);
        assert!(!stats.torn);
        for (i, (lsn, rec)) in seen.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(rec, &recs[i]);
        }
        // A checkpoint-style replay skips the covered prefix.
        let (stats, next) = replay(&tmp.0, 15, |lsn, _| assert!(lsn > 15)).unwrap();
        assert_eq!(next, 21);
        assert_eq!(stats.replayed, 5);
        assert_eq!(stats.skipped, 15);
    }

    #[test]
    fn rotation_spans_segments_and_replay_crosses_them() {
        let tmp = TempDir::new("rotate");
        // Tiny segments force many rotations.
        let mut wal = ShardWal::open(&tmp.0, 256, 1).unwrap();
        for i in 1..=50 {
            wal.append(&frame_rec("c", i, 80)).unwrap();
        }
        wal.flush().unwrap();
        let segs = list_numbered(&tmp.0, "seg-", ".wal").unwrap();
        assert!(
            segs.len() > 2,
            "expected rotation, got {} segments",
            segs.len()
        );
        let mut lsns = Vec::new();
        let (stats, next) = replay(&tmp.0, 0, |lsn, _| lsns.push(lsn)).unwrap();
        assert_eq!(next, 51);
        assert!(!stats.torn);
        assert_eq!(lsns, (1..=50).collect::<Vec<u64>>());
        assert_eq!(stats.segments, segs.len() as u64);
    }

    #[test]
    fn torn_tail_is_salvaged_at_every_cut() {
        let tmp = TempDir::new("torn");
        let mut wal = ShardWal::open(&tmp.0, 1 << 20, 1).unwrap();
        for i in 1..=5 {
            wal.append(&frame_rec("c", i, 40)).unwrap();
        }
        wal.flush().unwrap();
        let path = segment_path(&tmp.0, 1);
        let full = fs::read(&path).unwrap();
        drop(wal);
        // Record boundaries: header, then each framed record.
        let rec_len = {
            let mut buf = Vec::new();
            frame_rec("c", 1, 40).encode(&mut buf);
            8 + buf.len()
        };
        for cut in SEGMENT_HEADER_LEN..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut lsns = Vec::new();
            let (stats, next) = replay(&tmp.0, 0, |lsn, _| lsns.push(lsn)).unwrap();
            let intact = (cut - SEGMENT_HEADER_LEN) / rec_len;
            assert_eq!(lsns.len(), intact, "cut at {cut}");
            assert_eq!(next, intact as u64 + 1, "cut at {cut}");
            // A cut exactly on a record boundary is indistinguishable
            // from a clean shutdown; every other cut must read as torn.
            let at_boundary = (cut - SEGMENT_HEADER_LEN).is_multiple_of(rec_len);
            assert_eq!(stats.torn, !at_boundary, "cut at {cut}");
        }
        // A flipped bit mid-record stops replay at the damage.
        let mut flipped = full.clone();
        let mid = SEGMENT_HEADER_LEN + rec_len * 2 + rec_len / 2;
        flipped[mid] ^= 0x10;
        fs::write(&path, &flipped).unwrap();
        let (stats, next) = replay(&tmp.0, 0, |_, _| {}).unwrap();
        assert!(stats.torn);
        assert_eq!(next, 3);
    }

    #[test]
    fn open_discards_segments_past_the_recovered_horizon() {
        let tmp = TempDir::new("horizon");
        let mut wal = ShardWal::open(&tmp.0, 128, 1).unwrap();
        for i in 1..=20 {
            wal.append(&frame_rec("c", i, 80)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Pretend recovery only reached lsn 3: later segments are remnants.
        let wal = ShardWal::open(&tmp.0, 128, 4).unwrap();
        assert_eq!(wal.next_lsn(), 4);
        drop(wal);
        let (stats, next) = replay(&tmp.0, 0, |_, _| {}).unwrap();
        // Only records 1..=3 can be intact; segment 4's file was replaced
        // by the fresh empty active segment.
        assert!(next <= 4, "next {next}");
        assert!(!stats.torn || stats.replayed <= 3);
    }

    #[test]
    fn checkpoint_round_trips_and_falls_back_past_corruption() {
        let tmp = TempDir::new("ckpt");
        let mut sketch = LatencySketch::new();
        for i in 0..1000 {
            sketch.push(EventClass::Keystroke, (i % 97) as f64 * 0.5);
        }
        let ckpt = Checkpoint {
            last_lsn: 41,
            sketches: vec![("fig5".to_owned(), sketch.clone())],
            streams: vec![StreamCkpt {
                id: keyed("host-1"),
                class: Some(EventClass::Keystroke),
                last_seq: 9,
                done_records: 100,
                done_bytes: 2048,
                prev_stamp: Some(123_456),
                decoder: None,
            }],
        };
        write_checkpoint(&tmp.0, &ckpt).unwrap();
        let back = load_checkpoint(&tmp.0).unwrap().unwrap();
        assert_eq!(back.last_lsn, 41);
        assert_eq!(back.sketches.len(), 1);
        assert_eq!(back.sketches[0].0, "fig5");
        assert_eq!(back.sketches[0].1.total(), sketch.total());
        assert_eq!(back.streams, ckpt.streams);

        // A newer but corrupt checkpoint is skipped in favor of this one.
        let newer = checkpoint_path(&tmp.0, 99);
        let mut bytes = fs::read(checkpoint_path(&tmp.0, 41)).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0xff;
        fs::write(&newer, &bytes).unwrap();
        let back = load_checkpoint(&tmp.0).unwrap().unwrap();
        assert_eq!(back.last_lsn, 41);
    }

    #[test]
    fn checkpoint_retention_keeps_the_newest_two() {
        let tmp = TempDir::new("retain");
        for lsn in [10, 20, 30, 40] {
            write_checkpoint(
                &tmp.0,
                &Checkpoint {
                    last_lsn: lsn,
                    sketches: Vec::new(),
                    streams: Vec::new(),
                },
            )
            .unwrap();
        }
        let kept = list_numbered(&tmp.0, "ckpt-", ".ckpt").unwrap();
        assert_eq!(
            kept.iter().map(|&(lsn, _)| lsn).collect::<Vec<_>>(),
            vec![30, 40]
        );
    }

    #[test]
    fn note_checkpoint_prunes_covered_segments() {
        let tmp = TempDir::new("prune");
        let mut wal = ShardWal::open(&tmp.0, 256, 1).unwrap();
        for i in 1..=30 {
            wal.append(&frame_rec("c", i, 80)).unwrap();
        }
        wal.flush().unwrap();
        assert!(list_numbered(&tmp.0, "seg-", ".wal").unwrap().len() > 2);
        // Mid-log checkpoint: only fully covered segments go.
        wal.note_checkpoint(10).unwrap();
        let (stats, next) = replay(&tmp.0, 10, |lsn, _| assert!(lsn > 10)).unwrap();
        assert_eq!(next, 31);
        assert_eq!(stats.replayed, 20);
        // Drain-style checkpoint at the head: everything goes; a fresh
        // restart replays nothing.
        wal.note_checkpoint(wal.next_lsn() - 1).unwrap();
        let (stats, next) = replay(&tmp.0, 30, |_, _| panic!("nothing to replay")).unwrap();
        assert_eq!(next, 31);
        assert_eq!(stats.replayed, 0);
        assert!(!stats.torn);
        // More appends after the prune keep working.
        wal.append(&frame_rec("c", 31, 16)).unwrap();
        wal.flush().unwrap();
        let (stats, _) = replay(&tmp.0, 30, |lsn, _| assert_eq!(lsn, 31)).unwrap();
        assert_eq!(stats.replayed, 1);
    }

    #[test]
    fn decoder_state_round_trips_through_checkpoint() {
        use latlab_trace::StreamDecoder;
        // Feed half a real trace, export, checkpoint, reload, restore.
        let corpus = crate::slam::idle_corpus(5_000, 0x77, 64);
        let mut dec = StreamDecoder::new();
        dec.feed(&corpus[..corpus.len() / 2]).unwrap();
        let mut col = Vec::new();
        while dec.poll_batch(&mut col) > 0 {
            col.clear();
        }
        let state = dec.export_state().unwrap();
        let tmp = TempDir::new("decoder");
        let ckpt = Checkpoint {
            last_lsn: 1,
            sketches: Vec::new(),
            streams: vec![StreamCkpt {
                id: keyed("c"),
                class: None,
                last_seq: 1,
                done_records: 0,
                done_bytes: 0,
                prev_stamp: Some(999),
                decoder: Some(state.clone()),
            }],
        };
        write_checkpoint(&tmp.0, &ckpt).unwrap();
        let back = load_checkpoint(&tmp.0).unwrap().unwrap();
        assert_eq!(back.streams[0].decoder.as_ref(), Some(&state));
        // The restored decoder finishes the trace.
        let mut dec = StreamDecoder::restore(back.streams[0].decoder.clone().unwrap());
        dec.feed(&corpus[corpus.len() / 2..]).unwrap();
        while dec.poll_batch(&mut col) > 0 {
            col.clear();
        }
        assert!(dec.is_clean_boundary());
        assert_eq!(dec.records_decoded(), 5_000);
    }
}
