//! `latlab-netfault` — seeded chaos proxy for `latlab-serve`.

use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use latlab_core::cli;
use latlab_serve::{FaultConfig, FaultProxy};

const BIN: &str = "latlab-netfault";

const USAGE: &str = "\
usage: latlab-netfault TARGET [options]
  TARGET                upstream latlab-serve address, e.g. 127.0.0.1:4117
  --bind ADDR           proxy listen address (default 127.0.0.1:0)
  --seed N              fault-stream seed (default 0xfa175eed)
  --reset-one-in N      per-frame odds of an injected connection reset,
                        half of them tearing the frame first (default 40;
                        0 disables)
  --duplicate-one-in N  per-frame odds of duplicating a resumable frame
                        (default 16; 0 disables)
  --delay-one-in N      per-frame odds of a stall (default 8; 0 disables)
  --delay-ms N          stall length (default 2)
  --port-file PATH      write the proxy's bound address to PATH
  --version             print version and exit
  --help                print this help
Proxies every connection to TARGET, injecting deterministic, seeded
faults frame-by-frame; prints injection counters on SIGINT/SIGTERM.";

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let mut target_arg: Option<String> = None;
    let mut bind = "127.0.0.1:0".to_owned();
    let mut port_file: Option<String> = None;
    let mut config = FaultConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, ExitCode> {
            args.next()
                .ok_or_else(|| cli::usage_error(BIN, &format!("{what} requires a value"), USAGE))
        };
        macro_rules! parse_or_usage {
            ($what:expr, $ty:ty) => {
                match take($what) {
                    Ok(v) => match v.parse::<$ty>() {
                        Ok(v) => v,
                        Err(_) => {
                            return cli::usage_error(
                                BIN,
                                &format!("invalid value for {}: {v:?}", $what),
                                USAGE,
                            )
                        }
                    },
                    Err(code) => return code,
                }
            };
        }
        match arg.as_str() {
            "--version" => return cli::print_version(BIN),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--bind" => match take("--bind") {
                Ok(v) => bind = v,
                Err(code) => return code,
            },
            "--port-file" => match take("--port-file") {
                Ok(v) => port_file = Some(v),
                Err(code) => return code,
            },
            "--seed" => config.seed = parse_or_usage!("--seed", u64),
            "--reset-one-in" => config.reset_one_in = parse_or_usage!("--reset-one-in", u64),
            "--duplicate-one-in" => {
                config.duplicate_one_in = parse_or_usage!("--duplicate-one-in", u64)
            }
            "--delay-one-in" => config.delay_one_in = parse_or_usage!("--delay-one-in", u64),
            "--delay-ms" => {
                config.delay = Duration::from_millis(parse_or_usage!("--delay-ms", u64))
            }
            flag if flag.starts_with("--") => {
                return cli::usage_error(BIN, &format!("unknown argument {flag:?}"), USAGE)
            }
            positional if target_arg.is_none() => target_arg = Some(positional.to_owned()),
            positional => {
                return cli::usage_error(BIN, &format!("unexpected argument {positional:?}"), USAGE)
            }
        }
    }
    let Some(target_arg) = target_arg else {
        return cli::usage_error(BIN, "missing TARGET address", USAGE);
    };
    let target = match target_arg.to_socket_addrs().map(|mut it| it.next()) {
        Ok(Some(a)) => a,
        _ => return cli::usage_error(BIN, &format!("unresolvable address {target_arg:?}"), USAGE),
    };

    install_signal_handlers();
    let proxy = match FaultProxy::start(&bind, target, config) {
        Ok(p) => p,
        Err(e) => return cli::runtime_error(BIN, &format!("failed to start: {e}")),
    };
    println!("proxying {} -> {}", proxy.local_addr(), target);
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, proxy.local_addr().to_string()) {
            return cli::runtime_error(BIN, &format!("cannot write port file {path}: {e}"));
        }
    }

    while !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let s = proxy.stats();
    eprintln!(
        "{BIN}: connections={} frames={} resets={} torn_frames={} duplicated={} delayed={}",
        s.connections.load(Ordering::Relaxed),
        s.frames.load(Ordering::Relaxed),
        s.resets.load(Ordering::Relaxed),
        s.torn_frames.load(Ordering::Relaxed),
        s.duplicated.load(Ordering::Relaxed),
        s.delayed.load(Ordering::Relaxed),
    );
    proxy.stop();
    ExitCode::SUCCESS
}
