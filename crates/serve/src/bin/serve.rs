//! `latlab-serve` — the ingest/query service binary.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use latlab_core::cli;
use latlab_serve::{ServeConfig, Server, ShardConfig, WalConfig};

const BIN: &str = "latlab-serve";

const USAGE: &str = "\
usage: latlab-serve [options]
  --bind ADDR          listen address (default 127.0.0.1:4117; port 0 = ephemeral)
  --shards N           ingest worker threads (default: half the cores, min 2)
  --queue-depth N      bounded frames per shard queue (default 128)
  --publish-every N    samples folded between snapshot publishes (default 65536)
  --read-timeout-ms N  per-connection read timeout (default 30000)
  --busy-retry-ms N    full-queue retry window before BUSY (default 100)
  --scalar-ingest      use the per-record decode path instead of the
                       columnar batch path (reference/debug)
  --wal DIR            write-ahead log directory: log accepted frames
                       before acking, checkpoint sketches, and recover
                       (replay the tail) on restart before listening
  --wal-segment-mb N   rotate log segments at N MiB (default 4)
  --wal-checkpoint-mb N  checkpoint after N MiB appended (default 32)
  --port-file PATH     write the bound address to PATH once listening
  --version            print version and exit
  --help               print this help";

/// Set by the SIGTERM/SIGINT handler; polled by the main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    // SIGINT = 2, SIGTERM = 15. Raw libc-less registration keeps the
    // workspace dependency-free; the handler only flips an atomic.
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let mut config = ServeConfig {
        bind: "127.0.0.1:4117".to_owned(),
        shard: ShardConfig::default(),
        ..ServeConfig::default()
    };
    let mut port_file: Option<String> = None;
    let mut wal_dir: Option<String> = None;
    let mut wal_segment_mb = 4u64;
    let mut wal_checkpoint_mb = 32u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, ExitCode> {
            args.next()
                .ok_or_else(|| cli::usage_error(BIN, &format!("{what} requires a value"), USAGE))
        };
        macro_rules! parse_or_usage {
            ($what:expr, $ty:ty) => {
                match take($what) {
                    Ok(v) => match v.parse::<$ty>() {
                        Ok(v) => v,
                        Err(_) => {
                            return cli::usage_error(
                                BIN,
                                &format!("invalid value for {}: {v:?}", $what),
                                USAGE,
                            )
                        }
                    },
                    Err(code) => return code,
                }
            };
        }
        match arg.as_str() {
            "--version" => return cli::print_version(BIN),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--bind" => match take("--bind") {
                Ok(v) => config.bind = v,
                Err(code) => return code,
            },
            "--port-file" => match take("--port-file") {
                Ok(v) => port_file = Some(v),
                Err(code) => return code,
            },
            "--shards" => config.shard.shards = parse_or_usage!("--shards", usize),
            "--queue-depth" => config.shard.queue_depth = parse_or_usage!("--queue-depth", usize),
            "--publish-every" => {
                config.shard.publish_every = parse_or_usage!("--publish-every", u64)
            }
            "--read-timeout-ms" => {
                config.read_timeout =
                    Duration::from_millis(parse_or_usage!("--read-timeout-ms", u64))
            }
            "--busy-retry-ms" => {
                config.busy_retry = Duration::from_millis(parse_or_usage!("--busy-retry-ms", u64))
            }
            "--scalar-ingest" => config.scalar_ingest = true,
            "--wal" => match take("--wal") {
                Ok(v) => wal_dir = Some(v),
                Err(code) => return code,
            },
            "--wal-segment-mb" => wal_segment_mb = parse_or_usage!("--wal-segment-mb", u64),
            "--wal-checkpoint-mb" => {
                wal_checkpoint_mb = parse_or_usage!("--wal-checkpoint-mb", u64)
            }
            other => return cli::usage_error(BIN, &format!("unknown argument {other:?}"), USAGE),
        }
    }
    if config.shard.shards == 0 {
        return cli::usage_error(BIN, "--shards must be at least 1", USAGE);
    }
    if let Some(dir) = wal_dir {
        let mut wal = WalConfig::new(dir);
        wal.segment_bytes = wal_segment_mb.max(1) << 20;
        wal.checkpoint_bytes = wal_checkpoint_mb.max(1) << 20;
        config.wal = Some(wal);
    }

    install_signal_handlers();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => return cli::runtime_error(BIN, &format!("failed to start: {e}")),
    };
    let rec = server.recovery();
    if rec.checkpoints > 0 || rec.frames > 0 || rec.torn_tails > 0 {
        eprintln!(
            "{BIN}: recovered checkpoints={} segments={} frames={} records={} \
             samples={} torn_tails={} in {}ms",
            rec.checkpoints,
            rec.segments,
            rec.frames,
            rec.records,
            rec.samples,
            rec.torn_tails,
            rec.millis,
        );
    }
    println!("listening on {}", server.local_addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, server.local_addr().to_string()) {
            return cli::runtime_error(BIN, &format!("cannot write port file {path}: {e}"));
        }
    }

    while !server.shutdown_requested() && !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("{BIN}: draining");
    let stats_line = {
        let s = server.stats();
        format!(
            "connections={} ingested_records={} ingested_bytes={} busy_rejections={} queries={}",
            s.connections.load(Ordering::Relaxed),
            s.ingested_records.load(Ordering::Relaxed),
            s.ingested_bytes.load(Ordering::Relaxed),
            s.busy_rejections.load(Ordering::Relaxed),
            s.queries.load(Ordering::Relaxed),
        )
    };
    let (epoch, merged) = server.join();
    eprintln!(
        "{BIN}: drained epoch={epoch} scenarios={} {stats_line}",
        merged.len()
    );
    ExitCode::SUCCESS
}
