//! `latlab-slam` — load generator for `latlab-serve`.

use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

use latlab_analysis::EventClass;
use latlab_core::cli;
use latlab_serve::{slam, SlamConfig};

const BIN: &str = "latlab-slam";

const USAGE: &str = "\
usage: latlab-slam ADDR [options] [CORPUS.ltrc ...]
  ADDR                  server address, e.g. 127.0.0.1:4117
  --connections N       concurrent uploaders (default 4)
  --duration-s N        run length in seconds (default 5)
  --scenario NAME       scenario uploads land under (default slam)
  --scenarios N         spread uploads over N scenario names NAME-0 …
                        NAME-{N-1} to stress query-plane cardinality
                        (default 1: the bare NAME)
  --class NAME          event class for samples (default keystroke)
  --frame-kb N          wire frame payload size in KB (default 64)
  --synthetic-records N corpus if no files given (default 200000 records)
  --seed N              seed for BUSY retry-backoff jitter
  --resume              upload on the resumable path: survive resets and
                        read timeouts by reconnecting and resuming from
                        the server's committed watermark
  --max-reconnects N    reconnects per blob before it counts as an
                        error (default 8; resumable path only)
  --version             print version and exit
  --help                print this help
Replays the corpus traces from all connections until the duration
elapses, probing query latency throughout; prints key=value results.";

fn main() -> ExitCode {
    let mut addr_arg: Option<String> = None;
    let mut corpus_paths: Vec<String> = Vec::new();
    let mut config = SlamConfig::default();
    let mut synthetic_records = 200_000u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, ExitCode> {
            args.next()
                .ok_or_else(|| cli::usage_error(BIN, &format!("{what} requires a value"), USAGE))
        };
        macro_rules! parse_or_usage {
            ($what:expr, $ty:ty) => {
                match take($what) {
                    Ok(v) => match v.parse::<$ty>() {
                        Ok(v) => v,
                        Err(_) => {
                            return cli::usage_error(
                                BIN,
                                &format!("invalid value for {}: {v:?}", $what),
                                USAGE,
                            )
                        }
                    },
                    Err(code) => return code,
                }
            };
        }
        match arg.as_str() {
            "--version" => return cli::print_version(BIN),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--connections" => config.connections = parse_or_usage!("--connections", usize),
            "--duration-s" => {
                config.duration = Duration::from_secs(parse_or_usage!("--duration-s", u64))
            }
            "--scenario" => match take("--scenario") {
                Ok(v) => config.scenario = v,
                Err(code) => return code,
            },
            "--scenarios" => config.scenarios = parse_or_usage!("--scenarios", usize),
            "--class" => match take("--class") {
                Ok(v) => match EventClass::parse(&v) {
                    Some(c) => config.class = Some(c),
                    None => {
                        return cli::usage_error(BIN, &format!("unknown event class {v:?}"), USAGE)
                    }
                },
                Err(code) => return code,
            },
            "--frame-kb" => config.frame_len = parse_or_usage!("--frame-kb", usize) * 1024,
            "--synthetic-records" => {
                synthetic_records = parse_or_usage!("--synthetic-records", u64)
            }
            "--seed" => config.seed = parse_or_usage!("--seed", u64),
            "--resume" => config.resume = true,
            "--max-reconnects" => config.max_reconnects = parse_or_usage!("--max-reconnects", u32),
            flag if flag.starts_with("--") => {
                return cli::usage_error(BIN, &format!("unknown argument {flag:?}"), USAGE)
            }
            positional if addr_arg.is_none() => addr_arg = Some(positional.to_owned()),
            positional => corpus_paths.push(positional.to_owned()),
        }
    }
    let Some(addr_arg) = addr_arg else {
        return cli::usage_error(BIN, "missing server ADDR", USAGE);
    };
    if config.connections == 0 {
        return cli::usage_error(BIN, "--connections must be at least 1", USAGE);
    }
    let addr = match addr_arg.to_socket_addrs().map(|mut it| it.next()) {
        Ok(Some(a)) => a,
        _ => return cli::usage_error(BIN, &format!("unresolvable address {addr_arg:?}"), USAGE),
    };
    config.addr = addr;

    let mut corpus: Vec<Vec<u8>> = Vec::new();
    for path in &corpus_paths {
        match std::fs::read(path) {
            Ok(bytes) => corpus.push(bytes),
            Err(e) => return cli::runtime_error(BIN, &format!("cannot read {path}: {e}")),
        }
    }
    if corpus.is_empty() {
        // Spikes every 64 stamps keep the sketches non-trivial.
        corpus.push(slam::synthetic_corpus(synthetic_records, 0x5eed, 64));
    }

    let report = match slam::run(&config, &corpus) {
        Ok(r) => r,
        Err(e) => return cli::runtime_error(BIN, &format!("slam failed: {e}")),
    };
    println!("uploads_done={}", report.uploads_done);
    println!("uploads_busy={}", report.uploads_busy);
    println!("upload_retries={}", report.upload_retries);
    println!("upload_errors={}", report.upload_errors);
    println!("records_acked={}", report.records_acked);
    println!("bytes_acked={}", report.bytes_acked);
    println!("reconnects={}", report.reconnects);
    println!("frames_resumed={}", report.frames_resumed);
    println!("elapsed_s={:.3}", report.elapsed.as_secs_f64());
    println!("ingest_mb_per_sec={:.2}", report.mb_per_sec());
    println!("queries={}", report.queries);
    println!("query_p50_ms={:.4}", report.query_p50_ms);
    println!("query_p99_ms={:.4}", report.query_p99_ms);
    println!("query_max_ms={:.4}", report.query_max_ms);
    for v in &report.verbs {
        let verb = v.verb.to_lowercase();
        println!("queries_{verb}={}", v.queries);
        println!("{verb}_p50_ms={:.4}", v.p50_ms);
        println!("{verb}_p99_ms={:.4}", v.p99_ms);
        println!("{verb}_max_ms={:.4}", v.max_ms);
    }
    if report.uploads_done == 0 {
        return cli::runtime_error(BIN, "no upload completed");
    }
    ExitCode::SUCCESS
}
