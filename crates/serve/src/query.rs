//! The incremental query plane: cached merged views over shard
//! snapshots.
//!
//! Every query used to re-merge every shard's full snapshot from
//! scratch — O(shards × scenarios × histogram buckets) per request,
//! paid even when nothing had changed since the last query. This module
//! splits the read plane from the write plane: a [`QueryPlane`] keeps
//! the last merged view and, on each refresh, compares the per-shard
//! snapshot `Arc`s against the ones it merged last time.
//!
//! **Dirty detection contract.** The shard workers publish
//! copy-on-write: a publish clones only the map of per-scenario
//! `Arc<LatencySketch>` pointers, and a scenario's sketch body is
//! replaced (detached via `Arc::make_mut`) only on its first fold after
//! a publish. Therefore `Arc::ptr_eq` on a scenario's sketch across two
//! snapshots of the same shard is a *complete* dirty test: pointer
//! equality implies the bodies are the same object (clean), pointer
//! inequality means the scenario folded new samples (dirty). A refresh
//! re-merges **only the dirty scenarios** — O(dirty) sketch merges per
//! publish instead of O(scenarios) per query — and reuses the cached
//! [`ScenarioEntry`] (with its memoized quantiles) for every clean one.
//!
//! **Coherence invariant.** At every epoch the cached view is
//! bit-identical to a fresh full merge ([`merge_full`]) of the same
//! snapshot vector: same scenarios, same counts, same histogram
//! buckets, and bit-identical moment accumulators. The invariant holds
//! because a dirty scenario is re-merged across shards in shard-index
//! order — the exact fold order [`merge_full`] uses — and a clean
//! scenario's cached sketch *is* (or is value-equal to) the merge of
//! sketch bodies that have not changed. `ShardSet::merged_full` is kept
//! as the reference implementation; the equivalence proptest in this
//! module drives real shards through folds, publishes, drains, and WAL
//! recovery and compares the two after arbitrary interleavings.
//!
//! **Cold rebuild.** The first refresh (startup, including post-crash
//! recovery, where every scenario is new) merges the whole snapshot
//! vector, partitioned across threads — recovery of a large corpus
//! becomes queryable at full speed without a warm cache.
//!
//! **Derived-result memoization.** Each [`ScenarioEntry`] precomputes
//! its sample and miss totals (what `HEALTH` and `STATS` need) and
//! memoizes quantile lookups (what `PCTL` and `SNAPSHOT` need) keyed by
//! the requested fraction. Because a clean scenario keeps its entry
//! across refreshes, the memo is effectively keyed by
//! `(scenario, last-dirty-epoch)` — it invalidates exactly when the
//! underlying sketch changes, by construction.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use latlab_analysis::LatencySketch;

use crate::shard::{ShardSet, ShardSnapshot};

/// The reference merge: fold every snapshot's scenarios into fresh
/// sketches, first contributor cloned, later ones merged in shard-index
/// order. This is the per-query full merge the query plane replaces —
/// kept as the ground truth its cached view must stay bit-identical to.
pub fn merge_full(snaps: &[Arc<ShardSnapshot>]) -> (u64, HashMap<String, LatencySketch>) {
    let mut epoch = 0u64;
    let mut merged: HashMap<String, LatencySketch> = HashMap::new();
    for snap in snaps {
        epoch += snap.epoch;
        for (scenario, sketch) in &snap.sketches {
            merged
                .entry(scenario.clone())
                .and_modify(|m| m.merge(sketch))
                .or_insert_with(|| (**sketch).clone());
        }
    }
    (epoch, merged)
}

/// Memoized quantiles beyond this many distinct fractions per entry are
/// answered uncached. Real probers ask for a handful of fixed
/// percentiles; the cap only bounds a hostile client cycling fractions.
const QUANTILE_MEMO_CAP: usize = 32;

/// Below this many scenarios a cold rebuild stays on the calling thread
/// — spawning costs more than the merge.
const COLD_PARALLEL_MIN: usize = 32;

/// One scenario's merged state inside a [`MergedView`]: the
/// cross-shard merged sketch plus the derived results queries actually
/// ask for. Entries are shared (`Arc`) between successive views as long
/// as the scenario stays clean, so the memo warms once per dirty epoch,
/// not once per query.
pub struct ScenarioEntry {
    sketch: Arc<LatencySketch>,
    total: u64,
    misses: u64,
    /// `(fraction bits, quantile ms)` pairs, append-only up to the cap.
    quantiles: Mutex<Vec<(u64, f64)>>,
}

impl ScenarioEntry {
    fn new(sketch: Arc<LatencySketch>) -> ScenarioEntry {
        ScenarioEntry {
            total: sketch.total(),
            misses: sketch.total_misses(),
            sketch,
            quantiles: Mutex::new(Vec::new()),
        }
    }

    /// The merged sketch (shared with the publishing shard when only
    /// one shard contributes to this scenario).
    pub fn sketch(&self) -> &LatencySketch {
        &self.sketch
    }

    /// Samples across all classes (precomputed — `HEALTH`/`STATS` never
    /// touch the histogram for this).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Deadline misses across all classes (precomputed).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The `p`-quantile over all classes (ms), memoized per fraction:
    /// the first lookup pays the union-histogram pass, repeats are a
    /// table hit until the entry is invalidated by a dirty re-merge.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let key = p.to_bits();
        {
            let memo = self.quantiles.lock().expect("quantile memo poisoned");
            if let Some(&(_, ms)) = memo.iter().find(|&&(k, _)| k == key) {
                return Some(ms);
            }
        }
        let ms = self.sketch.quantile(p)?;
        let mut memo = self.quantiles.lock().expect("quantile memo poisoned");
        if memo.len() < QUANTILE_MEMO_CAP && !memo.iter().any(|&(k, _)| k == key) {
            memo.push((key, ms));
        }
        Some(ms)
    }

    /// Answers several quantiles at once. Fully-memoized requests are
    /// table hits; otherwise all fractions are computed in **one**
    /// union-histogram pass ([`LatencySketch::quantiles_into`]) and
    /// memoized. `out` is cleared and gets one value per fraction (0.0
    /// when the entry is empty, matching the snapshot view's encoding).
    pub fn quantiles(&self, ps: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if self.total == 0 {
            out.resize(ps.len(), 0.0);
            return;
        }
        let mut memo = self.quantiles.lock().expect("quantile memo poisoned");
        let lookup = |memo: &Vec<(u64, f64)>, p: f64| {
            let key = p.to_bits();
            memo.iter().find(|&&(k, _)| k == key).map(|&(_, ms)| ms)
        };
        if let Some(hit) = ps
            .iter()
            .map(|&p| lookup(&memo, p))
            .collect::<Option<Vec<f64>>>()
        {
            out.extend(hit);
            return;
        }
        let mut fresh = Vec::with_capacity(ps.len());
        self.sketch.quantiles_into(ps, &mut fresh);
        for (&p, v) in ps.iter().zip(&fresh) {
            let ms = v.unwrap_or(0.0);
            if memo.len() < QUANTILE_MEMO_CAP && lookup(&memo, p).is_none() {
                memo.push((p.to_bits(), ms));
            }
            out.push(ms);
        }
    }
}

/// An immutable merged view of one snapshot vector. Cheap to clone
/// (`Arc`), safe to read from any thread, and shares every clean
/// scenario's entry with its predecessor view.
pub struct MergedView {
    epoch: u64,
    entries: HashMap<Arc<str>, Arc<ScenarioEntry>>,
    total: u64,
    total_misses: u64,
}

impl MergedView {
    fn empty() -> MergedView {
        MergedView {
            epoch: 0,
            entries: HashMap::new(),
            total: 0,
            total_misses: 0,
        }
    }

    /// Sum of shard epochs this view merged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of scenarios with data.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no scenario has folded any samples yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Samples across every scenario (precomputed at refresh — the
    /// `HEALTH` total without any merge).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Deadline misses across every scenario (precomputed at refresh).
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// One scenario's entry. Returns the `Arc` so callers (and the
    /// sharing unit test) can observe entry identity across views.
    pub fn get(&self, scenario: &str) -> Option<&Arc<ScenarioEntry>> {
        self.entries.get(scenario)
    }

    /// Iterates `(scenario, entry)` in map order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ScenarioEntry)> {
        self.entries.iter().map(|(k, v)| (&**k, &**v))
    }

    /// Clones the view out into the owned `(epoch, sketches)` shape the
    /// reference [`merge_full`] returns — the drain-time final report,
    /// paid once at shutdown instead of once per query.
    pub fn to_sketches(&self) -> (u64, HashMap<String, LatencySketch>) {
        let sketches = self
            .entries
            .iter()
            .map(|(name, entry)| (name.to_string(), (*entry.sketch).clone()))
            .collect();
        (self.epoch, sketches)
    }
}

/// Observability counters a [`QueryPlane`] maintains (surfaced by
/// `HEALTH`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Refresh calls (≈ queries served through the plane).
    pub refreshes: u64,
    /// Refreshes answered entirely from cache — every shard snapshot
    /// `Arc` was unchanged.
    pub hits: u64,
    /// Scenarios re-merged across all incremental refreshes.
    pub remerged: u64,
    /// Full parallel rebuilds (first touch / recovery).
    pub cold_rebuilds: u64,
}

struct PlaneState {
    /// The snapshot vector the current view was merged from.
    last: Vec<Arc<ShardSnapshot>>,
    view: Arc<MergedView>,
    /// Reused buffer for [`QueryPlane::refresh_from`], so the steady-
    /// state query path allocates nothing.
    scratch: Vec<Arc<ShardSnapshot>>,
}

/// The cached merged view plus the machinery to keep it coherent. One
/// plane serves every query connection; refreshes serialize on an
/// internal mutex (the unchanged-snapshot fast path holds it only for a
/// pointer walk), readers then work off the returned `Arc<MergedView>`
/// without any lock.
pub struct QueryPlane {
    state: Mutex<PlaneState>,
    refreshes: AtomicU64,
    hits: AtomicU64,
    remerged: AtomicU64,
    cold_rebuilds: AtomicU64,
}

impl Default for QueryPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryPlane {
    /// An empty plane; the first refresh cold-rebuilds.
    pub fn new() -> QueryPlane {
        QueryPlane {
            state: Mutex::new(PlaneState {
                last: Vec::new(),
                view: Arc::new(MergedView::empty()),
                scratch: Vec::new(),
            }),
            refreshes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            remerged: AtomicU64::new(0),
            cold_rebuilds: AtomicU64::new(0),
        }
    }

    /// The current cached view without refreshing (may lag the shards).
    pub fn view(&self) -> Arc<MergedView> {
        self.state
            .lock()
            .expect("query plane poisoned")
            .view
            .clone()
    }

    /// The observability counters.
    pub fn stats(&self) -> PlaneStats {
        PlaneStats {
            refreshes: self.refreshes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            remerged: self.remerged.load(Ordering::Relaxed),
            cold_rebuilds: self.cold_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Refreshes against the shard set's current snapshots, reusing an
    /// internal snapshot buffer — the steady-state (all-clean) path
    /// performs no allocation at all.
    pub fn refresh_from(&self, shards: &ShardSet) -> Arc<MergedView> {
        let mut st = self.state.lock().expect("query plane poisoned");
        let mut snaps = std::mem::take(&mut st.scratch);
        shards.snapshots_into(&mut snaps);
        let view = self.refresh_locked(&mut st, &snaps);
        st.scratch = snaps;
        view
    }

    /// Refreshes against an explicit snapshot vector (what the perf
    /// harness and benches drive with synthetic snapshots).
    pub fn refresh(&self, snaps: &[Arc<ShardSnapshot>]) -> Arc<MergedView> {
        let mut st = self.state.lock().expect("query plane poisoned");
        self.refresh_locked(&mut st, snaps)
    }

    fn refresh_locked(&self, st: &mut PlaneState, snaps: &[Arc<ShardSnapshot>]) -> Arc<MergedView> {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        if st.last.len() == snaps.len() && st.last.iter().zip(snaps).all(|(a, b)| Arc::ptr_eq(a, b))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return st.view.clone();
        }
        let epoch = snaps.iter().map(|s| s.epoch).sum();
        let entries = if st.last.is_empty() {
            self.cold_rebuilds.fetch_add(1, Ordering::Relaxed);
            cold_rebuild(snaps)
        } else {
            self.incremental(&st.last, &st.view, snaps)
        };
        let view = Arc::new(MergedView {
            epoch,
            total: entries.values().map(|e| e.total).sum(),
            total_misses: entries.values().map(|e| e.misses).sum(),
            entries,
        });
        st.last.clear();
        st.last.extend(snaps.iter().cloned());
        st.view = view.clone();
        view
    }

    /// Re-merges only the scenarios whose sketch `Arc` changed in some
    /// shard; every other entry is carried over by pointer, memo and
    /// all.
    fn incremental(
        &self,
        last: &[Arc<ShardSnapshot>],
        old: &MergedView,
        snaps: &[Arc<ShardSnapshot>],
    ) -> HashMap<Arc<str>, Arc<ScenarioEntry>> {
        let empty = HashMap::new();
        let mut dirty: HashSet<&str> = HashSet::new();
        for (i, cur) in snaps.iter().enumerate() {
            let prev = last.get(i);
            if prev.is_some_and(|p| Arc::ptr_eq(p, cur)) {
                continue;
            }
            let prev_sketches = prev.map_or(&empty, |p| &p.sketches);
            for (name, sketch) in &cur.sketches {
                if !prev_sketches
                    .get(name)
                    .is_some_and(|p| Arc::ptr_eq(p, sketch))
                {
                    dirty.insert(name.as_str());
                }
            }
            for name in prev_sketches.keys() {
                if !cur.sketches.contains_key(name) {
                    dirty.insert(name.as_str());
                }
            }
        }
        // A shrinking shard set never happens live, but stay coherent:
        // scenarios only present in trailing removed shards are dirty.
        for gone in last.iter().skip(snaps.len()) {
            for name in gone.sketches.keys() {
                dirty.insert(name.as_str());
            }
        }
        self.remerged
            .fetch_add(dirty.len() as u64, Ordering::Relaxed);
        let mut entries = old.entries.clone();
        for name in dirty {
            match merge_scenario(name, snaps) {
                Some(entry) => {
                    // Reuse the interned key so a long-lived scenario
                    // allocates its name exactly once.
                    let key = old
                        .entries
                        .get_key_value(name)
                        .map_or_else(|| Arc::from(name), |(k, _)| k.clone());
                    entries.insert(key, Arc::new(entry));
                }
                None => {
                    entries.remove(name);
                }
            }
        }
        entries
    }
}

/// Merges one scenario across the snapshot vector, in shard-index order
/// (the [`merge_full`] fold order — first contributor cloned, the rest
/// merged — so moments stay bit-identical to the reference). A single
/// contributor shares its published `Arc` outright: no copy, and
/// value-equal to the clone the reference makes.
fn merge_scenario(name: &str, snaps: &[Arc<ShardSnapshot>]) -> Option<ScenarioEntry> {
    let contributors: Vec<&Arc<LatencySketch>> =
        snaps.iter().filter_map(|s| s.sketches.get(name)).collect();
    let sketch = match contributors.as_slice() {
        [] => return None,
        [one] => Arc::clone(one),
        many => Arc::new(
            LatencySketch::merge_of(many.iter().map(|a| a.as_ref())).expect("non-empty merge"),
        ),
    };
    Some(ScenarioEntry::new(sketch))
}

/// First-touch rebuild: merge every scenario, partitioned across
/// threads. Used at startup and after recovery, where the whole corpus
/// is new and an incremental diff would degenerate to this anyway —
/// done in parallel, the recovered state is queryable at full speed
/// immediately.
fn cold_rebuild(snaps: &[Arc<ShardSnapshot>]) -> HashMap<Arc<str>, Arc<ScenarioEntry>> {
    let mut seen = HashSet::new();
    let mut names: Vec<&str> = Vec::new();
    for snap in snaps {
        for name in snap.sketches.keys() {
            if seen.insert(name.as_str()) {
                names.push(name.as_str());
            }
        }
    }
    let build =
        |name: &str| merge_scenario(name, snaps).map(|e| (Arc::<str>::from(name), Arc::new(e)));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(names.len() / COLD_PARALLEL_MIN);
    if threads <= 1 {
        return names.iter().filter_map(|n| build(n)).collect();
    }
    let chunk = names.len().div_ceil(threads);
    let mut entries = HashMap::with_capacity(names.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = names
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || part.iter().filter_map(|n| build(n)).collect::<Vec<_>>())
            })
            .collect();
        for w in workers {
            entries.extend(w.join().expect("cold rebuild worker panicked"));
        }
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::testkit::*;
    use crate::shard::{BeginMode, Reply, ShardConfig};
    use crate::slam::idle_corpus;
    use latlab_analysis::EventClass;
    use proptest::prelude::*;

    /// Builds a synthetic snapshot: `epoch` plus `(name, seed)` sketches
    /// of a few dozen deterministic samples each.
    fn snap(epoch: u64, scenarios: &[(&str, u64)]) -> Arc<ShardSnapshot> {
        let sketches = scenarios
            .iter()
            .map(|&(name, seed)| {
                let mut s = LatencySketch::new();
                for i in 0..48u64 {
                    let class = EventClass::ALL[((i + seed) % 6) as usize];
                    s.push(class, 0.3 + ((i * 17 + seed * 131) % 389) as f64 * 3.7);
                }
                (name.to_owned(), Arc::new(s))
            })
            .collect();
        Arc::new(ShardSnapshot { epoch, sketches })
    }

    /// Asserts the cached view is bit-identical to the [`merge_full`]
    /// reference over the same snapshot vector.
    fn assert_view_matches_full(view: &MergedView, snaps: &[Arc<ShardSnapshot>]) {
        let (epoch, full) = merge_full(snaps);
        assert_eq!(view.epoch(), epoch);
        assert_eq!(view.len(), full.len(), "scenario sets differ");
        assert_eq!(view.total(), full.values().map(LatencySketch::total).sum());
        assert_eq!(
            view.total_misses(),
            full.values().map(LatencySketch::total_misses).sum()
        );
        for (name, reference) in &full {
            let entry = view.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(entry.total(), reference.total(), "{name} total");
            assert_eq!(entry.misses(), reference.total_misses(), "{name} misses");
            let got = entry.sketch();
            for class in EventClass::ALL {
                let (a, b) = (got.class(class), reference.class(class));
                assert_eq!(a.count(), b.count(), "{name} {class:?} count");
                assert_eq!(a.misses(), b.misses(), "{name} {class:?} misses");
                assert_eq!(a.saturated(), b.saturated(), "{name} {class:?} saturated");
                assert_eq!(
                    a.stats().mean().to_bits(),
                    b.stats().mean().to_bits(),
                    "{name} {class:?} mean"
                );
                assert_eq!(
                    a.stats().sample_variance().to_bits(),
                    b.stats().sample_variance().to_bits(),
                    "{name} {class:?} variance"
                );
                assert_eq!(a.stats().min().to_bits(), b.stats().min().to_bits());
                assert_eq!(a.stats().max().to_bits(), b.stats().max().to_bits());
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(entry.quantile(q), reference.quantile(q), "{name} q{q}");
            }
        }
    }

    #[test]
    fn refresh_matches_full_merge_on_synthetic_snapshots() {
        let plane = QueryPlane::new();
        let snaps = vec![
            snap(3, &[("a", 1), ("b", 2), ("shared", 3)]),
            snap(5, &[("c", 4), ("shared", 5)]),
            snap(1, &[]),
        ];
        let view = plane.refresh(&snaps);
        assert_view_matches_full(&view, &snaps);
        assert_eq!(plane.stats().cold_rebuilds, 1);
        // Unchanged snapshots: pure cache hit, same view object.
        let again = plane.refresh(&snaps);
        assert!(Arc::ptr_eq(&view, &again));
        assert_eq!(plane.stats().hits, 1);
    }

    #[test]
    fn clean_scenarios_share_their_entry_across_refreshes() {
        let plane = QueryPlane::new();
        let mut snaps = vec![
            snap(1, &[("clean", 7), ("dirty", 8)]),
            snap(1, &[("clean", 9)]),
        ];
        let before = plane.refresh(&snaps);
        // Warm the memo on the clean entry, then dirty the other
        // scenario in shard 0 (new sketch Arc, same clean Arc).
        let warm = before.get("clean").unwrap().quantile(0.99);
        let mut sketches = snaps[0].sketches.clone();
        let mut grown = (**sketches.get("dirty").unwrap()).clone();
        grown.push(EventClass::Keystroke, 12.5);
        sketches.insert("dirty".to_owned(), Arc::new(grown));
        snaps[0] = Arc::new(ShardSnapshot { epoch: 2, sketches });
        let after = plane.refresh(&snaps);
        assert_view_matches_full(&after, &snaps);
        // The clean scenario's cached entry is the same object — memo
        // included — while the dirty one was rebuilt.
        assert!(
            Arc::ptr_eq(before.get("clean").unwrap(), after.get("clean").unwrap()),
            "clean entry must be shared by pointer across refreshes"
        );
        assert!(!Arc::ptr_eq(
            before.get("dirty").unwrap(),
            after.get("dirty").unwrap()
        ));
        assert_eq!(after.get("clean").unwrap().quantile(0.99), warm);
        assert_eq!(plane.stats().remerged, 1, "exactly one scenario re-merged");
    }

    #[test]
    fn scenario_disappearance_is_coherent() {
        let plane = QueryPlane::new();
        let mut snaps = vec![snap(1, &[("keep", 1), ("gone", 2)])];
        plane.refresh(&snaps);
        // The scenario vanishes from the next publish (never happens
        // live, but the plane must not serve a stale entry).
        let mut sketches = snaps[0].sketches.clone();
        sketches.remove("gone");
        snaps[0] = Arc::new(ShardSnapshot { epoch: 2, sketches });
        let view = plane.refresh(&snaps);
        assert_view_matches_full(&view, &snaps);
        assert!(view.get("gone").is_none());
    }

    #[test]
    fn cold_rebuild_parallelizes_and_matches_reference() {
        // Enough scenarios to cross COLD_PARALLEL_MIN per thread.
        let names: Vec<String> = (0..220).map(|i| format!("scen-{i}")).collect();
        let per_shard = |shard: u64| {
            let scenarios: Vec<(&str, u64)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), shard * 1000 + i as u64))
                .collect();
            snap(shard + 1, &scenarios)
        };
        let snaps: Vec<_> = (0..4).map(per_shard).collect();
        let plane = QueryPlane::new();
        let view = plane.refresh(&snaps);
        assert_view_matches_full(&view, &snaps);
        assert_eq!(plane.stats().cold_rebuilds, 1);
    }

    #[test]
    fn quantile_memo_matches_uncached_answers() {
        let snaps = vec![snap(1, &[("s", 3)]), snap(1, &[("s", 4)])];
        let plane = QueryPlane::new();
        let view = plane.refresh(&snaps);
        let entry = view.get("s").unwrap();
        let (_, full) = merge_full(&snaps);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let first = entry.quantile(q);
            let memoized = entry.quantile(q);
            assert_eq!(first, memoized);
            assert_eq!(first, full["s"].quantile(q), "q{q}");
        }
        // Batch path agrees with the scalar path and the reference.
        let ps = [0.5, 0.9, 0.99, 1.0];
        let mut out = Vec::new();
        entry.quantiles(&ps, &mut out);
        for (&p, &got) in ps.iter().zip(&out) {
            assert_eq!(Some(got), full["s"].quantile(p), "batch q{p}");
        }
    }

    /// One scripted operation of the equivalence proptest.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Upload a small corpus as (client, scenario) choice `n`.
        Upload(u8),
        /// Graceful drain, then restart from the WAL.
        DrainRestart,
        /// kill -9, then restart from the WAL (replays the log tail).
        CrashRestart,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest has no `prop_oneof`; weight by hand:
        // 0..6 uploads (n picks the client/scenario pair), then one
        // slot each for drain+restart and crash+restart.
        (0u8..8).prop_map(|n| match n {
            6 => Op::DrainRestart,
            7 => Op::CrashRestart,
            n => Op::Upload(n),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// The tentpole invariant: after arbitrary interleavings of
        /// folds, publishes (forced by a tiny publish_every), drains,
        /// and WAL recovery, one long-lived plane's cached view stays
        /// bit-identical to a fresh full merge of the same snapshots.
        #[test]
        fn cached_view_stays_bit_identical_to_full_merge(
            seed in 0u64..1 << 48,
            ops in proptest::collection::vec(op_strategy(), 1..10),
        ) {
            let tmp = TempDir::new("query-equiv");
            let config = ShardConfig {
                shards: 2,
                queue_depth: 64,
                publish_every: 64, // publish mid-upload, not just on idle
            };
            let corpus = idle_corpus(2_000, seed | 1, 16);
            let frames = frames_of(&corpus, 1024);
            let plane = QueryPlane::new();
            let mut set = ShardSet::start(&config, Some(&tmp.wal()), false).unwrap();
            for (step, op) in ops.iter().enumerate() {
                match *op {
                    Op::Upload(n) => {
                        let stream = keyed(&format!("c{}-{step}", n % 2), &format!("s{}", n % 3));
                        let shard = set.route(&format!("c{}-{step}", n % 2), &format!("s{}", n % 3));
                        let (rx, base) = begin(&set, shard, &stream, BeginMode::Fresh);
                        let done = upload_tail(&set, shard, &stream, &rx, &frames, base, 0);
                        prop_assert!(matches!(done, Reply::Done { .. }), "upload failed: {done:?}");
                    }
                    Op::DrainRestart => {
                        set.drain_and_join();
                        set = ShardSet::start(&config, Some(&tmp.wal()), false).unwrap();
                    }
                    Op::CrashRestart => {
                        set.crash_and_join();
                        set = ShardSet::start(&config, Some(&tmp.wal()), false).unwrap();
                    }
                }
                // Whatever the shards have published right now is a
                // valid vector; the view must match its full merge.
                let snaps = set.snapshots();
                let view = plane.refresh(&snaps);
                assert_view_matches_full(&view, &snaps);
            }
            set.drain_and_join();
            let snaps = set.snapshots();
            let view = plane.refresh(&snaps);
            assert_view_matches_full(&view, &snaps);
        }
    }
}
