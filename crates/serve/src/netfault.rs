//! Deterministic network-fault injection: a seeded in-process TCP proxy
//! that sits between a client (usually `latlab-slam`) and `latlab-serve`
//! and misbehaves on purpose.
//!
//! The proxy is **frame-aware**: it parses the `PUT` header line to
//! learn whether the upload is resumable, then forwards whole wire
//! frames, injecting faults at frame granularity —
//!
//! * **connection resets**, optionally tearing the in-flight frame with
//!   a partial write first (the server sees a truncated frame; with a
//!   WAL this is exactly the torn-tail shape recovery must salvage);
//! * **delays**, stalling a frame long enough to exercise timeout
//!   handling without desequencing anything;
//! * **duplicated frames** on resumable uploads, which the server's
//!   sequence-number dedupe must drop (never injected on legacy
//!   uploads, where a duplicate would corrupt the stream rather than
//!   test it).
//!
//! Every choice is drawn from a per-connection xorshift stream seeded
//! from `(seed, connection index)`: the same seed against the same
//! client behaviour injects the same faults, which is what lets the
//! chaos tests assert *exact* sketch equality after arbitrary abuse.
//! Query connections (any first line that isn't `PUT`) pass through
//! untouched.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{MAX_FRAME_PAYLOAD, MAX_LINE};

/// Fault rates and the seed that drives them. Each rate is a one-in-`N`
/// per-frame probability; `0` disables that fault.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the per-connection fault streams.
    pub seed: u64,
    /// One-in-`N` per-frame chance of killing the connection (both
    /// directions, abruptly).
    pub reset_one_in: u64,
    /// One-in-`N` per-frame chance of duplicating a complete payload
    /// frame (resumable uploads only).
    pub duplicate_one_in: u64,
    /// One-in-`N` per-frame chance of stalling before forwarding.
    pub delay_one_in: u64,
    /// The injected stall.
    pub delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xfa17_5eed,
            reset_one_in: 40,
            duplicate_one_in: 16,
            delay_one_in: 8,
            delay: Duration::from_millis(2),
        }
    }
}

/// What the proxy has injected so far.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Connections proxied.
    pub connections: AtomicU64,
    /// Connections killed by an injected reset.
    pub resets: AtomicU64,
    /// Resets that first tore the in-flight frame with a partial write.
    pub torn_frames: AtomicU64,
    /// Payload frames forwarded twice.
    pub duplicated: AtomicU64,
    /// Frames stalled by an injected delay.
    pub delayed: AtomicU64,
    /// Frames forwarded (faulted or not).
    pub frames: AtomicU64,
}

/// A running fault proxy.
pub struct FaultProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    stats: Arc<FaultStats>,
}

impl FaultProxy {
    /// Binds `listen` (use port 0 for ephemeral) and starts proxying
    /// every connection to `target` with `config`'s faults.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(listen: &str, target: SocketAddr, config: FaultConfig) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FaultStats::default());
        let accept = {
            let stop = stop.clone();
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("latlab-netfault".to_owned())
                .spawn(move || accept_loop(listener, target, config, stop, stats))?
        };
        Ok(FaultProxy {
            local_addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// The proxy's own bound address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Stops accepting and joins the proxy threads. In-flight
    /// connections are cut.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    config: FaultConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<FaultStats>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_index = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // Decorrelated per-connection stream: deterministic for a
                // given (seed, accept index).
                let rng = (config.seed ^ (conn_index + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
                conn_index += 1;
                let config = config.clone();
                let stats = stats.clone();
                let h = std::thread::Builder::new()
                    .name("latlab-netfault-conn".to_owned())
                    .spawn(move || {
                        let _ = proxy_connection(client, target, &config, rng, &stats);
                    });
                if let Ok(h) = h {
                    handlers.push(h);
                }
                if handlers.len() >= 256 {
                    handlers.retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Advances an xorshift64 stream and reports a one-in-`n` hit.
fn roll(rng: &mut u64, n: u64) -> bool {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    n > 0 && (*rng).is_multiple_of(n)
}

fn proxy_connection(
    client: TcpStream,
    target: SocketAddr,
    config: &FaultConfig,
    mut rng: u64,
    stats: &FaultStats,
) -> io::Result<()> {
    client.set_nodelay(true)?;
    client.set_read_timeout(Some(Duration::from_secs(60)))?;
    let server = TcpStream::connect(target)?;
    server.set_nodelay(true)?;
    server.set_read_timeout(Some(Duration::from_secs(60)))?;

    let mut from_client = BufReader::new(client.try_clone()?);
    let mut to_server = server.try_clone()?;

    // Server → client replies flow untouched on their own thread.
    let downstream = {
        let mut from_server = server.try_clone()?;
        let mut to_client = client.try_clone()?;
        std::thread::Builder::new()
            .name("latlab-netfault-down".to_owned())
            .spawn(move || {
                let mut buf = [0u8; 16 * 1024];
                loop {
                    match from_server.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if to_client.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
                let _ = to_client.shutdown(Shutdown::Write);
            })?
    };

    let result = proxy_upstream(&mut from_client, &mut to_server, config, &mut rng, stats);
    // Cut both sockets so the downstream pump unblocks whatever happened.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = downstream.join();
    result
}

/// Pumps the client → server direction with fault injection.
fn proxy_upstream(
    from_client: &mut impl BufRead,
    to_server: &mut TcpStream,
    config: &FaultConfig,
    rng: &mut u64,
    stats: &FaultStats,
) -> io::Result<()> {
    // First line decides the mode.
    let mut first = Vec::new();
    {
        let mut limited = from_client.take(MAX_LINE as u64 + 1);
        if limited.read_until(b'\n', &mut first)? == 0 {
            return Ok(());
        }
    }
    to_server.write_all(&first)?;
    let line = String::from_utf8_lossy(&first);
    if !line.starts_with("PUT ") {
        // Query connection: raw passthrough.
        let mut buf = [0u8; 16 * 1024];
        loop {
            match from_client.read(&mut buf) {
                Ok(0) | Err(_) => return Ok(()),
                Ok(n) => to_server.write_all(&buf[..n])?,
            }
        }
    }
    let resume = line.split_ascii_whitespace().any(|tok| tok == "RESUME");

    let mut frame: Vec<u8> = Vec::new();
    loop {
        // Reassemble one wire frame: [seq u64?][len u32][crc u32][payload].
        frame.clear();
        let header_len = if resume { 16 } else { 8 };
        frame.resize(header_len, 0);
        match read_exact_or_eof(from_client, &mut frame[..]) {
            Ok(false) => return Ok(()), // clean EOF between frames
            Ok(true) => {}
            Err(e) => return Err(e),
        }
        let len_at = header_len - 8;
        let len =
            u32::from_le_bytes(frame[len_at..len_at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            // Malformed by our reckoning: stop parsing, hand the bytes
            // through and let the server reject it.
            to_server.write_all(&frame)?;
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from_client.read(&mut buf) {
                    Ok(0) | Err(_) => return Ok(()),
                    Ok(n) => to_server.write_all(&buf[..n])?,
                }
            }
        }
        let payload_at = frame.len();
        frame.resize(payload_at + len, 0);
        if !read_exact_or_eof(from_client, &mut frame[payload_at..])? {
            return Ok(()); // client died mid-frame; nothing to salvage
        }
        stats.frames.fetch_add(1, Ordering::Relaxed);

        if roll(rng, config.delay_one_in) {
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(config.delay);
        }
        if roll(rng, config.reset_one_in) {
            stats.resets.fetch_add(1, Ordering::Relaxed);
            // Half the resets tear the frame first: the server is left
            // holding a truncated frame, the nastiest cut a real crash
            // leaves behind.
            if frame.len() > 1 && roll(rng, 2) {
                stats.torn_frames.fetch_add(1, Ordering::Relaxed);
                let cut = 1 + (*rng as usize) % (frame.len() - 1);
                let _ = to_server.write_all(&frame[..cut]);
            }
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset",
            ));
        }
        to_server.write_all(&frame)?;
        if resume && len > 0 && roll(rng, config.duplicate_one_in) {
            stats.duplicated.fetch_add(1, Ordering::Relaxed);
            to_server.write_all(&frame)?;
        }
    }
}

/// `read_exact`, except a clean EOF before the first byte returns
/// `Ok(false)` instead of an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_per_seed() {
        let mut a = 0x1234u64 | 1;
        let mut b = 0x1234u64 | 1;
        let hits_a: Vec<bool> = (0..256).map(|_| roll(&mut a, 8)).collect();
        let hits_b: Vec<bool> = (0..256).map(|_| roll(&mut b, 8)).collect();
        assert_eq!(hits_a, hits_b);
        assert!(hits_a.iter().any(|&h| h), "1-in-8 never hit in 256 draws");
        assert!(!hits_a.iter().all(|&h| h));
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = 0x5eedu64 | 1;
        assert!((0..1024).all(|_| !roll(&mut rng, 0)));
    }
}
