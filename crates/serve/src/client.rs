//! Client-side helpers for the serve protocol: uploading traces and
//! issuing queries over a plain `TcpStream`.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{write_end_frame, write_frame, PutHeader, BUSY_LINE, OK_LINE};

/// How an upload ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadOutcome {
    /// The server folded the whole trace: `(records, bytes)` as counted
    /// server-side.
    Done {
        /// Records the server decoded.
        records: u64,
        /// Bytes the server accepted.
        bytes: u64,
    },
    /// The server shed the upload: a shard queue stayed full.
    Busy,
    /// The server rejected the upload with a reason.
    Rejected(String),
}

/// An ingest connection mid-upload.
pub struct IngestClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl IngestClient {
    /// Connects, sends the `PUT` header, and waits for the `OK`.
    ///
    /// # Errors
    ///
    /// I/O failures; a non-`OK` greeting surfaces as
    /// [`io::ErrorKind::ConnectionRefused`] with the server's reason.
    pub fn connect(addr: impl ToSocketAddrs, header: &PutHeader) -> io::Result<IngestClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = IngestClient { reader, writer };
        writeln!(client.writer, "{}", header.render())?;
        client.writer.flush()?;
        let greeting = read_line(&mut client.reader)?;
        if greeting.as_deref() != Some(OK_LINE) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused PUT: {}", greeting.unwrap_or_default()),
            ));
        }
        Ok(client)
    }

    /// Sends one frame of trace bytes.
    ///
    /// # Errors
    ///
    /// Transport failures (including the server closing after `BUSY`).
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, bytes)
    }

    /// Ends the upload and reads the verdict.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn finish(mut self) -> io::Result<UploadOutcome> {
        write_end_frame(&mut self.writer)?;
        self.writer.flush()?;
        self.read_outcome()
    }

    /// Reads the server's verdict line. Also used after a send failure,
    /// where the verdict (`BUSY`/`ERR`) usually explains the hangup.
    pub fn read_outcome(&mut self) -> io::Result<UploadOutcome> {
        let Some(line) = read_line(&mut self.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before upload verdict",
            ));
        };
        if line == BUSY_LINE {
            return Ok(UploadOutcome::Busy);
        }
        if let Some(rest) = line.strip_prefix("DONE ") {
            let mut parts = rest.split_ascii_whitespace();
            let records = parts.next().and_then(|t| t.parse().ok());
            let bytes = parts.next().and_then(|t| t.parse().ok());
            if let (Some(records), Some(bytes)) = (records, bytes) {
                return Ok(UploadOutcome::Done { records, bytes });
            }
        }
        if let Some(reason) = line.strip_prefix("ERR ") {
            return Ok(UploadOutcome::Rejected(reason.to_owned()));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unparseable upload verdict {line:?}"),
        ))
    }
}

/// Uploads one in-memory trace in `frame_len`-byte frames.
///
/// A transport error mid-send is translated by reading the verdict the
/// server left behind (`BUSY` closes the socket server-side, which the
/// sender first notices as a failed write).
///
/// # Errors
///
/// Connection or protocol failures that carry no server verdict.
pub fn upload(
    addr: impl ToSocketAddrs,
    header: &PutHeader,
    trace: &[u8],
    frame_len: usize,
) -> io::Result<UploadOutcome> {
    let mut client = IngestClient::connect(addr, header)?;
    for piece in trace.chunks(frame_len.max(1)) {
        if client.send(piece).is_err() {
            return client.read_outcome();
        }
    }
    client.finish()
}

/// A query connection.
pub struct QueryClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl QueryClient {
    /// Connects (no greeting — the first command declares query mode).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<QueryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(QueryClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one command line and reads a single-line reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected EOF.
    pub fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-query")
        })
    }

    /// `PCTL` convenience: the quantile in ms, or the server's error.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side `ERR` comes back as `Ok(Err)`.
    pub fn pctl(&mut self, scenario: &str, p: f64) -> io::Result<Result<f64, String>> {
        let line = self.roundtrip(&format!("PCTL {scenario} {p}"))?;
        if let Some(reason) = line.strip_prefix("ERR ") {
            return Ok(Err(reason.to_owned()));
        }
        let ms = line
            .rsplit("ms=")
            .next()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad PCTL reply {line:?}"),
                )
            })?;
        Ok(Ok(ms))
    }

    /// `STATS` convenience: the full block, one line per element,
    /// without the terminating `.`.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side `ERR` comes back as `Ok(Err)`.
    pub fn stats(&mut self, scenario: &str) -> io::Result<Result<Vec<String>, String>> {
        let first = self.roundtrip(&format!("STATS {scenario}"))?;
        if let Some(reason) = first.strip_prefix("ERR ") {
            return Ok(Err(reason.to_owned()));
        }
        let mut lines = vec![first];
        loop {
            let Some(line) = read_line(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-STATS block",
                ));
            };
            if line == "." {
                return Ok(Ok(lines));
            }
            lines.push(line);
        }
    }
}

/// Reads one trimmed line; `None` on EOF.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}
