//! Client-side helpers for the serve protocol: uploading traces and
//! issuing queries over a plain `TcpStream`.
//!
//! Two upload shapes live here:
//!
//! * [`upload`] — the legacy one-shot path: unnumbered frames, one
//!   verdict, nothing survives the connection;
//! * [`upload_resumable`] — the durable path: the `PUT … RESUME`
//!   greeting carries the server's committed watermark, every frame is
//!   sequence-numbered, cumulative `OK <seq>` acks arrive as frames
//!   become durable, and a dropped connection is retried from the last
//!   acknowledged frame. Re-sent frames at or below the watermark are
//!   deduplicated server-side, so a trace lands in the sketch exactly
//!   once no matter how many times the transport fails mid-upload.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    write_end_frame, write_frame, write_seq_end_frame, write_seq_frame, PutHeader, BUSY_LINE,
    OK_LINE,
};

/// How an upload ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadOutcome {
    /// The server folded the whole trace: `(records, bytes)` as counted
    /// server-side.
    Done {
        /// Records the server decoded.
        records: u64,
        /// Bytes the server accepted.
        bytes: u64,
    },
    /// The server shed the upload: a shard queue stayed full.
    Busy,
    /// The server rejected the upload with a reason.
    Rejected(String),
}

/// An ingest connection mid-upload.
pub struct IngestClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Committed watermark from the greeting (0 on a fresh upload).
    watermark: u64,
    /// Highest `OK <seq>` ack seen since connecting.
    acked: u64,
}

/// What the server's greeting said, when it wasn't an `OK`.
enum Refusal {
    Busy,
    Rejected(String),
}

impl IngestClient {
    /// Connects, sends the `PUT` header, and waits for the `OK`
    /// greeting (`OK <seq>` for resumable uploads — see
    /// [`watermark`](Self::watermark)).
    ///
    /// # Errors
    ///
    /// I/O failures; a `BUSY` or `ERR` greeting surfaces as
    /// [`io::ErrorKind::ConnectionRefused`] with the server's reason.
    pub fn connect(addr: impl ToSocketAddrs, header: &PutHeader) -> io::Result<IngestClient> {
        match Self::try_connect(addr, header, Duration::from_secs(30))? {
            Ok(client) => Ok(client),
            Err(Refusal::Busy) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server refused PUT: BUSY",
            )),
            Err(Refusal::Rejected(reason)) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused PUT: {reason}"),
            )),
        }
    }

    /// Like [`connect`](Self::connect), but a refused upload comes back
    /// as a verdict instead of an error (the shapes [`upload`] needs).
    fn try_connect(
        addr: impl ToSocketAddrs,
        header: &PutHeader,
        read_timeout: Duration,
    ) -> io::Result<Result<IngestClient, Refusal>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = IngestClient {
            reader,
            writer,
            watermark: 0,
            acked: 0,
        };
        writeln!(client.writer, "{}", header.render())?;
        client.writer.flush()?;
        let Some(greeting) = read_line(&mut client.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before greeting",
            ));
        };
        if greeting == BUSY_LINE {
            return Ok(Err(Refusal::Busy));
        }
        if let Some(reason) = greeting.strip_prefix("ERR ") {
            return Ok(Err(Refusal::Rejected(reason.to_owned())));
        }
        if greeting == OK_LINE {
            return Ok(Ok(client));
        }
        if let Some(seq) = greeting.strip_prefix("OK ").and_then(|t| t.parse().ok()) {
            client.watermark = seq;
            client.acked = seq;
            return Ok(Ok(client));
        }
        Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("server refused PUT: {greeting}"),
        ))
    }

    /// The committed watermark the greeting reported: the server already
    /// holds every frame up to it, durably. Zero for fresh uploads and
    /// on the legacy path.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// The highest acknowledged frame seq seen so far (greeting
    /// watermark included). Everything at or below is durable
    /// server-side.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Sends one frame of trace bytes (legacy, unnumbered).
    ///
    /// # Errors
    ///
    /// Transport failures (including the server closing after `BUSY`).
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, bytes)
    }

    /// Sends one sequence-numbered frame (resumable uploads).
    ///
    /// # Errors
    ///
    /// Transport failures (including the server closing after `BUSY`).
    pub fn send_seq(&mut self, seq: u64, bytes: &[u8]) -> io::Result<()> {
        write_seq_frame(&mut self.writer, seq, bytes)
    }

    /// Ends a legacy upload and reads the verdict.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn finish(mut self) -> io::Result<UploadOutcome> {
        write_end_frame(&mut self.writer)?;
        self.writer.flush()?;
        self.read_outcome()
    }

    /// Ends a resumable upload (the end frame carries its own seq) and
    /// reads the verdict.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn finish_seq(mut self, seq: u64) -> io::Result<UploadOutcome> {
        write_seq_end_frame(&mut self.writer, seq)?;
        self.writer.flush()?;
        self.read_outcome()
    }

    /// Reads the server's verdict line, consuming (and recording) any
    /// `OK <seq>` ack lines that arrive ahead of it. Also used after a
    /// send failure, where the verdict (`BUSY`/`ERR`) usually explains
    /// the hangup.
    pub fn read_outcome(&mut self) -> io::Result<UploadOutcome> {
        loop {
            let Some(line) = read_line(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before upload verdict",
                ));
            };
            if let Some(seq) = line.strip_prefix("OK ").and_then(|t| t.parse().ok()) {
                self.acked = seq;
                continue;
            }
            if line == BUSY_LINE {
                return Ok(UploadOutcome::Busy);
            }
            if let Some(rest) = line.strip_prefix("DONE ") {
                let mut parts = rest.split_ascii_whitespace();
                let records = parts.next().and_then(|t| t.parse().ok());
                let bytes = parts.next().and_then(|t| t.parse().ok());
                if let (Some(records), Some(bytes)) = (records, bytes) {
                    return Ok(UploadOutcome::Done { records, bytes });
                }
            }
            if let Some(reason) = line.strip_prefix("ERR ") {
                return Ok(UploadOutcome::Rejected(reason.to_owned()));
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable upload verdict {line:?}"),
            ));
        }
    }

    /// Consumes any ack lines already sitting in the read buffer,
    /// without ever touching the socket (which could block mid-upload).
    fn drain_acks(&mut self) {
        loop {
            let buf = self.reader.buffer();
            let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                return;
            };
            let line = String::from_utf8_lossy(&buf[..nl]).trim_end().to_owned();
            self.reader.consume(nl + 1);
            if let Some(seq) = line.strip_prefix("OK ").and_then(|t| t.parse().ok()) {
                self.acked = seq;
            }
        }
    }
}

/// Uploads one in-memory trace in `frame_len`-byte frames, on the
/// one-shot or (when `header.resume` is set) the resumable path — but
/// without any reconnect logic; see [`upload_resumable`] for that.
///
/// A transport error mid-send is translated by reading the verdict the
/// server left behind (`BUSY` closes the socket server-side, which the
/// sender first notices as a failed write).
///
/// # Errors
///
/// Connection or protocol failures that carry no server verdict.
pub fn upload(
    addr: impl ToSocketAddrs,
    header: &PutHeader,
    trace: &[u8],
    frame_len: usize,
) -> io::Result<UploadOutcome> {
    let mut client = match IngestClient::try_connect(addr, header, Duration::from_secs(30))? {
        Ok(c) => c,
        Err(Refusal::Busy) => return Ok(UploadOutcome::Busy),
        Err(Refusal::Rejected(reason)) => return Ok(UploadOutcome::Rejected(reason)),
    };
    if header.resume {
        let base = client.watermark();
        let frames: Vec<&[u8]> = trace.chunks(frame_len.max(1)).collect();
        for (i, piece) in frames.iter().enumerate() {
            if client.send_seq(base + 1 + i as u64, piece).is_err() {
                return client.read_outcome();
            }
        }
        client.finish_seq(base + 1 + frames.len() as u64)
    } else {
        for piece in trace.chunks(frame_len.max(1)) {
            if client.send(piece).is_err() {
                return client.read_outcome();
            }
        }
        client.finish()
    }
}

/// Retry policy for [`upload_resumable`].
#[derive(Debug, Clone)]
pub struct ResumeOpts {
    /// Reconnect attempts after transport failures before giving up.
    pub max_reconnects: u32,
    /// Socket read timeout per attempt.
    pub read_timeout: Duration,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
}

impl Default for ResumeOpts {
    fn default() -> Self {
        ResumeOpts {
            max_reconnects: 4,
            read_timeout: Duration::from_secs(30),
            reconnect_backoff: Duration::from_millis(20),
        }
    }
}

/// What a resumable upload did, beyond its verdict.
#[derive(Debug, Clone)]
pub struct ResumableUpload {
    /// The verdict of the final attempt.
    pub outcome: UploadOutcome,
    /// Connections re-established after transport failures.
    pub reconnects: u64,
    /// Frames *not* re-sent on reconnects because the server's
    /// watermark already covered them.
    pub frames_resumed: u64,
}

/// Uploads one trace on the resumable path, reconnecting and resuming
/// from the server's committed watermark after resets or timeouts.
///
/// The first attempt opens a *new* upload (bare `RESUME`) and records
/// the greeting as `base`; every retry continues it (`RESUME <base>`),
/// skipping the frames the new greeting reports as already durable.
/// Server-side dedupe makes re-sent frames harmless, so the trace folds
/// into the sketch exactly once however often the transport fails.
///
/// # Errors
///
/// Transport failures that persist past `opts.max_reconnects`.
pub fn upload_resumable(
    addr: SocketAddr,
    header: &PutHeader,
    trace: &[u8],
    frame_len: usize,
    opts: &ResumeOpts,
) -> io::Result<ResumableUpload> {
    let frames: Vec<&[u8]> = trace.chunks(frame_len.max(1)).collect();
    let mut base: Option<u64> = None;
    let mut reconnects = 0u64;
    let mut frames_resumed = 0u64;
    loop {
        let attempt = PutHeader {
            client: header.client.clone(),
            scenario: header.scenario.clone(),
            class: header.class,
            resume: true,
            resume_base: base,
        };
        let last_err = match IngestClient::try_connect(addr, &attempt, opts.read_timeout) {
            Ok(Ok(mut client)) => {
                let retrying = base.is_some();
                let b = *base.get_or_insert(client.watermark());
                let skip = (client.watermark().saturating_sub(b) as usize).min(frames.len());
                if retrying {
                    frames_resumed += skip as u64;
                }
                let mut send_failed = false;
                for (i, piece) in frames.iter().enumerate().skip(skip) {
                    if client.send_seq(b + 1 + i as u64, piece).is_err() {
                        send_failed = true;
                        break;
                    }
                    client.drain_acks();
                }
                let verdict = if send_failed {
                    client.read_outcome()
                } else {
                    client.finish_seq(b + 1 + frames.len() as u64)
                };
                match verdict {
                    Ok(outcome) => {
                        return Ok(ResumableUpload {
                            outcome,
                            reconnects,
                            frames_resumed,
                        })
                    }
                    Err(e) => e,
                }
            }
            Ok(Err(Refusal::Busy)) => {
                return Ok(ResumableUpload {
                    outcome: UploadOutcome::Busy,
                    reconnects,
                    frames_resumed,
                })
            }
            Ok(Err(Refusal::Rejected(reason))) => {
                return Ok(ResumableUpload {
                    outcome: UploadOutcome::Rejected(reason),
                    reconnects,
                    frames_resumed,
                })
            }
            Err(e) => e,
        };
        reconnects += 1;
        if reconnects > u64::from(opts.max_reconnects) {
            return Err(last_err);
        }
        std::thread::sleep(opts.reconnect_backoff);
    }
}

/// A query connection.
pub struct QueryClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl QueryClient {
    /// Connects (no greeting — the first command declares query mode).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<QueryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(QueryClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one command line and reads a single-line reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected EOF.
    pub fn roundtrip(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed mid-query")
        })
    }

    /// `PCTL` convenience: the quantile in ms, or the server's error.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side `ERR` comes back as `Ok(Err)`.
    pub fn pctl(&mut self, scenario: &str, p: f64) -> io::Result<Result<f64, String>> {
        let line = self.roundtrip(&format!("PCTL {scenario} {p}"))?;
        if let Some(reason) = line.strip_prefix("ERR ") {
            return Ok(Err(reason.to_owned()));
        }
        let ms = line
            .rsplit("ms=")
            .next()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad PCTL reply {line:?}"),
                )
            })?;
        Ok(Ok(ms))
    }

    /// `STATS` convenience: the full block, one line per element,
    /// without the terminating `.`.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side `ERR` comes back as `Ok(Err)`.
    pub fn stats(&mut self, scenario: &str) -> io::Result<Result<Vec<String>, String>> {
        let first = self.roundtrip(&format!("STATS {scenario}"))?;
        if let Some(reason) = first.strip_prefix("ERR ") {
            return Ok(Err(reason.to_owned()));
        }
        let mut lines = vec![first];
        loop {
            let Some(line) = read_line(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-STATS block",
                ));
            };
            if line == "." {
                return Ok(Ok(lines));
            }
            lines.push(line);
        }
    }
}

/// Reads one trimmed line; `None` on EOF.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}
