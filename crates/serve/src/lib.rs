#![warn(missing_docs)]

//! # latlab-serve: sharded latency-telemetry ingest and query over TCP
//!
//! The paper measures one machine; a fleet of them produces streams of
//! `.ltrc` traces that have to be folded into latency distributions
//! *somewhere*. This crate is that somewhere: a std-only threaded TCP
//! service that
//!
//! * accepts streaming trace uploads from many concurrent clients,
//!   framed and CRC-checked ([`protocol`]), reassembled by
//!   [`latlab_trace::StreamDecoder`] regardless of how the network
//!   fragments them;
//! * shards ingestion across worker threads by `(client, scenario)`
//!   ([`shard`]), folding idle-stamp streams into O(1)-memory mergeable
//!   sketches ([`latlab_analysis::LatencySketch`]) — fixed-bucket
//!   log-scaled histograms plus deadline-miss counters keyed off the
//!   perception thresholds;
//! * answers a line-delimited query protocol (`STATS`, `PCTL`,
//!   `SNAPSHOT`, `HEALTH`) from epoch-swapped immutable snapshots
//!   through an incremental [`query`] plane — a cached merged view
//!   that re-merges only the scenarios whose published sketch changed
//!   (`Arc::ptr_eq` dirty detection) and memoizes quantiles — so the
//!   read path never blocks ingest and stays O(dirty scenarios), not
//!   O(shards × scenarios), per refresh;
//! * sheds load explicitly — bounded per-shard queues, `BUSY` on
//!   overflow — and drains gracefully on `SHUTDOWN` or SIGTERM;
//! * survives `kill -9` when configured with a write-ahead log
//!   ([`wal`]): each shard logs accepted frames before acknowledging
//!   them, checkpoints its sketches, and replays the log tail on
//!   restart — combined with resumable uploads (`PUT … RESUME` and
//!   cumulative `OK <seq>` acks) every acknowledged sample lands in the
//!   recovered sketch exactly once.
//!
//! [`slam`] is the companion load generator: N uploader connections
//! replaying a corpus while a prober measures query-path latency under
//! that load. [`netfault`] is the matching chaos layer: a seeded
//! in-process TCP proxy that injects resets, partial writes, delays,
//! and duplicated frames between the two, deterministically.
//!
//! Everything runs on the standard library alone: threads, channels,
//! and blocking sockets — no async runtime, in keeping with the
//! workspace's no-external-dependency constraint.

pub mod client;
pub mod netfault;
pub mod pipeline;
pub mod protocol;
pub mod query;
pub mod server;
pub mod shard;
pub mod slam;
pub mod wal;

pub use client::{
    upload, upload_resumable, IngestClient, QueryClient, ResumableUpload, ResumeOpts, UploadOutcome,
};
pub use netfault::{FaultConfig, FaultProxy};
pub use pipeline::{fold_corpus, FoldOutcome};
pub use protocol::{PutHeader, Query};
pub use query::{merge_full, MergedView, PlaneStats, QueryPlane, ScenarioEntry};
pub use server::{ServeConfig, ServeStats, Server};
pub use shard::{IngestRejection, IngestTotals, ShardConfig, ShardSet, ShardSnapshot};
pub use slam::{idle_corpus, synthetic_corpus, SlamConfig, SlamReport, VerbLatency};
pub use wal::{RecoveryStats, WalConfig};
