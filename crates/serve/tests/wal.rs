//! Durability integration tests: WAL recovery over real TCP restarts.
//!
//! The crash-recovery invariant under test: after a `kill -9`-style
//! crash, a restarted server recovers a sketch exactly equal to the
//! fold of every acknowledged sample — and a client that re-sends an
//! already-acknowledged tail is deduplicated, never double-counted.
//! A clean drain, by contrast, checkpoints everything and leaves no
//! log to replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use latlab_analysis::{EventClass, LatencySketch};
use latlab_serve::wal::{replay, ShardWal, StreamId, WalRecord};
use latlab_serve::{
    fold_corpus, slam::synthetic_corpus, upload, IngestClient, PutHeader, QueryClient, ServeConfig,
    Server, ShardConfig, UploadOutcome, WalConfig,
};
use proptest::prelude::*;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static N: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "latlab-wal-it-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wal_server(dir: &std::path::Path) -> Server {
    Server::start(ServeConfig {
        bind: "127.0.0.1:0".to_owned(),
        shard: ShardConfig {
            shards: 2,
            queue_depth: 64,
            publish_every: 1_000,
        },
        read_timeout: Duration::from_secs(2),
        busy_retry: Duration::from_millis(100),
        scalar_ingest: false,
        wal: Some(WalConfig::new(dir)),
    })
    .expect("start server")
}

fn put(scenario: &str, client: &str, resume: bool) -> PutHeader {
    PutHeader {
        client: client.to_owned(),
        scenario: scenario.to_owned(),
        class: Some(EventClass::Keystroke),
        resume,
        resume_base: None,
    }
}

fn encoded(sketch: &LatencySketch) -> Vec<u8> {
    let mut out = Vec::new();
    sketch.encode(&mut out);
    out
}

#[test]
fn clean_drain_checkpoints_everything_and_replays_nothing() {
    let tmp = TempDir::new("drain");
    let blob = synthetic_corpus(20_000, 0xd7a1, 40);

    let server = wal_server(&tmp.0);
    let addr = server.local_addr();
    let outcome = upload(addr, &put("fig5", "c0", false), &blob, 8 * 1024).expect("upload");
    assert!(matches!(outcome, UploadOutcome::Done { .. }), "{outcome:?}");
    let (_, merged1) = server.join();
    let before = encoded(merged1.get("fig5").expect("scenario folded"));

    // The drain-time checkpoint covered the whole log: the restart
    // loads it and replays zero records.
    let server = wal_server(&tmp.0);
    let rec = *server.recovery();
    assert!(rec.checkpoints >= 1, "no checkpoint loaded: {rec:?}");
    assert_eq!(rec.frames, 0, "clean restart replayed the log: {rec:?}");
    let (_, merged2) = server.join();
    let after = encoded(merged2.get("fig5").expect("scenario recovered"));
    assert_eq!(before, after, "checkpointed sketch drifted");
}

#[test]
fn crash_recovery_and_resent_tail_are_exactly_once() {
    let tmp = TempDir::new("crash");
    let blob = synthetic_corpus(20_000, 0xc4a5, 40);
    let frame_len = 8 * 1024;
    let frames = blob.len().div_ceil(frame_len) as u64;
    let exact = fold_corpus(&blob, frame_len, EventClass::Keystroke, false);

    // Upload on the resumable path; DONE means every frame (and the end
    // marker) was acknowledged, hence logged and flushed.
    let server = wal_server(&tmp.0);
    let addr = server.local_addr();
    let outcome = upload(addr, &put("fig5", "c0", true), &blob, frame_len).expect("upload");
    let UploadOutcome::Done { records, .. } = outcome else {
        panic!("upload not acknowledged: {outcome:?}")
    };
    assert_eq!(records, exact.records);
    server.crash(); // kill -9 semantics: no drain, no checkpoint

    // Restart: the replayed sketch is bit-identical to folding the
    // corpus directly, because every sample was acknowledged.
    let server = wal_server(&tmp.0);
    let rec = *server.recovery();
    assert!(rec.frames > 0, "crash restart replayed nothing: {rec:?}");
    assert_eq!(rec.records, exact.records, "replayed records: {rec:?}");

    // The resume watermark survived: a reconnecting client is told how
    // far the server got (all frames plus the end marker).
    let addr = server.local_addr();
    let client =
        IngestClient::connect(addr, &put("fig5", "c0", true)).expect("reconnect after restart");
    assert_eq!(client.watermark(), frames + 1, "watermark lost in recovery");
    drop(client);

    // A client that lost its ack state and re-sends the whole upload
    // from seq 1 is deduplicated record-for-record: the cached DONE
    // verdict replays and the sketch does not move.
    let mut header = put("fig5", "c0", true);
    header.resume_base = Some(0);
    let mut client = IngestClient::connect(addr, &header).expect("resume connect");
    for (i, piece) in blob.chunks(frame_len).enumerate() {
        client.send_seq(i as u64 + 1, piece).expect("re-send frame");
    }
    let outcome = client.finish_seq(frames + 1).expect("re-send finish");
    let UploadOutcome::Done { records, .. } = outcome else {
        panic!("re-sent upload not acknowledged: {outcome:?}")
    };
    assert_eq!(records, exact.records, "cached DONE verdict drifted");

    let mut q = QueryClient::connect(addr).expect("query connect");
    let health = q.roundtrip("HEALTH").expect("health");
    let dedup: u64 = health
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("dedup_dropped="))
        .expect("dedup_dropped in HEALTH")
        .parse()
        .expect("dedup_dropped numeric");
    assert_eq!(dedup, frames + 1, "every re-sent frame must dedupe");

    let (_, merged) = server.join();
    let sketch = merged.get("fig5").expect("scenario recovered");
    assert_eq!(
        encoded(sketch),
        encoded(&exact.sketch),
        "recovered+resent sketch must equal the exact fold"
    );
}

/// Appends `payload_lens.len()` frame records, flushing after each and
/// recording the segment file's length at every record boundary.
fn build_segment(dir: &std::path::Path, payload_lens: &[usize]) -> (PathBuf, Vec<u64>) {
    let mut wal = ShardWal::open(dir, u64::MAX, 1).expect("open wal");
    wal.flush().expect("flush segment header");
    let stream = StreamId::Keyed {
        client: "prop".to_owned(),
        scenario: "torn".to_owned(),
    };
    let seg = std::fs::read_dir(dir)
        .expect("list wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .expect("active segment file");
    let mut bounds = vec![std::fs::metadata(&seg).expect("stat").len()];
    for (i, &len) in payload_lens.iter().enumerate() {
        let rec = WalRecord::Frame {
            stream: stream.clone(),
            class: Some(EventClass::Keystroke),
            seq: i as u64 + 1,
            bytes: vec![i as u8; len],
        };
        wal.append(&rec).expect("append");
        wal.flush().expect("flush");
        bounds.push(std::fs::metadata(&seg).expect("stat").len());
    }
    (seg, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the log tail anywhere — mid-header, mid-payload, or
    /// exactly on a record boundary — salvages precisely the intact
    /// prefix: no record is invented, none before the cut is lost, and
    /// only boundary cuts read as clean ends.
    #[test]
    fn torn_final_record_salvages_exactly_the_intact_prefix(
        payload_lens in proptest::collection::vec(1usize..200, 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let tmp = TempDir::new("prop");
        let (seg, bounds) = build_segment(&tmp.0, &payload_lens);
        let total = *bounds.last().unwrap();
        let header = bounds[0];
        let cut = header + ((total - header) as f64 * cut_frac) as u64;
        let full = std::fs::read(&seg).expect("read segment");
        std::fs::write(&seg, &full[..cut as usize]).expect("truncate");

        let mut replayed = Vec::new();
        let (stats, next) = replay(&tmp.0, 0, |lsn, rec| replayed.push((lsn, rec)))
            .expect("replay");

        let intact = bounds.iter().filter(|&&b| b > header && b <= cut).count();
        prop_assert_eq!(replayed.len(), intact, "cut at {}", cut);
        prop_assert_eq!(next, intact as u64 + 1);
        for (i, (lsn, rec)) in replayed.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64 + 1);
            let WalRecord::Frame { seq, bytes, .. } = rec else {
                panic!("replayed a record never written: {rec:?}");
            };
            prop_assert_eq!(*seq, i as u64 + 1);
            prop_assert_eq!(bytes.len(), payload_lens[i]);
        }
        let at_boundary = bounds.contains(&cut);
        prop_assert_eq!(stats.torn, !at_boundary, "cut at {}", cut);
    }
}
