//! Exit-code and end-to-end tests for the `serve` and `slam` binaries.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_serve");
const SLAM: &str = env!("CARGO_BIN_EXE_slam");

#[test]
fn version_lines_share_the_workspace_version() {
    for bin in [SERVE, SLAM] {
        let out = Command::new(bin).arg("--version").output().expect("run");
        assert!(out.status.success());
        let line = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            line.contains("(latlab)") && line.contains(env!("CARGO_PKG_VERSION")),
            "{bin}: {line}"
        );
    }
}

#[test]
fn usage_errors_exit_2() {
    let cases: &[(&str, &[&str])] = &[
        (SERVE, &["--no-such-flag"]),
        (SERVE, &["--shards"]),
        (SERVE, &["--shards", "zebra"]),
        (SERVE, &["--shards", "0"]),
        (SLAM, &[]),
        (SLAM, &["--no-such-flag"]),
        (SLAM, &["not-an-address:-1"]),
        (SLAM, &["127.0.0.1:4117", "--class", "nosuchclass"]),
        (SLAM, &["127.0.0.1:4117", "--connections", "0"]),
    ];
    for (bin, args) in cases {
        let out = Command::new(bin).args(*args).output().expect("run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bin} {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn slam_runtime_failure_exits_1() {
    // A dead port is a well-formed invocation that fails at runtime.
    let out = Command::new(SLAM)
        .args([
            "127.0.0.1:9",
            "--duration-s",
            "1",
            "--connections",
            "1",
            "--synthetic-records",
            "1000",
        ])
        .output()
        .expect("run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_and_slam_end_to_end() {
    let dir = std::env::temp_dir().join(format!("latlab-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let port_file = dir.join("addr");

    let mut server = Command::new(SERVE)
        .args([
            "--bind",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().expect("utf8 path"),
            "--shards",
            "2",
            "--read-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // Wait for the port file to appear.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "server never published its port");
        std::thread::sleep(Duration::from_millis(20));
    };

    let slam = Command::new(SLAM)
        .args([
            addr.as_str(),
            "--duration-s",
            "2",
            "--connections",
            "4",
            "--scenario",
            "e2e",
            "--synthetic-records",
            "20000",
        ])
        .output()
        .expect("run slam");
    let report = String::from_utf8_lossy(&slam.stdout);
    assert!(
        slam.status.success(),
        "slam failed: {report}\n{}",
        String::from_utf8_lossy(&slam.stderr)
    );
    assert!(report.contains("uploads_done="), "{report}");
    let done: u64 = report
        .lines()
        .find_map(|l| l.strip_prefix("uploads_done="))
        .and_then(|v| v.parse().ok())
        .expect("uploads_done line");
    assert!(done > 0, "{report}");

    // Query the live server directly, then drain it over the wire.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    writeln!(writer, "PCTL e2e 99").expect("send pctl");
    reader.read_line(&mut line).expect("read pctl");
    assert!(line.starts_with("pctl scenario=e2e "), "{line}");
    line.clear();
    writeln!(writer, "SHUTDOWN").expect("send shutdown");
    reader.read_line(&mut line).expect("read shutdown");
    assert_eq!(line.trim(), "draining");

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
