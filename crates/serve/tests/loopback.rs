//! Loopback integration tests: the full server driven over real TCP.
//!
//! Covers the service's load-bearing claims:
//! * concurrent uploads all fold, and the post-drain merged sketch
//!   matches an exact histogram of the same samples within the
//!   documented error bound;
//! * a mid-stream disconnect harms nobody — no shard stalls, later
//!   uploads and queries proceed;
//! * `SNAPSHOT` reads taken *during* ingest are internally consistent:
//!   counts and epochs never go backwards;
//! * a full shard queue surfaces as `BUSY`, not as hidden buffering.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use latlab_analysis::{EventClass, PerceptionModel};
use latlab_serve::{
    slam::synthetic_corpus, upload, PutHeader, QueryClient, ServeConfig, Server, ShardConfig,
    UploadOutcome,
};
use latlab_trace::{Record, TraceReader};
use serde::Deserialize;

fn test_server(shard: ShardConfig) -> Server {
    Server::start(ServeConfig {
        bind: "127.0.0.1:0".to_owned(),
        shard,
        read_timeout: Duration::from_secs(2),
        busy_retry: Duration::from_millis(50),
        scalar_ingest: false,
        wal: None,
    })
    .expect("start server")
}

fn put(scenario: &str, client: &str) -> PutHeader {
    PutHeader {
        client: client.to_owned(),
        scenario: scenario.to_owned(),
        class: Some(EventClass::Keystroke),
        resume: false,
        resume_base: None,
    }
}

/// Replicates the server's sample extraction: excess-over-baseline per
/// idle-stamp gap, in ms.
fn exact_samples(trace: &[u8]) -> Vec<f64> {
    let mut r = TraceReader::open(trace).expect("open corpus");
    let baseline = r.meta().baseline.cycles();
    let freq = r.meta().freq;
    let mut prev: Option<u64> = None;
    let mut out = Vec::new();
    while let Some(rec) = r.next().expect("read corpus") {
        let Record::Stamp(at) = rec else {
            panic!("non-stamp record in corpus")
        };
        if let Some(p) = prev {
            let gap = at - p;
            if gap > baseline {
                out.push(freq.to_ms(latlab_des::SimDuration::from_cycles(gap - baseline)));
            }
        }
        prev = Some(at);
    }
    out
}

#[test]
fn concurrent_uploads_match_exact_histogram_after_drain() {
    let server = test_server(ShardConfig {
        shards: 3,
        queue_depth: 256,
        publish_every: 10_000,
    });
    let addr = server.local_addr();

    const CLIENTS: usize = 8;
    let corpus: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|i| synthetic_corpus(20_000, 0x1000 + i as u64, 50))
        .collect();

    let handles: Vec<_> = corpus
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, blob)| {
            std::thread::spawn(move || {
                upload(addr, &put("fig5", &format!("c{i}")), &blob, 8 * 1024)
                    .expect("upload transport")
            })
        })
        .collect();
    let mut acked_records = 0u64;
    for h in handles {
        match h.join().expect("uploader panicked") {
            UploadOutcome::Done { records, .. } => acked_records += records,
            other => panic!("upload not acknowledged: {other:?}"),
        }
    }
    assert_eq!(acked_records, CLIENTS as u64 * 20_000);

    // Queries answer while the server is still up.
    let mut q = QueryClient::connect(addr).expect("query connect");
    let health = q.roundtrip("HEALTH").expect("health");
    assert!(health.starts_with("ok "), "{health}");
    let stats = q.stats("fig5").expect("stats io").expect("stats block");
    assert!(stats[0].starts_with("scenario=fig5 "), "{:?}", stats[0]);

    // Ground truth: every sample, exactly, folded the way the server
    // folds them.
    let mut exact: Vec<f64> = corpus.iter().flat_map(|b| exact_samples(b)).collect();
    exact.sort_by(f64::total_cmp);
    assert!(!exact.is_empty());

    let (_, merged) = server.join();
    let sketch = merged.get("fig5").expect("scenario folded");
    assert_eq!(sketch.total(), exact.len() as u64, "sample count exact");

    // Deadline misses are integer-exact against the perception model.
    let band = PerceptionModel::default()
        .band(EventClass::Keystroke)
        .expect("keystroke band");
    let exact_misses = exact.iter().filter(|&&ms| ms > band.free_ms).count() as u64;
    assert_eq!(sketch.total_misses(), exact_misses);

    // Quantiles within the documented log-bucket bound (~1.2% relative
    // vs the order statistic at the histogram's rank convention).
    for q in [0.5, 0.9, 0.99, 0.999] {
        let approx = sketch.quantile(q).expect("quantile");
        let rank = (q * (exact.len() - 1) as f64).round() as usize;
        let truth = exact[rank];
        let rel = (approx - truth).abs() / truth.abs().max(1e-9);
        assert!(
            rel < 0.012,
            "q={q}: approx {approx} vs exact {truth} (rel {rel})"
        );
    }
}

#[test]
fn mid_stream_disconnect_stalls_nothing() {
    let server = test_server(ShardConfig {
        shards: 2,
        queue_depth: 64,
        publish_every: 1_000,
    });
    let addr = server.local_addr();
    let blob = synthetic_corpus(30_000, 0xd15c, 40);

    // A client that walks away mid-chunk: PUT, half the trace bytes in
    // raw frames, then a hard close.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"PUT ghost fig5 keystroke\n").expect("put");
        let half = &blob[..blob.len() / 2];
        let mut framed = Vec::new();
        latlab_serve::protocol::write_frame(&mut framed, half).expect("frame");
        s.write_all(&framed).expect("send half");
        // Dropping the stream closes the socket with the upload open.
    }

    // Everyone else proceeds: uploads complete, queries answer.
    for i in 0..4 {
        let outcome = upload(addr, &put("fig5", &format!("live{i}")), &blob, 16 * 1024)
            .expect("upload transport");
        assert!(
            matches!(outcome, UploadOutcome::Done { .. }),
            "upload {i}: {outcome:?}"
        );
    }
    let mut q = QueryClient::connect(addr).expect("query connect");
    let p99 = q.pctl("fig5", 0.99).expect("pctl io").expect("pctl value");
    assert!(p99 > 0.0);

    let (_, merged) = server.join();
    // The four complete uploads are all present; the ghost contributed
    // at most its decoded prefix.
    let total = merged.get("fig5").expect("scenario").total();
    let per_upload = exact_samples(&blob).len() as u64;
    assert!(total >= 4 * per_upload, "shard lost completed uploads");
}

#[derive(Debug, Deserialize)]
struct SnapView {
    epoch: u64,
    total: u64,
    scenarios: BTreeMap<String, ScenView>,
}

#[derive(Debug, Deserialize)]
struct ScenView {
    count: u64,
    misses: u64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[test]
fn snapshot_counts_are_monotonic_during_ingest() {
    let server = test_server(ShardConfig {
        shards: 2,
        queue_depth: 64,
        publish_every: 2_000,
    });
    let addr = server.local_addr();
    let blob = Arc::new(synthetic_corpus(25_000, 0x0b5e, 30));

    let stop = Arc::new(AtomicBool::new(false));
    let uploader = {
        let stop = stop.clone();
        let blob = blob.clone();
        std::thread::spawn(move || {
            let mut n = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let _ = upload(addr, &put("mono", &format!("u{n}")), &blob, 8 * 1024);
                n += 1;
            }
        })
    };

    let mut q = QueryClient::connect(addr).expect("query connect");
    let mut last = SnapView {
        epoch: 0,
        total: 0,
        scenarios: BTreeMap::new(),
    };
    let mut grew = false;
    for _ in 0..60 {
        let line = q.roundtrip("SNAPSHOT").expect("snapshot");
        let view: SnapView = serde_json::from_str(&line).expect("snapshot json");
        assert!(view.epoch >= last.epoch, "epoch went backwards");
        assert!(view.total >= last.total, "total went backwards");
        if let Some(s) = view.scenarios.get("mono") {
            let prev = last.scenarios.get("mono").map_or(0, |p| p.count);
            assert!(s.count >= prev, "scenario count went backwards");
            assert!(s.misses <= s.count, "misses exceed count");
            assert!(
                s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms && s.p99_ms <= s.max_ms,
                "quantiles not ordered: {s:?}"
            );
        }
        grew |= view.total > 0;
        last = view;
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(grew, "ingest never became visible in snapshots");
    stop.store(true, Ordering::SeqCst);
    uploader.join().expect("uploader join");
    server.join();
}

#[test]
fn full_queue_answers_busy() {
    // One shard, queue depth 1, publish on every fold: the lone worker
    // folds O(batch) samples per message, so eight concurrent uploads
    // must overflow the bounded queue and surface BUSY instead of
    // buffering.
    let server = Server::start(ServeConfig {
        bind: "127.0.0.1:0".to_owned(),
        shard: ShardConfig {
            shards: 1,
            queue_depth: 1,
            publish_every: 1,
        },
        read_timeout: Duration::from_secs(2),
        busy_retry: Duration::ZERO,
        scalar_ingest: false,
        wal: None,
    })
    .expect("start server");
    let addr = server.local_addr();
    let blob = Arc::new(synthetic_corpus(120_000, 0xb5b5, 20));

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let blob = blob.clone();
            std::thread::spawn(move || {
                let mut busy = 0u32;
                for round in 0..3 {
                    if let Ok(UploadOutcome::Busy) = upload(
                        addr,
                        &put("flood", &format!("f{i}-{round}")),
                        &blob,
                        64 * 1024,
                    ) {
                        busy += 1;
                    }
                }
                busy
            })
        })
        .collect();
    let busy_total: u32 = handles.into_iter().map(|h| h.join().expect("join")).sum();
    assert!(busy_total > 0, "bounded queue never surfaced BUSY");

    // The server is still healthy after shedding load.
    let mut q = QueryClient::connect(addr).expect("query connect");
    let health = q.roundtrip("HEALTH").expect("health");
    assert!(health.starts_with("ok "), "{health}");
    assert!(health.contains("busy_rejections="), "{health}");
    server.join();
}

#[test]
fn batch_and_scalar_ingest_fold_identically() {
    // The same corpus through the columnar batch path and the scalar
    // reference path must land in bit-identical sketches: same counts,
    // same misses, same quantiles, same moments. Single shard and a
    // single uploader keep fold order deterministic on both servers.
    let corpus: Vec<Vec<u8>> = (0..3)
        .map(|i| synthetic_corpus(15_000, 0xe100 + i as u64, 40))
        .collect();
    let run = |scalar: bool| {
        let server = Server::start(ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            shard: ShardConfig {
                shards: 1,
                queue_depth: 256,
                publish_every: 5_000,
            },
            read_timeout: Duration::from_secs(2),
            busy_retry: Duration::from_millis(200),
            scalar_ingest: scalar,
            wal: None,
        })
        .expect("start server");
        let addr = server.local_addr();
        for blob in &corpus {
            let outcome = upload(addr, &put("eq", "c0"), blob, 8 * 1024).expect("upload");
            assert!(matches!(outcome, UploadOutcome::Done { .. }), "{outcome:?}");
        }
        let (_, mut merged) = server.join();
        merged.remove("eq").expect("scenario folded")
    };
    let batch = run(false);
    let scalar = run(true);
    assert_eq!(batch.total(), scalar.total());
    assert_eq!(batch.total_misses(), scalar.total_misses());
    let (b, s) = (
        batch.class(EventClass::Keystroke),
        scalar.class(EventClass::Keystroke),
    );
    assert_eq!(b.stats().mean(), s.stats().mean(), "mean bit-identical");
    assert_eq!(b.stats().min(), s.stats().min());
    assert_eq!(b.stats().max(), s.stats().max());
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(b.quantile(q), s.quantile(q), "q{q}");
    }
}

#[test]
fn shutdown_command_drains() {
    let server = test_server(ShardConfig {
        shards: 2,
        queue_depth: 64,
        publish_every: 1_000,
    });
    let addr = server.local_addr();
    let blob = synthetic_corpus(10_000, 0x51de, 25);
    let outcome = upload(addr, &put("bye", "c0"), &blob, 16 * 1024).expect("upload");
    assert!(matches!(outcome, UploadOutcome::Done { .. }));

    let mut q = QueryClient::connect(addr).expect("query connect");
    assert_eq!(q.roundtrip("SHUTDOWN").expect("shutdown"), "draining");
    assert!(server.shutdown_requested());

    // New ingest is refused once draining.
    let refused = upload(addr, &put("bye", "late"), &blob, 16 * 1024);
    match refused {
        Ok(UploadOutcome::Rejected(reason)) => assert!(reason.contains("draining"), "{reason}"),
        Ok(other) => panic!("late upload not refused: {other:?}"),
        Err(_) => {} // accept loop may already be gone — equally fine
    }

    let (_, merged) = server.join();
    assert_eq!(
        merged.get("bye").expect("scenario").total(),
        exact_samples(&blob).len() as u64
    );
}
