//! Deterministic chaos tests: the ingest path under injected network
//! faults and real `kill -9`.
//!
//! The invariant throughout: every *acknowledged* sample lands in the
//! final sketch exactly once, no matter how many resets, torn writes,
//! duplicated frames, or process deaths happen along the way. Because a
//! scenario's samples fold in sequence order on a single shard worker,
//! "exactly once" is checkable bit-for-bit against an offline fold of
//! the same corpus.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use latlab_analysis::{EventClass, LatencySketch};
use latlab_serve::{
    fold_corpus, slam::synthetic_corpus, upload, upload_resumable, FaultConfig, FaultProxy,
    IngestClient, PutHeader, QueryClient, ResumeOpts, ServeConfig, Server, ShardConfig,
    UploadOutcome, WalConfig,
};

const SERVE: &str = env!("CARGO_BIN_EXE_serve");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static N: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "latlab-chaos-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn put(scenario: &str, client: &str) -> PutHeader {
    PutHeader {
        client: client.to_owned(),
        scenario: scenario.to_owned(),
        class: Some(EventClass::Keystroke),
        resume: true,
        resume_base: None,
    }
}

fn encoded(sketch: &LatencySketch) -> Vec<u8> {
    let mut out = Vec::new();
    sketch.encode(&mut out);
    out
}

fn health_counter(health: &str, key: &str) -> u64 {
    health
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .unwrap_or_else(|| panic!("{key} missing from HEALTH: {health}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key} not numeric in HEALTH: {health}"))
}

#[test]
fn resumable_uploads_survive_injected_faults_exactly_once() {
    let tmp = TempDir::new("proxy");
    let server = Server::start(ServeConfig {
        bind: "127.0.0.1:0".to_owned(),
        shard: ShardConfig {
            shards: 2,
            queue_depth: 64,
            publish_every: 1_000,
        },
        read_timeout: Duration::from_secs(2),
        busy_retry: Duration::from_millis(100),
        scalar_ingest: false,
        wal: Some(WalConfig::new(&tmp.0)),
    })
    .expect("start server");

    // Aggressive, seeded fault rates: with ~40 frames per upload, every
    // run injects resets (half of them torn mid-frame) and duplicates.
    let proxy = FaultProxy::start(
        "127.0.0.1:0",
        server.local_addr(),
        FaultConfig {
            seed: 0x7e57_c4a5,
            reset_one_in: 12,
            duplicate_one_in: 10,
            delay_one_in: 16,
            delay: Duration::from_millis(1),
        },
    )
    .expect("start proxy");
    let via = proxy.local_addr();

    const CLIENTS: usize = 3;
    let corpus: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|i| synthetic_corpus(20_000, 0xc0de + i as u64, 40))
        .collect();
    let frame_len = 8 * 1024;
    let opts = ResumeOpts {
        max_reconnects: 200,
        read_timeout: Duration::from_secs(5),
        reconnect_backoff: Duration::from_millis(1),
    };

    let handles: Vec<_> = corpus
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, blob)| {
            let opts = opts.clone();
            std::thread::spawn(move || {
                upload_resumable(
                    via,
                    &put(&format!("chaos{i}"), &format!("c{i}")),
                    &blob,
                    frame_len,
                    &opts,
                )
                .expect("upload past injected faults")
            })
        })
        .collect();
    let mut reconnects = 0u64;
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.join().expect("uploader panicked");
        match r.outcome {
            UploadOutcome::Done { records, .. } => {
                let exact = fold_corpus(&corpus[i], frame_len, EventClass::Keystroke, false);
                assert_eq!(records, exact.records, "client {i} DONE records");
            }
            other => panic!("client {i} not acknowledged: {other:?}"),
        }
        reconnects += r.reconnects;
    }

    let resets = proxy.stats().resets.load(Ordering::Relaxed);
    let duplicated = proxy.stats().duplicated.load(Ordering::Relaxed);
    assert!(resets > 0, "seeded config injected no resets");
    assert!(duplicated > 0, "seeded config duplicated no frames");
    assert!(
        reconnects > 0,
        "clients saw {resets} resets but never reconnected"
    );
    proxy.stop();

    // Exactly-once, bit-for-bit: each scenario folds on one worker in
    // sequence order, so duplicates or re-sent tails would change the
    // encoding.
    let (_, merged) = server.join();
    for (i, blob) in corpus.iter().enumerate() {
        let exact = fold_corpus(blob, frame_len, EventClass::Keystroke, false);
        let sketch = merged
            .get(&format!("chaos{i}"))
            .unwrap_or_else(|| panic!("scenario chaos{i} missing"));
        assert_eq!(
            encoded(sketch),
            encoded(&exact.sketch),
            "client {i}: sketch is not the exact fold"
        );
    }
}

fn spawn_serve(wal: &std::path::Path, port_file: &std::path::Path) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(SERVE)
        .args([
            "--bind",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--read-timeout-ms",
            "2000",
            "--wal",
            wal.to_str().expect("utf8 wal path"),
            "--port-file",
            port_file.to_str().expect("utf8 port path"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "server never published its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

#[test]
fn kill_nine_restart_recovers_every_acknowledged_sample() {
    let tmp = TempDir::new("kill9");
    let wal = tmp.0.join("wal");
    let port_file = tmp.0.join("addr");
    let blob = synthetic_corpus(20_000, 0x9111, 40);
    let frame_len = 8 * 1024;
    let frames = blob.len().div_ceil(frame_len) as u64;
    let exact = fold_corpus(&blob, frame_len, EventClass::Keystroke, false);

    // Round 1: upload, get DONE (= logged and flushed), then SIGKILL.
    let (mut child, addr) = spawn_serve(&wal, &port_file);
    let outcome = upload(&*addr, &put("fig5", "c0"), &blob, frame_len).expect("upload");
    assert!(matches!(outcome, UploadOutcome::Done { .. }), "{outcome:?}");
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // Round 2: recovery replays the log; the sketch and the resume
    // watermark are exactly what was acknowledged.
    let (mut child, addr) = spawn_serve(&wal, &port_file);
    let mut q = QueryClient::connect(&*addr).expect("query connect");
    let health = q.roundtrip("HEALTH").expect("health");
    assert!(
        health_counter(&health, "recovered_frames") > 0,
        "restart after kill -9 replayed nothing: {health}"
    );
    assert_eq!(
        health_counter(&health, "recovered_samples"),
        exact.samples,
        "{health}"
    );
    let client = IngestClient::connect(&*addr, &put("fig5", "c0")).expect("resume connect");
    assert_eq!(client.watermark(), frames + 1, "watermark lost in recovery");
    drop(client);
    assert_eq!(q.roundtrip("SHUTDOWN").expect("shutdown"), "draining");
    drop(q);
    assert!(child.wait().expect("drain exit").success());

    // Round 3: the drain checkpointed everything — nothing replays, yet
    // the scenario is fully there, and a clean SHUTDOWN still works.
    let (mut child, addr) = spawn_serve(&wal, &port_file);
    let mut q = QueryClient::connect(&*addr).expect("query connect");
    let health = q.roundtrip("HEALTH").expect("health");
    assert_eq!(
        health_counter(&health, "recovered_frames"),
        0,
        "clean restart replayed the log: {health}"
    );
    let p99 = q.pctl("fig5", 0.99).expect("pctl io").expect("pctl value");
    let truth = exact.sketch.quantile(0.99).expect("exact p99");
    assert!(
        (p99 - truth).abs() < 1e-3,
        "recovered p99 {p99} vs exact {truth}"
    );
    assert_eq!(q.roundtrip("SHUTDOWN").expect("shutdown"), "draining");
    drop(q);
    assert!(child.wait().expect("final exit").success());
}
