//! Whole-machine snapshot/restore: a restored continuation must be
//! bit-identical to the straight run — observables, trace suffixes and
//! fault statistics — and a fork that edits an unread parameter must be
//! bit-identical to a scratch boot with that parameter changed.

use std::sync::{Arc, Mutex};

use latlab_des::SimTime;
use latlab_faults::{FaultKind, FaultPlan};
use latlab_os::program::{Action, ApiCall, ApiReply, ComputeSpec, ProcessSpec, Program, StepCtx};
use latlab_os::{FileId, InputKind, KeySym, Machine, Message, OsParams, OsProfile, SweptParam};
use latlab_trace::{Record, TraceSink};
use proptest::prelude::*;

/// A message-loop app exercising every swept-parameter path: GetMessage
/// (crossing/GUI costs), GDI batching, write-through file I/O, and idle
/// stamp emission.
#[derive(Clone)]
struct Worker {
    file: Option<FileId>,
    phase: u8,
    writes: u64,
}

impl Worker {
    fn new() -> Self {
        Worker {
            file: None,
            phase: 0,
            writes: 0,
        }
    }
}

impl Program for Worker {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Call(ApiCall::OpenFile { name: "data" })
            }
            1 => {
                if let ApiReply::File(f) = ctx.reply {
                    self.file = Some(f);
                }
                self.phase = 2;
                Action::Call(ApiCall::GetMessage)
            }
            2 => {
                if let ApiReply::Message(Some(Message::Input { .. })) = ctx.reply {
                    self.phase = 3;
                    Action::Compute(ComputeSpec::app(200_000))
                } else {
                    Action::Call(ApiCall::GetMessage)
                }
            }
            3 => {
                self.phase = 4;
                Action::Call(ApiCall::Gdi { ops: 3 })
            }
            4 => {
                self.phase = 5;
                let offset = (self.writes * 4096) % (48 * 4096);
                self.writes += 1;
                Action::Call(ApiCall::WriteFile {
                    file: self.file.expect("file opened"),
                    offset,
                    len: 4096,
                })
            }
            _ => {
                self.phase = 2;
                Action::Call(ApiCall::Emit(self.writes))
            }
        }
    }
}

/// Builds the standard scenario: one focused `Worker`, a registered file,
/// an optional fault plan, and keys at the given absolute millisecond
/// offsets (must be sorted).
fn build(params: OsParams, plan: Option<&FaultPlan>, input_ms: &[u64]) -> Machine {
    let mut m = Machine::new(params);
    m.register_file("data", 64 * 4096, 4);
    let tid = m.spawn(ProcessSpec::app("worker"), Box::new(Worker::new()));
    m.set_focus(tid);
    if let Some(p) = plan {
        m.install_faults(p);
    }
    let freq = m.params().freq;
    for &ms in input_ms {
        m.schedule_input_at(
            SimTime::ZERO + freq.ms(ms),
            InputKind::Key(KeySym::Char('x')),
        );
    }
    m
}

/// Everything a run exposes, flattened for equality checks.
#[allow(clippy::type_complexity)]
fn observe(
    m: &Machine,
) -> (
    u64,
    Vec<u64>,
    String,
    String,
    String,
    (u64, u64),
    (u64, u64),
) {
    let lats: Vec<u64> = m
        .ground_truth()
        .events()
        .iter()
        .map(|e| e.true_latency().map(|d| d.cycles()).unwrap_or(u64::MAX))
        .collect();
    (
        m.now().cycles(),
        lats,
        format!("{:?}", m.counter_ground_truth()),
        format!("{:?}", m.fault_stats()),
        format!("{:?}", m.stats()),
        m.cache_stats(),
        m.sink_records(),
    )
}

#[test]
fn restored_continuation_matches_straight_run() {
    let inputs = [60, 130, 200, 260];
    let freq = OsProfile::Nt40.params().freq;
    let end = SimTime::ZERO + freq.ms(600);

    let mut straight = build(OsProfile::Nt40.params(), None, &inputs);
    straight.run_until(end);
    let want = observe(&straight);

    let mut m = build(OsProfile::Nt40.params(), None, &inputs);
    m.run_until(SimTime::ZERO + freq.ms(150));
    let snap = m.snapshot();
    assert_eq!(snap.now(), SimTime::ZERO + freq.ms(150));
    assert!(snap.pending_events() > 0);
    assert_eq!(snap.process_count(), 1);
    assert!(snap.state_footprint() > std::mem::size_of::<Machine>());

    // The restored machine finishes identically...
    let mut restored = Machine::restore(&snap);
    restored.run_until(end);
    assert_eq!(observe(&restored), want);

    // ...and so does the original the snapshot was taken from.
    m.run_until(end);
    assert_eq!(observe(&m), want);
}

#[test]
fn snapshot_restores_repeatedly() {
    let inputs = [40, 90];
    let freq = OsProfile::Win95.params().freq;
    let end = SimTime::ZERO + freq.ms(400);
    let mut m = build(OsProfile::Win95.params(), None, &inputs);
    m.run_until(SimTime::ZERO + freq.ms(65));
    let snap = m.snapshot();
    let mut a = Machine::restore(&snap);
    let mut b = Machine::restore(&snap);
    a.run_until(end);
    b.run_until(end);
    assert_eq!(observe(&a), observe(&b));
}

/// A stamp/API tee recording into a shared vector, so the test keeps a
/// handle after the machine takes ownership of the box.
#[derive(Debug, Clone)]
struct SharedSink(Arc<Mutex<Vec<Record>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, rec: &Record) {
        self.0.lock().unwrap().push(*rec);
    }
}

#[test]
fn restored_sinks_receive_the_exact_suffix() {
    let inputs = [50, 120, 190];
    let freq = OsProfile::Nt351.params().freq;
    let end = SimTime::ZERO + freq.ms(500);

    // Straight run with tees from boot: the reference streams.
    let full_stamps = Arc::new(Mutex::new(Vec::new()));
    let full_api = Arc::new(Mutex::new(Vec::new()));
    let mut straight = build(OsProfile::Nt351.params(), None, &inputs);
    straight.set_stamp_sink(Box::new(SharedSink(full_stamps.clone())));
    straight.set_api_sink(Box::new(SharedSink(full_api.clone())));
    straight.run_until(end);

    // Same build, snapshot mid-run, restore with fresh tees.
    let mut m = build(OsProfile::Nt351.params(), None, &inputs);
    m.set_stamp_sink(Box::new(SharedSink(Arc::new(Mutex::new(Vec::new())))));
    m.set_api_sink(Box::new(SharedSink(Arc::new(Mutex::new(Vec::new())))));
    m.run_until(SimTime::ZERO + freq.ms(140));
    let snap = m.snapshot();
    let (stamp_pos, api_pos) = snap.sink_records();

    let tail_stamps = Arc::new(Mutex::new(Vec::new()));
    let tail_api = Arc::new(Mutex::new(Vec::new()));
    let mut restored = Machine::restore(&snap);
    restored.set_stamp_sink(Box::new(SharedSink(tail_stamps.clone())));
    restored.set_api_sink(Box::new(SharedSink(tail_api.clone())));
    restored.run_until(end);

    let full_stamps = full_stamps.lock().unwrap();
    let full_api = full_api.lock().unwrap();
    assert_eq!(
        full_stamps[stamp_pos as usize..],
        tail_stamps.lock().unwrap()[..],
        "stamp stream suffix"
    );
    assert_eq!(
        full_api[api_pos as usize..],
        tail_api.lock().unwrap()[..],
        "api stream suffix"
    );
}

#[test]
fn watermarks_track_first_reads() {
    let mut m = build(OsProfile::Nt40.params(), None, &[80]);
    // Boot: only the cache size has been consulted.
    assert_eq!(
        m.param_watermarks().get(SweptParam::CacheBlocks),
        Some(SimTime::ZERO)
    );
    assert!(m
        .param_watermarks()
        .get(SweptParam::InputDispatchInstr)
        .is_none());
    let freq = m.params().freq;
    // Before the input lands, the dispatch path is still unread; the
    // GetMessage the worker blocked in has read the crossing/GUI costs.
    m.run_until(SimTime::ZERO + freq.ms(40));
    let early = m.snapshot();
    assert!(early.param_unread(SweptParam::InputDispatchInstr));
    assert!(early.param_unread(SweptParam::GdiBatchSize));
    assert!(early.param_unread(SweptParam::WriteOverheadMilli));
    assert!(!early.param_unread(SweptParam::CrossingInstr));
    assert!(!early.param_unread(SweptParam::GuiPathMilli));
    assert!(!early.param_unread(SweptParam::CacheBlocks));
    // After the input is handled end-to-end every parameter has been read.
    m.run_until(SimTime::ZERO + freq.ms(400));
    let late = m.snapshot();
    for p in SweptParam::ALL {
        assert!(
            !late.param_unread(p),
            "{} read by the full scenario",
            p.name()
        );
    }
    // Watermarks are conservative-early: each recorded stamp is at or
    // before the time of the snapshot that first observed the read.
    for p in SweptParam::ALL {
        let w = m.param_watermarks().get(p).unwrap();
        assert!(w <= m.now());
    }
}

#[test]
fn forked_param_edit_matches_scratch_boot() {
    let inputs = [150, 220];
    let stock = OsProfile::Nt40.params();
    let freq = stock.freq;
    let end = SimTime::ZERO + freq.ms(600);
    let swept = SweptParam::InputDispatchInstr;
    let value = swept.stock(OsProfile::Nt40) * 5;

    // Scratch reference: the parameter changed from boot.
    let mut params = stock.clone();
    swept.apply(&mut params, value);
    let mut scratch = build(params, None, &inputs);
    scratch.run_until(end);

    // Fork: shared prefix to 100 ms (before the first input, so the
    // dispatch cost is provably unread), then edit and continue.
    let mut m = build(stock, None, &inputs);
    m.run_until(SimTime::ZERO + freq.ms(100));
    let snap = m.snapshot();
    assert!(snap.param_unread(swept), "fork must be provably sound");
    let mut forked = Machine::restore(&snap);
    forked.apply_param(swept, value);
    forked.run_until(end);

    assert_eq!(observe(&forked), observe(&scratch));
}

/// Fault plans for the property test, selected by index (0 = none).
fn fault_plan(sel: u8, seed: u64) -> Option<FaultPlan> {
    match sel % 4 {
        1 => Some(FaultPlan::single(
            seed,
            FaultKind::InputChaos {
                drop_permille: 200,
                dup_permille: 250,
            },
        )),
        2 => Some(FaultPlan::single(
            seed,
            FaultKind::DiskFault {
                delay_ms: 2,
                error_permille: 300,
            },
        )),
        3 => Some(FaultPlan::single(
            seed,
            FaultKind::SchedJitter {
                rate_permille: 300,
                max_instr: 40_000,
            },
        )),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Snapshot at an arbitrary instant of an arbitrary scenario
    /// (including ambient fault plans), restore, run to completion: every
    /// observable — ground-truth latencies, counters, fault statistics,
    /// machine stats, cache state, trace record counts — matches the
    /// straight run bit for bit.
    #[test]
    fn snapshot_restore_is_transparent(
        gaps in prop::collection::vec(20u64..120, 1..6),
        split_ms in 1u64..500,
        fault_sel in 0u8..4,
        seed in any::<u64>(),
    ) {
        let mut input_ms = Vec::new();
        let mut t = 0;
        for g in gaps {
            t += g;
            input_ms.push(t);
        }
        let end_ms = t + 400;
        let plan = fault_plan(fault_sel, seed);
        let params = OsProfile::Nt40.params();
        let freq = params.freq;
        let end = SimTime::ZERO + freq.ms(end_ms);

        let mut straight = build(params.clone(), plan.as_ref(), &input_ms);
        straight.run_until(end);
        let want = observe(&straight);

        let mut m = build(params, plan.as_ref(), &input_ms);
        m.run_until(SimTime::ZERO + freq.ms(split_ms.min(end_ms)));
        let snap = m.snapshot();
        let mut restored = Machine::restore(&snap);
        restored.run_until(end);
        prop_assert_eq!(observe(&restored), want);
    }
}
