//! Property-based tests of OS substrate invariants.

use proptest::prelude::*;

use latlab_des::SimTime;
use latlab_hw::disk::BLOCK_SIZE;
use latlab_os::fs::Fs;
use latlab_os::msgq::{Message, MessageQueue};
use latlab_os::program::{Priority, ThreadId};
use latlab_os::sched::Scheduler;

proptest! {
    /// Files never overlap on disk and every byte of every file maps to
    /// exactly one disk block, regardless of sizes and fragmentation.
    #[test]
    fn fs_allocations_disjoint(
        files in prop::collection::vec((1u64..64, 1u64..8), 1..12)
    ) {
        let mut fs = Fs::new();
        let names: Vec<&'static str> = (0..files.len())
            .map(|i| &*Box::leak(format!("f{i}").into_boxed_str()))
            .collect();
        let mut handles = Vec::new();
        for (i, &(blocks, frag)) in files.iter().enumerate() {
            handles.push((fs.create(names[i], blocks * BLOCK_SIZE, frag), blocks));
        }
        let mut seen = std::collections::HashSet::new();
        for &(id, blocks) in &handles {
            let runs = fs.map_range(id, 0, blocks * BLOCK_SIZE);
            let mapped: u64 = runs.iter().map(|(_, r)| r.count).sum();
            prop_assert_eq!(mapped, blocks, "every block mapped once");
            for (_, run) in runs {
                for b in run.start..run.start + run.count {
                    prop_assert!(seen.insert(b), "block {} double-allocated", b);
                }
            }
        }
    }

    /// Sub-range mapping is consistent with whole-file mapping.
    #[test]
    fn fs_subrange_consistent(
        blocks in 2u64..64,
        frag in 1u64..8,
        start_frac in 0u64..100,
        len_frac in 1u64..100,
    ) {
        let mut fs = Fs::new();
        let id = fs.create("f", blocks * BLOCK_SIZE, frag);
        let size = blocks * BLOCK_SIZE;
        let offset = size * start_frac / 100;
        let len = ((size - offset) * len_frac / 100).max(1);
        let whole: Vec<u64> = fs
            .map_range(id, 0, size)
            .into_iter()
            .flat_map(|(fb, run)| (0..run.count).map(move |i| (fb + i, run.start + i)))
            .map(|(fb, db)| db.wrapping_sub(fb)) // per-block offset signature
            .collect();
        let _ = whole;
        let sub = fs.map_range(id, offset, len);
        let first_block = offset / BLOCK_SIZE;
        let last_block = (offset + len - 1) / BLOCK_SIZE;
        let mapped: u64 = sub.iter().map(|(_, r)| r.count).sum();
        prop_assert_eq!(mapped, last_block - first_block + 1);
        prop_assert_eq!(sub.first().map(|&(fb, _)| fb), Some(first_block));
    }

    /// The scheduler never loses or duplicates a thread.
    #[test]
    fn scheduler_conserves_threads(
        ops in prop::collection::vec((0u32..16, 0u8..3), 1..200)
    ) {
        let mut sched = Scheduler::new();
        let mut queued = std::collections::HashSet::new();
        for &(tid, op) in &ops {
            let tid = ThreadId(tid);
            match op {
                0 if !queued.contains(&tid) => {
                    sched.enqueue(tid, Priority(u8::from(tid.0.is_multiple_of(5)) * 8 + 1));
                    queued.insert(tid);
                }
                1 if !queued.contains(&tid) => {
                    sched.enqueue_front(tid, Priority(3));
                    queued.insert(tid);
                }
                2 => {
                    if let Some((popped, _)) = sched.pop_highest() {
                        prop_assert!(queued.remove(&popped), "popped unqueued thread");
                    }
                }
                _ => {}
            }
            prop_assert_eq!(sched.ready_count(), queued.len());
        }
        // Drain: everything queued comes out exactly once.
        while let Some((tid, _)) = sched.pop_highest() {
            prop_assert!(queued.remove(&tid));
        }
        prop_assert!(queued.is_empty());
    }

    /// Message queues preserve FIFO order and never exceed capacity.
    #[test]
    fn message_queue_fifo_and_bounded(
        capacity in 1usize..64,
        posts in prop::collection::vec(0u32..1_000, 0..200),
    ) {
        let mut q = MessageQueue::with_capacity(capacity);
        let mut accepted = Vec::new();
        for &p in &posts {
            if q.post(Message::User(p)) {
                accepted.push(p);
            }
            prop_assert!(q.len() <= capacity);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.take()).map(|m| match m {
            Message::User(p) => p,
            other => panic!("unexpected {other:?}"),
        }).collect();
        prop_assert_eq!(drained, accepted);
        prop_assert_eq!(q.dropped() as usize, posts.len() - q.total_enqueued() as usize);
    }
}

// Determinism across arbitrary (but identical) input schedules.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn machine_is_deterministic(offsets in prop::collection::vec(1u64..200, 1..12)) {
        use latlab_os::{InputKind, KeySym, Machine, OsProfile, ProcessSpec};
        use latlab_os::{Action, ApiCall, ApiReply, ComputeSpec, Program, StepCtx};

        #[derive(Clone)]

        struct Echo(bool);
        impl Program for Echo {
            fn step(&mut self, ctx: &mut StepCtx) -> Action {
                if self.0 {
                    self.0 = false;
                    if let ApiReply::Message(Some(_)) = ctx.reply {
                        return Action::Compute(ComputeSpec::app(150_000));
                    }
                }
                self.0 = true;
                Action::Call(ApiCall::GetMessage)
            }
        }
        let run = |offsets: &[u64]| -> Vec<u64> {
            let mut m = Machine::new(OsProfile::Nt351.params());
            let tid = m.spawn(ProcessSpec::app("echo"), Box::new(Echo(false)));
            m.set_focus(tid);
            let freq = m.params().freq;
            let mut t = 0u64;
            for &o in offsets {
                t += o;
                m.schedule_input_at(SimTime::ZERO + freq.ms(t), InputKind::Key(KeySym::Char('q')));
            }
            m.run_until(SimTime::ZERO + freq.ms(t + 500));
            m.ground_truth()
                .events()
                .iter()
                .map(|e| e.true_latency().map(|d| d.cycles()).unwrap_or(0))
                .collect()
        };
        prop_assert_eq!(run(&offsets), run(&offsets));
    }
}
