//! Fault-injection behaviour of the kernel: determinism, latency impact,
//! window gating, and input chaos semantics.

use latlab_des::{SimDuration, SimTime};
use latlab_os::{
    Action, ApiCall, ApiReply, ComputeSpec, FaultPlan, InputKind, KeySym, Machine, OsProfile,
    ProcessSpec, Program, StepCtx,
};

fn ms(n: u64) -> SimDuration {
    latlab_des::CpuFreq::PENTIUM_100.ms(n)
}

fn at_ms(n: u64) -> SimTime {
    SimTime::ZERO + ms(n)
}

/// A minimal interactive app: waits for a message, computes, repeats.
#[derive(Clone)]
struct EchoLoop {
    work_instr: u64,
    handled: u64,
    awaiting_reply: bool,
}

impl Program for EchoLoop {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        if self.awaiting_reply {
            self.awaiting_reply = false;
            if let ApiReply::Message(Some(_)) = ctx.reply {
                self.handled += 1;
                return Action::Compute(ComputeSpec::app(self.work_instr));
            }
        }
        self.awaiting_reply = true;
        Action::Call(ApiCall::GetMessage)
    }

    fn name(&self) -> &'static str {
        "echo-loop"
    }
}

/// Runs ten keystrokes against an echo app under `plan`, returning the
/// per-event true latencies (cycles; None = never completed) and the
/// machine for stats inspection.
fn run_keystrokes(plan: Option<&FaultPlan>) -> (Vec<Option<u64>>, Machine) {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(
        ProcessSpec::app("echo"),
        Box::new(EchoLoop {
            work_instr: 400_000,
            handled: 0,
            awaiting_reply: false,
        }),
    );
    m.set_focus(app);
    if let Some(plan) = plan {
        m.install_faults(plan);
    }
    let ids: Vec<u64> = (0..10)
        .map(|i| m.schedule_input_at(at_ms(50 + i * 97), InputKind::Key(KeySym::Char('x'))))
        .collect();
    m.run_until(at_ms(2_000));
    let lats = ids
        .iter()
        .map(|&id| {
            m.ground_truth()
                .event(id)
                .unwrap()
                .true_latency()
                .map(|d| d.cycles())
        })
        .collect();
    (lats, m)
}

#[test]
fn same_plan_replays_identically() {
    let plan = FaultPlan::parse("seed=9;storm:period=300;jitter;input:drop=200,dup=300").unwrap();
    let (a, ma) = run_keystrokes(Some(&plan));
    let (b, mb) = run_keystrokes(Some(&plan));
    assert_eq!(a, b, "same plan + same seed must replay bit-identically");
    assert_eq!(ma.now(), mb.now());
    assert_eq!(ma.fault_stats(), mb.fault_stats());
    assert!(ma.fault_stats().unwrap().total_injections() > 0);
}

#[test]
fn different_seeds_diverge() {
    let pa = FaultPlan::parse("seed=1;input:drop=500").unwrap();
    let pb = FaultPlan::parse("seed=2;input:drop=500").unwrap();
    let (a, _) = run_keystrokes(Some(&pa));
    let (b, _) = run_keystrokes(Some(&pb));
    assert_ne!(a, b, "different seeds should drop different inputs");
}

#[test]
fn interrupt_storm_slows_event_handling() {
    let (clean, _) = run_keystrokes(None);
    let plan = FaultPlan::parse("storm:period=200,instr=20000").unwrap();
    let (stormy, m) = run_keystrokes(Some(&plan));
    let stats = m.fault_stats().unwrap();
    assert!(stats.storm_interrupts > 100, "storm fired: {stats:?}");
    let sum = |v: &[Option<u64>]| v.iter().map(|l| l.unwrap()).sum::<u64>();
    assert!(
        sum(&stormy) > sum(&clean),
        "storm must add handling latency: {} vs {}",
        sum(&stormy),
        sum(&clean)
    );
}

#[test]
fn window_gates_injection() {
    // Storm armed only after the workload is over: nothing fires inside it.
    let plan = FaultPlan::parse("storm:start=100000").unwrap();
    let (lats, m) = run_keystrokes(Some(&plan));
    assert_eq!(m.fault_stats().unwrap().storm_interrupts, 0);
    let (clean, _) = run_keystrokes(None);
    assert_eq!(lats, clean, "out-of-window fault must be a no-op");
}

#[test]
fn dropped_inputs_never_complete() {
    let plan = FaultPlan::parse("input:drop=1000,dup=0").unwrap();
    let (lats, m) = run_keystrokes(Some(&plan));
    assert_eq!(m.fault_stats().unwrap().inputs_dropped, 10);
    assert!(
        lats.iter().all(Option::is_none),
        "dropped inputs must never complete: {lats:?}"
    );
}

#[test]
fn duplicated_inputs_complete_normally() {
    let plan = FaultPlan::parse("input:drop=0,dup=1000").unwrap();
    let (lats, m) = run_keystrokes(Some(&plan));
    let stats = m.fault_stats().unwrap();
    assert_eq!(stats.inputs_duplicated, 10);
    assert_eq!(stats.inputs_dropped, 0);
    assert!(
        lats.iter().all(Option::is_some),
        "original inputs still complete: {lats:?}"
    );
}

#[test]
fn jitter_only_perturbs_within_rate() {
    let plan = FaultPlan::parse("jitter:rate=1000,instr=100000").unwrap();
    let (_, m) = run_keystrokes(Some(&plan));
    let stats = m.fault_stats().unwrap();
    assert!(stats.sched_delays > 0, "every switch jitters: {stats:?}");
    let zero = FaultPlan::parse("jitter:rate=0").unwrap();
    let (lats, m) = run_keystrokes(Some(&zero));
    assert_eq!(m.fault_stats().unwrap().sched_delays, 0);
    let (clean, _) = run_keystrokes(None);
    assert_eq!(lats, clean, "rate=0 jitter must be a no-op");
}
