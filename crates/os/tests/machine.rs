//! End-to-end tests of the simulated machine: input pipeline, message loop,
//! scheduling, sleep alignment, disk I/O and the Windows 95 quirks.

use latlab_des::{SimDuration, SimTime};
use latlab_os::{
    Action, ApiCall, ApiReply, ComputeSpec, InputKind, KeySym, Machine, Message, MouseButton,
    OsProfile, Priority, ProcessSpec, Program, StepCtx,
};

fn ms(n: u64) -> SimDuration {
    latlab_des::CpuFreq::PENTIUM_100.ms(n)
}

fn at_ms(n: u64) -> SimTime {
    SimTime::ZERO + ms(n)
}

/// A minimal interactive app: waits for a message, computes `work_instr`,
/// and goes back to waiting.
#[derive(Clone)]
struct EchoLoop {
    work_instr: u64,
    handled: u64,
    awaiting_reply: bool,
}

impl EchoLoop {
    fn new(work_instr: u64) -> Self {
        EchoLoop {
            work_instr,
            handled: 0,
            awaiting_reply: false,
        }
    }
}

impl Program for EchoLoop {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        if self.awaiting_reply {
            self.awaiting_reply = false;
            if let ApiReply::Message(Some(_)) = ctx.reply {
                self.handled += 1;
                return Action::Compute(ComputeSpec::app(self.work_instr));
            }
        }
        self.awaiting_reply = true;
        Action::Call(ApiCall::GetMessage)
    }

    fn name(&self) -> &'static str {
        "echo-loop"
    }
}

/// A low-priority busy loop standing in for the measurement idle process.
#[derive(Clone)]
struct BusyLoop;

impl Program for BusyLoop {
    fn step(&mut self, _ctx: &mut StepCtx) -> Action {
        Action::Compute(ComputeSpec::app(100_000))
    }

    fn name(&self) -> &'static str {
        "busy-loop"
    }
}

#[test]
fn keystroke_flows_through_pipeline() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(500_000)));
    m.set_focus(app);
    let id = m.schedule_input_at(at_ms(50), InputKind::Key(KeySym::Char('a')));
    m.run_until(at_ms(200));
    let gt = m.ground_truth();
    let e = gt.event(id).expect("event recorded");
    assert_eq!(e.arrived, at_ms(50));
    assert!(e.enqueued.is_some(), "message was enqueued");
    assert!(e.retrieved.is_some(), "message was retrieved");
    assert!(e.completed.is_some(), "handling completed");
    let latency = m.params().freq.to_ms(e.true_latency().unwrap());
    // 500k instructions of app work ≈ 6 ms plus the input pipeline.
    assert!(
        latency > 5.0 && latency < 20.0,
        "latency {latency} ms out of expected band"
    );
    // Pre-application time (interrupt + dispatch + wake) is non-trivial but
    // well under the total — this is the §2.3 "lost" prefix.
    let pre = m.params().freq.to_ms(e.pre_application().unwrap());
    assert!(pre > 0.1 && pre < latency / 2.0, "pre-app {pre} ms");
}

#[test]
fn events_ordered_and_latencies_consistent() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(200_000)));
    m.set_focus(app);
    let mut ids = Vec::new();
    for i in 0..10 {
        ids.push(m.schedule_input_at(at_ms(20 + i * 150), InputKind::Key(KeySym::Char('x'))));
    }
    m.run_until(at_ms(2_000));
    for id in ids {
        let e = m.ground_truth().event(id).unwrap();
        let lat = e.true_latency().expect("completed");
        assert!(lat >= e.pre_application().unwrap());
        assert!(e.retrieved.unwrap() >= e.enqueued.unwrap());
        assert!(e.enqueued.unwrap() >= e.arrived);
    }
}

#[test]
fn clock_ticks_fire_every_10ms() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.run_until(at_ms(1_000));
    // 1 second / 10 ms = 100 ticks (the tick at t=1s may or may not have
    // been processed depending on boundary handling).
    let ticks = m.stats().clock_ticks;
    assert!(
        (99..=101).contains(&ticks),
        "expected ~100 ticks, got {ticks}"
    );
}

#[test]
fn busy_intervals_reflect_real_work_only() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    // The measurement-priority thread must not count as busy.
    m.spawn(
        ProcessSpec::app("idleloop").with_priority(Priority::MEASUREMENT),
        Box::new(BusyLoop),
    );
    m.run_until(at_ms(500));
    let busy = m.ground_truth().busy_within(SimTime::ZERO, at_ms(500));
    let busy_ms = m.params().freq.to_ms(busy);
    // Only clock interrupts (~0.4% util) should register.
    assert!(
        busy_ms < 10.0,
        "idle system shows {busy_ms} ms busy in 500 ms"
    );
    assert!(busy_ms > 0.1, "clock interrupts should register as busy");
}

#[test]
fn sleep_wakes_on_tick_boundaries() {
    #[derive(Clone)]
    struct Sleeper {
        phase: u8,
        wake_time: Option<u64>,
    }
    impl Program for Sleeper {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Action::Call(ApiCall::Sleep { duration: ms(3) })
                }
                1 => {
                    self.phase = 2;
                    Action::Call(ApiCall::ReadCycleCounter)
                }
                2 => {
                    if let ApiReply::Cycles(c) = ctx.reply {
                        self.wake_time = Some(c);
                    }
                    self.phase = 3;
                    Action::Call(ApiCall::Emit(self.wake_time.unwrap()))
                }
                _ => Action::Exit,
            }
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    let tid = m.spawn(
        ProcessSpec::app("sleeper"),
        Box::new(Sleeper {
            phase: 0,
            wake_time: None,
        }),
    );
    m.run_until(at_ms(100));
    let emitted = m.take_emitted(tid);
    assert_eq!(emitted.len(), 1);
    // Slept 3 ms from ~t=0 → woken at the 10 ms tick (plus handler time).
    let wake_ms = emitted[0] as f64 / 100_000.0;
    assert!(
        (10.0..11.5).contains(&wake_ms),
        "woke at {wake_ms} ms, expected just after the 10 ms tick"
    );
}

#[test]
fn cold_read_blocks_for_disk_and_warm_read_does_not() {
    #[derive(Clone)]
    struct Reader {
        phase: u8,
        file: Option<latlab_os::FileId>,
        times: Vec<u64>,
    }
    impl Program for Reader {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            if let ApiReply::Cycles(c) = ctx.reply {
                self.times.push(c);
            }
            if let ApiReply::File(f) = ctx.reply {
                self.file = Some(f);
            }
            let phase = self.phase;
            self.phase += 1;
            match phase {
                0 => Action::Call(ApiCall::OpenFile { name: "data.bin" }),
                // Timestamp, read (cold), timestamp, read (warm), timestamp.
                1 | 3 | 5 => Action::Call(ApiCall::ReadCycleCounter),
                2 | 4 => Action::Call(ApiCall::ReadFile {
                    file: self.file.unwrap(),
                    offset: 0,
                    len: 256 * 1024,
                }),
                6 => Action::Call(ApiCall::Emit(self.times[1] - self.times[0])),
                7 => Action::Call(ApiCall::Emit(self.times[2] - self.times[1])),
                _ => Action::Exit,
            }
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.register_file("data.bin", 256 * 1024, 16);
    let tid = m.spawn(
        ProcessSpec::app("reader"),
        Box::new(Reader {
            phase: 0,
            file: None,
            times: Vec::new(),
        }),
    );
    m.run_until(at_ms(3_000));
    let emitted = m.take_emitted(tid);
    assert_eq!(emitted.len(), 2, "expected two read timings");
    let cold_ms = emitted[0] as f64 / 100_000.0;
    let warm_ms = emitted[1] as f64 / 100_000.0;
    assert!(cold_ms > 50.0, "cold 256 KB read took only {cold_ms} ms");
    assert!(
        warm_ms < cold_ms / 5.0,
        "warm read {warm_ms} ms not much faster than cold {cold_ms} ms"
    );
    let (hits, misses) = m.cache_stats();
    assert!(hits >= 64, "second read should hit the cache ({hits} hits)");
    assert!(misses >= 64);
}

#[test]
fn win95_mouse_click_busy_waits_for_press_duration() {
    let mut m = Machine::new(OsProfile::Win95.params());
    let app = m.spawn(ProcessSpec::app("shell"), Box::new(EchoLoop::new(50_000)));
    m.set_focus(app);
    let down = m.schedule_input_at(at_ms(100), InputKind::MouseDown(MouseButton::Left));
    let _up = m.schedule_input_at(at_ms(250), InputKind::MouseUp(MouseButton::Left));
    m.run_until(at_ms(600));
    // The whole 150 ms press shows as CPU-busy (the system busy-waits, §4).
    let busy = m.ground_truth().busy_within(at_ms(110), at_ms(240));
    let busy_ms = m.params().freq.to_ms(busy);
    assert!(
        busy_ms > 120.0,
        "Windows 95 should busy-wait during the press, saw {busy_ms} ms"
    );
    // The mouse-down event's true latency spans the press.
    let e = m.ground_truth().event(down).unwrap();
    let lat = m.params().freq.to_ms(e.true_latency().unwrap());
    assert!(lat > 150.0, "mouse-down latency {lat} ms should span press");

    // NT 4.0 does not busy-wait.
    let mut nt = Machine::new(OsProfile::Nt40.params());
    let app = nt.spawn(ProcessSpec::app("shell"), Box::new(EchoLoop::new(50_000)));
    nt.set_focus(app);
    nt.schedule_input_at(at_ms(100), InputKind::MouseDown(MouseButton::Left));
    nt.schedule_input_at(at_ms(250), InputKind::MouseUp(MouseButton::Left));
    nt.run_until(at_ms(600));
    let busy = nt.ground_truth().busy_within(at_ms(110), at_ms(240));
    assert!(nt.params().freq.to_ms(busy) < 20.0);
}

#[test]
fn win95_background_activity_exceeds_nt() {
    let mut w95 = Machine::new(OsProfile::Win95.params());
    let mut nt = Machine::new(OsProfile::Nt40.params());
    w95.run_until(at_ms(2_000));
    nt.run_until(at_ms(2_000));
    let b95 = w95
        .ground_truth()
        .busy_within(SimTime::ZERO, at_ms(2_000))
        .cycles();
    let bnt = nt
        .ground_truth()
        .busy_within(SimTime::ZERO, at_ms(2_000))
        .cycles();
    assert!(
        b95 > bnt * 2,
        "Windows 95 idle activity ({b95} cy) should well exceed NT ({bnt} cy)"
    );
}

#[test]
fn test_driver_queuesync_reaches_app() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(100_000)));
    m.set_focus(app);
    m.schedule_input_at(at_ms(50), InputKind::Key(KeySym::Char('a')));
    m.schedule_post_to_focus(at_ms(51), Message::QueueSync);
    m.run_until(at_ms(300));
    let retrieved: Vec<_> = m
        .apilog()
        .for_thread(app)
        .filter_map(|e| e.retrieved())
        .collect();
    assert_eq!(
        retrieved.len(),
        2,
        "input + QueueSync retrieved: {retrieved:?}"
    );
    assert!(matches!(retrieved[1], Message::QueueSync));
}

#[test]
fn quiescence_detection() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(300_000)));
    m.set_focus(app);
    m.schedule_input_at(at_ms(10), InputKind::Key(KeySym::Char('a')));
    assert!(!m.is_quiescent(), "input outstanding");
    assert!(m.run_until_quiescent(at_ms(1_000)));
    assert!(m.is_quiescent());
}

#[test]
fn counter_hooks_work_through_machine() {
    use latlab_hw::{CounterId, HwEvent};
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.configure_counter(CounterId::Ctr0, HwEvent::HardwareInterrupts)
        .unwrap();
    m.run_until(at_ms(200));
    let interrupts = m.read_counter(CounterId::Ctr0).unwrap();
    // ~20 clock ticks in 200 ms.
    assert!(
        (19..=21).contains(&interrupts),
        "expected ~20 interrupts, got {interrupts}"
    );
    assert_eq!(m.read_cycle_counter(), m.now().cycles());
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut m = Machine::new(OsProfile::Nt351.params());
        let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(250_000)));
        m.set_focus(app);
        for i in 0..5 {
            m.schedule_input_at(at_ms(20 + i * 100), InputKind::Key(KeySym::Char('q')));
        }
        m.run_until(at_ms(1_000));
        let lat: Vec<u64> = m
            .ground_truth()
            .events()
            .iter()
            .map(|e| e.true_latency().unwrap().cycles())
            .collect();
        (lat, m.stats().context_switches, m.read_cycle_counter())
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "no such file")]
fn open_missing_file_panics() {
    #[derive(Clone)]
    struct Opener;
    impl Program for Opener {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            Action::Call(ApiCall::OpenFile { name: "missing" })
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.spawn(ProcessSpec::app("opener"), Box::new(Opener));
    m.run_until(at_ms(10));
}

#[test]
#[should_panic(expected = "runaway")]
fn runaway_program_detected() {
    #[derive(Clone)]
    struct Runaway;
    impl Program for Runaway {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            Action::Compute(ComputeSpec::app(0))
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.spawn(ProcessSpec::app("runaway"), Box::new(Runaway));
    m.run_until(at_ms(10));
}

#[test]
fn async_io_completes_via_message_without_blocking() {
    use latlab_os::{IoKind, Transition};

    #[derive(Clone)]

    struct AsyncReader {
        phase: u8,
        file: Option<latlab_os::FileId>,
        got_completion: bool,
        compute_done_at: Option<u64>,
        completion_at: Option<u64>,
    }
    impl Program for AsyncReader {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            if let ApiReply::File(f) = ctx.reply {
                self.file = Some(f);
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    Action::Call(ApiCall::OpenFile { name: "bg.bin" })
                }
                1 => {
                    self.phase = 2;
                    Action::Call(ApiCall::ReadFileAsync {
                        file: self.file.unwrap(),
                        offset: 0,
                        len: 128 * 1024,
                        token: 7,
                    })
                }
                2 => {
                    // The thread keeps computing while the disk works.
                    self.phase = 3;
                    Action::Compute(ComputeSpec::app(500_000))
                }
                3 => {
                    self.phase = 4;
                    Action::Call(ApiCall::ReadCycleCounter)
                }
                4 => {
                    if let ApiReply::Cycles(c) = ctx.reply {
                        self.compute_done_at = Some(c);
                    }
                    self.phase = 5;
                    Action::Call(ApiCall::GetMessage)
                }
                5 => {
                    if let ApiReply::Message(Some(Message::IoComplete(7))) = ctx.reply {
                        self.got_completion = true;
                        self.phase = 6;
                        return Action::Call(ApiCall::ReadCycleCounter);
                    }
                    Action::Call(ApiCall::GetMessage)
                }
                6 => {
                    if let ApiReply::Cycles(c) = ctx.reply {
                        self.completion_at = Some(c);
                    }
                    self.phase = 7;
                    Action::Call(ApiCall::Emit(
                        ((self.got_completion as u64) << 62)
                            | (self.completion_at.unwrap() - self.compute_done_at.unwrap()),
                    ))
                }
                _ => Action::Exit,
            }
        }
    }

    let mut m = Machine::new(OsProfile::Nt40.params());
    m.register_file("bg.bin", 256 * 1024, 8);
    let tid = m.spawn(
        ProcessSpec::app("asyncreader"),
        Box::new(AsyncReader {
            phase: 0,
            file: None,
            got_completion: false,
            compute_done_at: None,
            completion_at: None,
        }),
    );
    m.run_until(at_ms(2_000));
    let emitted = m.take_emitted(tid);
    assert_eq!(emitted.len(), 1);
    assert!(emitted[0] >> 62 == 1, "completion message received");
    // The compute overlapped the disk transfer: the thread finished its
    // 500k instructions (~6 ms) while the ~60+ ms read was in flight, then
    // blocked until the completion message arrived.
    let wait_ms = (emitted[0] & ((1 << 62) - 1)) as f64 / 100_000.0;
    assert!(
        wait_ms > 10.0,
        "completion should arrive well after compute finished ({wait_ms} ms)"
    );
    // The kernel logged the issue/complete transitions with the right kind.
    let async_issues = m
        .state_log()
        .records()
        .iter()
        .filter(|r| {
            matches!(
                r.transition,
                Transition::IoIssued {
                    kind: IoKind::AsyncRead,
                    ..
                }
            )
        })
        .count();
    assert_eq!(async_issues, 1);
    assert!(!m.sync_io_pending());
}

#[test]
fn state_log_records_queue_transitions() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(ProcessSpec::app("echo"), Box::new(EchoLoop::new(100_000)));
    m.set_focus(app);
    m.schedule_input_at(at_ms(50), InputKind::Key(KeySym::Char('a')));
    m.run_until(at_ms(300));
    let replay = m.state_log().replay_thread(app);
    assert!(!replay.is_empty());
    // Queue went 1 (enqueue) then 0 (dequeue); no I/O.
    assert!(replay.iter().any(|&(_, q, _)| q == 1));
    assert_eq!(replay.last().unwrap().1, 0);
    assert!(replay.iter().all(|&(_, _, io)| io == 0));
}

#[test]
fn focus_change_reroutes_input() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    let a = m.spawn(ProcessSpec::app("app-a"), Box::new(EchoLoop::new(100_000)));
    let b = m.spawn(ProcessSpec::app("app-b"), Box::new(EchoLoop::new(100_000)));
    m.set_focus(a);
    let for_a = m.schedule_input_at(at_ms(50), InputKind::Key(KeySym::Char('a')));
    m.schedule_focus_change(at_ms(100), b);
    let for_b = m.schedule_input_at(at_ms(150), InputKind::Key(KeySym::Char('b')));
    m.run_until(at_ms(400));
    assert_eq!(m.focused(), Some(b));
    let gt = m.ground_truth();
    assert_eq!(gt.event(for_a).unwrap().handler, Some(a));
    assert_eq!(gt.event(for_b).unwrap().handler, Some(b));
    // Both windows saw their focus notifications.
    let a_msgs: Vec<_> = m
        .apilog()
        .for_thread(a)
        .filter_map(|e| e.retrieved())
        .collect();
    assert!(a_msgs.contains(&Message::User(latlab_os::FOCUS_LOST)));
    let b_msgs: Vec<_> = m
        .apilog()
        .for_thread(b)
        .filter_map(|e| e.retrieved())
        .collect();
    assert!(b_msgs.contains(&Message::User(latlab_os::FOCUS_GAINED)));
}

#[test]
fn high_priority_thread_preempts_lower() {
    // A foreground-priority message handler must preempt a long-running
    // normal-priority compute thread immediately, not at its quantum end.
    #[derive(Clone)]
    struct Cruncher;
    impl Program for Cruncher {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            Action::Compute(ComputeSpec::app(100_000_000)) // ~1.2 s
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.spawn(
        ProcessSpec::app("cruncher").with_priority(Priority::NORMAL),
        Box::new(Cruncher),
    );
    let fg = m.spawn(ProcessSpec::app("fg"), Box::new(EchoLoop::new(200_000)));
    m.set_focus(fg);
    let id = m.schedule_input_at(at_ms(100), InputKind::Key(KeySym::Char('x')));
    m.run_until(at_ms(1_000));
    let lat = m
        .ground_truth()
        .event(id)
        .unwrap()
        .true_latency()
        .expect("handled despite background cruncher");
    let lat_ms = m.params().freq.to_ms(lat);
    assert!(
        lat_ms < 20.0,
        "foreground event must preempt the cruncher, took {lat_ms} ms"
    );
}

#[test]
fn round_robin_shares_cpu_between_equal_priorities() {
    #[derive(Clone)]
    struct Spinner;
    impl Program for Spinner {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            Action::Compute(ComputeSpec::app(1_000_000))
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    let a = m.spawn(
        ProcessSpec::app("a").with_priority(Priority::NORMAL),
        Box::new(Spinner),
    );
    let b = m.spawn(
        ProcessSpec::app("b").with_priority(Priority::NORMAL),
        Box::new(Spinner),
    );
    m.run_until(at_ms(2_000));
    let (ca, cb) = (m.thread_cpu_cycles(a), m.thread_cpu_cycles(b));
    let ratio = ca as f64 / cb as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "equal-priority threads should share CPU, got {ca} vs {cb}"
    );
}

#[test]
fn queue_overflow_drops_but_machine_survives() {
    // A slow consumer with a tiny queue under a fast producer: overflowing
    // messages are dropped (with an observable count), handled events still
    // complete, and the machine stays healthy.
    let mut m = Machine::new(OsProfile::Nt40.params());
    let app = m.spawn(
        ProcessSpec::app("slow").with_queue_capacity(4),
        Box::new(EchoLoop::new(5_000_000)), // ~60 ms per message
    );
    m.set_focus(app);
    let mut ids = Vec::new();
    for i in 0..40u64 {
        ids.push(m.schedule_input_at(at_ms(50 + i * 2), InputKind::Key(KeySym::Char('f'))));
    }
    m.run_until(at_ms(3_000));
    let gt = m.ground_truth();
    let enqueued = ids
        .iter()
        .filter(|&&id| gt.event(id).unwrap().enqueued.is_some())
        .count();
    let completed = ids
        .iter()
        .filter(|&&id| gt.event(id).unwrap().completed.is_some())
        .count();
    assert!(
        enqueued < 40,
        "overflow must drop some inputs ({enqueued} accepted)"
    );
    assert!(completed >= 4, "accepted inputs complete ({completed})");
    assert_eq!(completed, enqueued, "every accepted input is handled");
    // The queue stayed within its bound throughout: implied by capacity 4 +
    // the drop accounting; machine is still responsive afterwards.
    let late = m.schedule_input_at(m.now() + ms(50), InputKind::Key(KeySym::Char('z')));
    m.run_until(m.now() + ms(500));
    assert!(m.ground_truth().event(late).unwrap().completed.is_some());
}

#[test]
fn set_timer_fires_periodically_and_kill_timer_stops_it() {
    #[derive(Clone)]
    struct TimerApp {
        started: bool,
        awaiting: bool,
        ticks_seen: u32,
        kill_after: u32,
    }
    impl Program for TimerApp {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            if !self.started {
                self.started = true;
                return Action::Call(ApiCall::SetTimer { period: ms(50) });
            }
            if self.awaiting {
                self.awaiting = false;
                if let ApiReply::Message(Some(Message::Timer)) = ctx.reply {
                    self.ticks_seen += 1;
                    if self.ticks_seen == self.kill_after {
                        return Action::Call(ApiCall::KillTimer);
                    }
                    return Action::Compute(ComputeSpec::app(50_000));
                }
            }
            self.awaiting = true;
            Action::Call(ApiCall::GetMessage)
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    let tid = m.spawn(
        ProcessSpec::app("timerapp"),
        Box::new(TimerApp {
            started: false,
            awaiting: false,
            ticks_seen: 0,
            kill_after: 4,
        }),
    );
    m.set_focus(tid);
    m.run_until(at_ms(2_000));
    // Four timer messages were processed, then the timer was killed: the
    // API log shows exactly four Timer retrievals.
    let timer_msgs = m
        .apilog()
        .for_thread(tid)
        .filter(|e| matches!(e.retrieved(), Some(Message::Timer)))
        .count();
    assert_eq!(timer_msgs, 4, "timer must stop after KillTimer");
}

#[test]
fn app_to_app_post_message() {
    #[derive(Clone)]
    struct Sender {
        target: Option<ThreadIdHolder>,
        sent: bool,
    }
    #[derive(Clone)]
    struct ThreadIdHolder(latlab_os::ThreadId);
    impl Program for Sender {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            if !self.sent {
                self.sent = true;
                return Action::Call(ApiCall::PostMessage {
                    target: self.target.as_ref().unwrap().0,
                    msg: Message::User(0xBEEF),
                });
            }
            Action::Exit
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    let receiver = m.spawn(
        ProcessSpec::app("receiver"),
        Box::new(EchoLoop::new(80_000)),
    );
    m.spawn(
        ProcessSpec::app("sender"),
        Box::new(Sender {
            target: Some(ThreadIdHolder(receiver)),
            sent: false,
        }),
    );
    m.run_until(at_ms(200));
    let got = m
        .apilog()
        .for_thread(receiver)
        .any(|e| matches!(e.retrieved(), Some(Message::User(0xBEEF))));
    assert!(got, "receiver must get the posted user message");
}

#[test]
fn user_call_crossings_cost_more_on_nt351() {
    #[derive(Clone)]
    struct Caller {
        remaining: u32,
        done_at: Option<u64>,
    }
    impl Program for Caller {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            if let ApiReply::Cycles(c) = ctx.reply {
                self.done_at = Some(c);
                return Action::Call(ApiCall::Emit(c));
            }
            if self.remaining > 0 {
                self.remaining -= 1;
                return Action::Call(ApiCall::UserCall { instr: 3_000 });
            }
            if self.done_at.is_none() {
                return Action::Call(ApiCall::ReadCycleCounter);
            }
            Action::Exit
        }
    }
    let run = |profile: OsProfile| -> u64 {
        let mut m = Machine::new(profile.params());
        let tid = m.spawn(
            ProcessSpec::app("caller"),
            Box::new(Caller {
                remaining: 500,
                done_at: None,
            }),
        );
        m.run_until(at_ms(3_000));
        m.take_emitted(tid)[0]
    };
    let nt40 = run(OsProfile::Nt40);
    let nt351 = run(OsProfile::Nt351);
    assert!(
        nt351 as f64 > nt40 as f64 * 1.3,
        "500 synchronous USER calls: NT 3.51 {nt351} cycles vs NT 4.0 {nt40}"
    );
}

#[test]
fn quiescence_holds_when_a_thread_exits_with_queued_messages() {
    #[derive(Clone)]
    struct QuitsEarly;
    impl Program for QuitsEarly {
        fn step(&mut self, _ctx: &mut StepCtx) -> Action {
            Action::Exit
        }
    }
    let mut m = Machine::new(OsProfile::Nt40.params());
    let tid = m.spawn(ProcessSpec::app("quitter"), Box::new(QuitsEarly));
    m.set_focus(tid);
    // The input arrives after the thread has exited; the message stays
    // queued forever, which must not wedge quiescence detection.
    m.schedule_input_at(at_ms(50), InputKind::Key(KeySym::Char('x')));
    assert!(
        m.run_until_quiescent(at_ms(2_000)),
        "an exited thread with undrained messages must still count as quiescent"
    );
}
