//! Idle fast-forward: kernel-level equivalence and wakeup-driven
//! quiescence.
//!
//! The fast-forward engine's contract is bit-identical observables with
//! the step-by-step path: stamps, hardware counters, machine statistics,
//! and the cycle counter itself must not depend on whether idle spans were
//! simulated iteratively or batched. These tests drive a miniature idle
//! loop (mirroring `latlab-core`'s monitor against the raw program ABI)
//! through interactive workloads in both modes and diff everything.

use latlab_des::{SimDuration, SimTime};
use latlab_hw::{CounterId, HwEvent, HwMix};
use latlab_os::{
    Action, ApiCall, ApiReply, ComputeSpec, IdleCycle, InputKind, KeySym, Machine, MixClass,
    OsProfile, Priority, ProcessSpec, Program, StepCtx,
};

fn ms(n: u64) -> SimDuration {
    latlab_des::CpuFreq::PENTIUM_100.ms(n)
}

fn at_ms(n: u64) -> SimTime {
    SimTime::ZERO + ms(n)
}

/// A minimal instrumented idle loop: spin, read the cycle counter, emit
/// the stamp — with a capped trace buffer, like the real monitor.
#[derive(Clone)]
struct MiniIdleLoop {
    n_instr: u64,
    capacity: usize,
    produced: usize,
    phase: u8, // 0 = spin, 1 = read, 2 = store
}

impl MiniIdleLoop {
    fn new(n_instr: u64, capacity: usize) -> Self {
        MiniIdleLoop {
            n_instr,
            capacity,
            produced: 0,
            phase: 0,
        }
    }

    fn spin_spec(&self) -> ComputeSpec {
        ComputeSpec {
            instructions: self.n_instr,
            class: MixClass::Raw(HwMix::IDLE_LOOP),
            code_pages: 1,
            data_pages: 1,
        }
    }
}

impl Program for MiniIdleLoop {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        match self.phase {
            0 => {
                if self.produced >= self.capacity {
                    return Action::Compute(self.spin_spec());
                }
                self.phase = 1;
                Action::Compute(self.spin_spec())
            }
            1 => {
                self.phase = 2;
                Action::Call(ApiCall::ReadCycleCounter)
            }
            _ => {
                let stamp = match ctx.reply {
                    ApiReply::Cycles(c) => c,
                    ref other => panic!("expected cycle counter, got {other:?}"),
                };
                self.produced += 1;
                self.phase = 0;
                Action::Call(ApiCall::Emit(stamp))
            }
        }
    }

    fn idle_cycle(&self) -> Option<IdleCycle> {
        if self.phase != 0 {
            return None;
        }
        let remaining = self.capacity.saturating_sub(self.produced);
        Some(if remaining == 0 {
            IdleCycle {
                spin: self.spin_spec(),
                emits: false,
                max_iterations: u64::MAX,
            }
        } else {
            IdleCycle {
                spin: self.spin_spec(),
                emits: true,
                max_iterations: remaining as u64,
            }
        })
    }

    fn idle_cycle_advance(&mut self, iterations: u64) {
        if self.produced < self.capacity {
            self.produced += iterations as usize;
        }
    }
}

/// An interactive app handling keystrokes with some compute.
#[derive(Clone)]
struct EchoLoop {
    work_instr: u64,
    awaiting_reply: bool,
}

impl Program for EchoLoop {
    fn step(&mut self, ctx: &mut StepCtx) -> Action {
        if self.awaiting_reply {
            self.awaiting_reply = false;
            if let ApiReply::Message(Some(_)) = ctx.reply {
                return Action::Compute(ComputeSpec::app(self.work_instr));
            }
        }
        self.awaiting_reply = true;
        Action::Call(ApiCall::GetMessage)
    }
}

/// Everything a run exposes that the contract covers.
#[derive(PartialEq, Debug)]
struct Observables {
    stamps: Vec<u64>,
    now_cycles: u64,
    interrupts: u64,
    stats: latlab_os::MachineStats,
    latencies: Vec<u64>,
}

fn run_interactive(profile: OsProfile, fast_forward: bool, capacity: usize) -> Observables {
    let mut m = Machine::new(profile.params());
    m.set_fast_forward(fast_forward);
    m.configure_counter(CounterId::Ctr0, HwEvent::HardwareInterrupts)
        .unwrap();
    let monitor = m.spawn(
        ProcessSpec::app("mini-monitor").with_priority(Priority::MEASUREMENT),
        Box::new(MiniIdleLoop::new(250_000, capacity)),
    );
    let app = m.spawn(
        ProcessSpec::app("echo"),
        Box::new(EchoLoop {
            work_instr: 400_000,
            awaiting_reply: false,
        }),
    );
    m.set_focus(app);
    for i in 0..4 {
        m.schedule_input_at(at_ms(30 + i * 120), InputKind::Key(KeySym::Char('x')));
    }
    m.run_until(at_ms(600));
    Observables {
        stamps: m.take_emitted(monitor),
        now_cycles: m.read_cycle_counter(),
        interrupts: m.read_counter(CounterId::Ctr0).unwrap(),
        stats: *m.stats(),
        latencies: m
            .ground_truth()
            .events()
            .iter()
            .map(|e| e.true_latency().unwrap().cycles())
            .collect(),
    }
}

#[test]
fn interactive_run_is_bit_identical_across_modes() {
    for profile in OsProfile::ALL {
        let fast = run_interactive(profile, true, usize::MAX);
        let step = run_interactive(profile, false, usize::MAX);
        assert!(
            fast.stamps.len() > 150,
            "{profile}: expected a stamp every few idle ms, got {}",
            fast.stamps.len()
        );
        assert_eq!(fast, step, "{profile}: observables diverge");
    }
}

#[test]
fn buffer_fill_mid_batch_is_bit_identical() {
    // Capacity small enough to fill inside one fast-forward window, so a
    // single batch crosses the emitting → non-emitting shape change.
    for capacity in [1usize, 7, 50] {
        let fast = run_interactive(OsProfile::Nt40, true, capacity);
        let step = run_interactive(OsProfile::Nt40, false, capacity);
        assert_eq!(fast.stamps.len(), capacity);
        assert_eq!(fast, step, "capacity {capacity}: observables diverge");
    }
}

#[test]
fn fast_forward_defers_to_ready_peers() {
    // A second MEASUREMENT-priority thread shares the priority class, so
    // fast-forward must stay off (round-robin would interleave) — and both
    // modes must still agree.
    let run = |ff: bool| {
        let mut m = Machine::new(OsProfile::Nt40.params());
        m.set_fast_forward(ff);
        let monitor = m.spawn(
            ProcessSpec::app("mini-monitor").with_priority(Priority::MEASUREMENT),
            Box::new(MiniIdleLoop::new(250_000, usize::MAX)),
        );
        #[derive(Clone)]
        struct Busy;
        impl Program for Busy {
            fn step(&mut self, _ctx: &mut StepCtx) -> Action {
                Action::Compute(ComputeSpec::app(50_000))
            }
        }
        m.spawn(
            ProcessSpec::app("peer").with_priority(Priority::MEASUREMENT),
            Box::new(Busy),
        );
        m.run_until(at_ms(100));
        (m.take_emitted(monitor), m.read_cycle_counter())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn quiescence_is_wakeup_driven() {
    // An idle wait for a far-off input must cost O(events) main-loop
    // turns — one per 10 ms clock tick plus dispatches — not O(idle ms).
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.spawn(
        ProcessSpec::app("mini-monitor").with_priority(Priority::MEASUREMENT),
        Box::new(MiniIdleLoop::new(250_000, usize::MAX)),
    );
    let app = m.spawn(
        ProcessSpec::app("echo"),
        Box::new(EchoLoop {
            work_instr: 300_000,
            awaiting_reply: false,
        }),
    );
    m.set_focus(app);
    m.schedule_input_at(at_ms(2_000), InputKind::Key(KeySym::Char('x')));
    assert!(!m.is_quiescent(), "input outstanding");
    assert!(m.run_until_quiescent(at_ms(5_000)));
    // 2 s of idle = 200 clock ticks; each tick costs a handful of loop
    // turns (event, redispatch). The old 1-ms polling grid alone would
    // exceed 2000.
    let turns = m.debug_loop_turns();
    assert!(turns < 1_500, "expected O(events) loop turns, got {turns}");
    // And quiescence is observed at the instant work retires, not on a
    // polling grid: well before the 5 s limit.
    assert!(m.now() < at_ms(2_100));
}

#[test]
fn quiescent_machine_returns_immediately() {
    let mut m = Machine::new(OsProfile::Nt40.params());
    m.spawn(
        ProcessSpec::app("mini-monitor").with_priority(Priority::MEASUREMENT),
        Box::new(MiniIdleLoop::new(250_000, usize::MAX)),
    );
    assert!(m.run_until_quiescent(at_ms(1_000)));
    assert_eq!(m.now(), SimTime::ZERO, "no work: no time may pass");
    assert_eq!(m.debug_loop_turns(), 0);
}
