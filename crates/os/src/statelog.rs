//! Kernel state-transition log: the §6 system support the paper asked for.
//!
//! §2.4: *"Implementation of the full FSM requires additional system support
//! for monitoring I/O and message queue state transitions. Implementation of
//! such monitoring is part of our continuing work at Harvard."* And §6:
//! *"Our measurements could be improved through API calls that return
//! information about system state such as message queue lengths, I/O queue
//! length, and the types of requests on the I/O queue."*
//!
//! This module provides that support: the kernel appends a record at every
//! message-queue and I/O-queue transition (cheap kernel-side bookkeeping,
//! analogous to NT's event tracing). The measurement layer replays the log
//! to drive the full think/wait FSM without polling.

use latlab_des::SimTime;
use serde::{Deserialize, Serialize};

use crate::program::ThreadId;

/// The type of an I/O request — §6 asks for "the types of requests on the
/// I/O queue" so synchronous (user-blocking) and asynchronous (background)
/// work can be told apart.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum IoKind {
    /// Synchronous read: the issuing thread blocks; the user waits.
    SyncRead,
    /// Synchronous write: the issuing thread blocks; the user waits.
    SyncWrite,
    /// Asynchronous read: completion arrives as a message; background.
    AsyncRead,
    /// Asynchronous write: background.
    AsyncWrite,
}

impl IoKind {
    /// True for requests the issuing thread blocks on.
    pub fn is_synchronous(self) -> bool {
        matches!(self, IoKind::SyncRead | IoKind::SyncWrite)
    }
}

/// One state transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Transition {
    /// A message entered a thread's queue; the new queue length follows.
    MessageEnqueued {
        /// The queue's owner.
        thread: ThreadId,
        /// Queue length after the enqueue.
        queue_len: usize,
    },
    /// A message left a thread's queue.
    MessageDequeued {
        /// The queue's owner.
        thread: ThreadId,
        /// Queue length after the dequeue.
        queue_len: usize,
    },
    /// An I/O request was issued.
    IoIssued {
        /// Issuing thread.
        thread: ThreadId,
        /// Request type.
        kind: IoKind,
    },
    /// An I/O request completed.
    IoCompleted {
        /// Issuing thread.
        thread: ThreadId,
        /// Request type.
        kind: IoKind,
    },
}

/// A timestamped transition record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StateRecord {
    /// When the transition happened.
    pub at: SimTime,
    /// What changed.
    pub transition: Transition,
}

/// The kernel-maintained transition log.
#[derive(Clone, Debug, Default)]
pub struct StateLog {
    records: Vec<StateRecord>,
}

impl StateLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        StateLog::default()
    }

    /// Appends a record (kernel-side).
    pub fn record(&mut self, at: SimTime, transition: Transition) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.at <= at),
            "state log must be time-ordered"
        );
        self.records.push(StateRecord { at, transition });
    }

    /// All records in time order.
    pub fn records(&self) -> &[StateRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Replays the log for one thread, yielding `(time, queue_len,
    /// sync_io_outstanding)` after each relevant transition — the §6 API
    /// surface the FSM consumes.
    pub fn replay_thread(&self, thread: ThreadId) -> Vec<(SimTime, usize, u32)> {
        let mut queue_len = 0usize;
        let mut sync_io = 0u32;
        let mut out = Vec::new();
        for r in &self.records {
            let relevant = match r.transition {
                Transition::MessageEnqueued {
                    thread: t,
                    queue_len: q,
                } if t == thread => {
                    queue_len = q;
                    true
                }
                Transition::MessageDequeued {
                    thread: t,
                    queue_len: q,
                } if t == thread => {
                    queue_len = q;
                    true
                }
                Transition::IoIssued { thread: t, kind } if t == thread => {
                    if kind.is_synchronous() {
                        sync_io += 1;
                    }
                    true
                }
                Transition::IoCompleted { thread: t, kind } if t == thread => {
                    if kind.is_synchronous() {
                        sync_io = sync_io.saturating_sub(1);
                    }
                    true
                }
                _ => false,
            };
            if relevant {
                out.push((r.at, queue_len, sync_io));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn replay_tracks_queue_and_io() {
        let mut log = StateLog::new();
        let tid = ThreadId(1);
        log.record(
            t(10),
            Transition::MessageEnqueued {
                thread: tid,
                queue_len: 1,
            },
        );
        log.record(
            t(20),
            Transition::IoIssued {
                thread: tid,
                kind: IoKind::SyncRead,
            },
        );
        log.record(
            t(30),
            Transition::MessageDequeued {
                thread: tid,
                queue_len: 0,
            },
        );
        log.record(
            t(40),
            Transition::IoCompleted {
                thread: tid,
                kind: IoKind::SyncRead,
            },
        );
        // Another thread's traffic is invisible.
        log.record(
            t(50),
            Transition::MessageEnqueued {
                thread: ThreadId(9),
                queue_len: 4,
            },
        );
        let replay = log.replay_thread(tid);
        assert_eq!(
            replay,
            vec![(t(10), 1, 0), (t(20), 1, 1), (t(30), 0, 1), (t(40), 0, 0)]
        );
    }

    #[test]
    fn async_io_does_not_count_as_sync() {
        let mut log = StateLog::new();
        let tid = ThreadId(2);
        log.record(
            t(5),
            Transition::IoIssued {
                thread: tid,
                kind: IoKind::AsyncWrite,
            },
        );
        let replay = log.replay_thread(tid);
        assert_eq!(replay, vec![(t(5), 0, 0)]);
        assert!(!IoKind::AsyncRead.is_synchronous());
        assert!(IoKind::SyncWrite.is_synchronous());
    }

    #[test]
    fn empty_log() {
        let log = StateLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.replay_thread(ThreadId(0)).is_empty());
    }
}
