//! The execution ABI between simulated applications and the kernel.
//!
//! Applications are deterministic state machines implementing [`Program`].
//! The kernel repeatedly asks the program for its next [`Action`] — a chunk
//! of CPU work or an [`ApiCall`] — executes it (charging cycles and hardware
//! events, possibly blocking the thread), and then steps the program again
//! with the call's [`ApiReply`].
//!
//! This mirrors how the paper's workloads actually behave: a Win32
//! application is an event loop around `GetMessage()`/`PeekMessage()` (§2.4)
//! that computes, calls into the system API, and blocks.

use latlab_des::SimDuration;
use latlab_hw::HwMix;
use serde::{Deserialize, Serialize};

use crate::fs::FileId;
use crate::msgq::Message;

/// Identifies a thread (the simulator's unit of scheduling; the paper's
/// applications are single-threaded, so thread ≈ process here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

/// Scheduling priority; larger is more urgent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Priority(pub u8);

impl Priority {
    /// The OS idle thread. Runs only when literally nothing else can.
    pub const IDLE: Priority = Priority(0);
    /// The measurement idle-loop process (§2.3): *"we replace the system's
    /// idle loop with our own low-priority process"* — above the true idle
    /// thread, below everything else.
    pub const MEASUREMENT: Priority = Priority(1);
    /// Normal application priority.
    pub const NORMAL: Priority = Priority(8);
    /// Foreground-boosted application priority.
    pub const FOREGROUND: Priority = Priority(9);
    /// Kernel worker activity (input dispatch continuations, lag work).
    pub const KERNEL: Priority = Priority(16);
}

/// The kind of code a computation runs as; the active OS personality maps
/// this to a concrete [`HwMix`] (Windows 95 routes GUI work through 16-bit
/// code, §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MixClass {
    /// The application's own 32-bit code.
    App,
    /// GUI/windowing API code (USER/GDI) — 16-bit on Windows 95.
    Gui,
    /// Text and blit GUI paths (line repaints, screen scrolls). Windows
    /// 95's hand-tuned 16-bit code is *shorter* here even though each
    /// instruction is more expensive — the resolution of the paper's
    /// seemingly conflicting Figure 6 (Win95 keystrokes worst) and
    /// Figure 7 (Win95 Notepad cumulative latency smallest) findings.
    GuiText,
    /// General GDI drawing/painting (slide rendering, window repaint):
    /// compact 16-bit code on Windows 95 but penalized per instruction,
    /// landing between the NT systems (Figure 9).
    GuiDraw,
    /// Kernel-mode code.
    Kernel,
    /// An explicit mix, bypassing personality mapping.
    Raw(HwMix),
}

/// A chunk of CPU work requested by a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeSpec {
    /// Instruction count.
    pub instructions: u64,
    /// What kind of code performs the work.
    pub class: MixClass,
    /// Code pages touched (drives ITLB refill after flushes).
    pub code_pages: u32,
    /// Data pages touched (drives DTLB refill after flushes).
    pub data_pages: u32,
}

impl ComputeSpec {
    /// Application-code work with a typical small working set.
    pub fn app(instructions: u64) -> Self {
        ComputeSpec {
            instructions,
            class: MixClass::App,
            code_pages: 24,
            data_pages: 40,
        }
    }

    /// GUI-path work with a typical working set.
    pub fn gui(instructions: u64) -> Self {
        ComputeSpec {
            instructions,
            class: MixClass::Gui,
            code_pages: 28,
            data_pages: 36,
        }
    }

    /// Text/blit GUI work (see [`MixClass::GuiText`]).
    pub fn gui_text(instructions: u64) -> Self {
        ComputeSpec {
            instructions,
            class: MixClass::GuiText,
            code_pages: 20,
            data_pages: 30,
        }
    }

    /// Drawing/painting work (see [`MixClass::GuiDraw`]).
    pub fn gui_draw(instructions: u64) -> Self {
        ComputeSpec {
            instructions,
            class: MixClass::GuiDraw,
            code_pages: 26,
            data_pages: 44,
        }
    }

    /// Overrides the working-set size.
    pub fn with_pages(mut self, code: u32, data: u32) -> Self {
        self.code_pages = code;
        self.data_pages = data;
        self
    }
}

/// Ground-truth markers emitted by instrumented programs.
///
/// These correspond to having application source access: the paper *lacked*
/// this (§2: "not possible given our goal of measuring widely-available
/// commercial software") and that is precisely why the idle-loop methodology
/// exists. The simulator records the marks so that the methodology's output
/// can be validated against truth (Figure 1); measurement code never reads
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GtMark {
    /// The logical handling of the most recently retrieved user inputs is
    /// complete (even if background work follows).
    EventComplete,
    /// A free-form annotation attached to the current instant.
    Label(&'static str),
}

/// A system-API invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiCall {
    /// Block until a message is available, then retrieve it
    /// (`GetMessage()`).
    GetMessage,
    /// Poll for a message without blocking (`PeekMessage()`); replies
    /// `Message(None)` if the queue is empty.
    PeekMessage,
    /// A batch element of GDI drawing work: `ops` drawing operations.
    /// Crossing/batching semantics depend on the OS personality.
    Gdi {
        /// Number of drawing operations in this request.
        ops: u32,
    },
    /// A synchronous windowing-system call (window creation, menu
    /// manipulation, …): unlike GDI drawing these are never batched, so
    /// each one pays the personality's full crossing cost — the dominant
    /// expense of API-chatty operations like OLE in-place activation on
    /// NT 3.51 (§5.3).
    UserCall {
        /// Service instructions on the USER side.
        instr: u64,
    },
    /// Open a file by name; replies `File(FileId)`.
    OpenFile {
        /// File name registered with the simulated file system.
        name: &'static str,
    },
    /// Synchronously read a byte range; blocks for any disk time.
    ReadFile {
        /// File handle.
        file: FileId,
        /// Starting byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Synchronously write a byte range (write-through); blocks for disk.
    WriteFile {
        /// File handle.
        file: FileId,
        /// Starting byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Asynchronously read a byte range: returns immediately; a
    /// `Message::IoComplete(token)` is posted when the transfer finishes.
    ReadFileAsync {
        /// File handle.
        file: FileId,
        /// Starting byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Token echoed in the completion message.
        token: u32,
    },
    /// Asynchronously write a byte range (background flush; §2.3 assumes
    /// asynchronous I/O is background activity the user does not wait for).
    WriteFileAsync {
        /// File handle.
        file: FileId,
        /// Starting byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
        /// Token echoed in the completion message.
        token: u32,
    },
    /// Sleep for at least this long; wakeup happens on a clock tick, which
    /// is why animation steps align to 10 ms boundaries (§2.6, Figure 4a).
    Sleep {
        /// Minimum sleep duration.
        duration: SimDuration,
    },
    /// Post a message to a thread's queue (used by the test driver's
    /// `WM_QUEUESYNC` injection and by apps posting to themselves).
    PostMessage {
        /// Destination thread.
        target: ThreadId,
        /// The message to enqueue.
        msg: Message,
    },
    /// Start a periodic timer that posts `Message::Timer` on clock ticks.
    SetTimer {
        /// Timer period; rounded up to whole clock ticks.
        period: SimDuration,
    },
    /// Cancel the periodic timer.
    KillTimer,
    /// Read the Pentium cycle counter (user-mode legal, §2.2); replies
    /// `Cycles(value)`.
    ReadCycleCounter,
    /// Append a value to the thread's emission buffer (models writing a
    /// trace record to a preallocated memory buffer).
    Emit(u64),
    /// Record a ground-truth mark (validation only; see [`GtMark`]).
    GtMark(GtMark),
    /// Yield the processor voluntarily, staying ready.
    Yield,
}

/// The kernel's reply to an [`ApiCall`], delivered to the next
/// [`Program::step`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ApiReply {
    /// No payload (initial step, compute completion, void calls).
    #[default]
    None,
    /// Reply to `GetMessage`/`PeekMessage`.
    Message(Option<Message>),
    /// Reply to `OpenFile`.
    File(FileId),
    /// Reply to `ReadCycleCounter`.
    Cycles(u64),
    /// Reply to `ReadFile`/`WriteFile`: bytes transferred.
    Io(u64),
}

/// One step of program behaviour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Consume CPU.
    Compute(ComputeSpec),
    /// Invoke a system API.
    Call(ApiCall),
    /// Terminate the thread.
    Exit,
}

/// Context handed to [`Program::step`].
#[derive(Clone, Debug, Default)]
pub struct StepCtx {
    /// The reply to the previous action ([`ApiReply::None`] on the first
    /// step and after plain computes).
    pub reply: ApiReply,
}

/// One iteration of a fast-forwardable idle cycle (see
/// [`Program::idle_cycle`]).
///
/// Describes the exact action sequence one iteration of the program's
/// steady-state loop would request, so the kernel can replay whole
/// iterations in a batch without stepping the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdleCycle {
    /// The busy-wait compute the iteration starts with.
    pub spin: ComputeSpec,
    /// Whether the iteration ends with a `ReadCycleCounter` + `Emit(stamp)`
    /// pair (false once the trace buffer is full: the loop keeps spinning
    /// but records nothing).
    pub emits: bool,
    /// How many iterations of this exact shape remain before the shape
    /// changes (e.g. the trace buffer fills); `u64::MAX` when unbounded.
    pub max_iterations: u64,
}

/// Object-safe cloning for boxed programs.
///
/// Blanket-implemented for every `Program + Clone + 'static`, so authors
/// only `#[derive(Clone)]` on their program type; `Box<dyn Program>` then
/// clones through this trait. Whole-machine snapshots
/// (`Machine::snapshot`) depend on it to deep-copy thread program state.
pub trait CloneProgram {
    /// Clones the program behind the box.
    fn clone_box(&self) -> Box<dyn Program>;
}

impl<T: Program + Clone + 'static> CloneProgram for T {
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Program> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A deterministic application state machine.
///
/// `step` is called with the result of the previous action and must return
/// the next action. Programs must not spin forever returning zero-cost
/// actions; the kernel treats more than a bounded number of costless steps
/// without progress as a runaway program.
///
/// Programs are plain-data state machines: `Clone` (via [`CloneProgram`])
/// lets machine snapshots deep-copy them, and `Send` lets prepared
/// machines move to whichever worker thread measures them.
pub trait Program: CloneProgram + Send {
    /// Returns the program's next action.
    fn step(&mut self, ctx: &mut StepCtx) -> Action;

    /// Short name for traces and diagnostics.
    fn name(&self) -> &'static str {
        "program"
    }

    /// Declares the program fast-forwardable: when it sits at an iteration
    /// boundary of a pure idle cycle, returns the shape of the next
    /// iteration(s). The kernel may then execute whole iterations in a
    /// batch — charging identical costs and synthesizing identical stamps —
    /// and report how many via [`Program::idle_cycle_advance`], without
    /// calling `step`. Returning `None` (the default) opts out.
    fn idle_cycle(&self) -> Option<IdleCycle> {
        None
    }

    /// Informs the program that the kernel batch-executed `iterations`
    /// whole iterations of the cycle last returned by
    /// [`Program::idle_cycle`].
    fn idle_cycle_advance(&mut self, iterations: u64) {
        let _ = iterations;
    }
}

/// Behavioural traits of an application that the OS personality reacts to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppTraits {
    /// The application performs heavyweight asynchronous processing around
    /// its message loop (Word); on Windows 95 such applications keep the
    /// system busy after event handling completes (§5.4: "the system does
    /// not become idle immediately after Word finishes handling an event").
    pub heavy_async: bool,
    /// The application is a console program: its input routes through the
    /// console server (an extra protection-domain hop) — the reason the
    /// paper's `getchar()` echo program misses 2.34 ms of pre-application
    /// work (§2.3, Figure 1).
    pub console: bool,
}

/// Everything needed to spawn a thread.
pub struct ProcessSpec {
    /// Thread name for traces.
    pub name: &'static str,
    /// Scheduling priority.
    pub priority: Priority,
    /// Behavioural traits.
    pub traits: AppTraits,
    /// Message-queue capacity (`None` = the Win32 default of 10,000).
    pub queue_capacity: Option<usize>,
}

impl ProcessSpec {
    /// A normal-priority application.
    pub fn app(name: &'static str) -> Self {
        ProcessSpec {
            name,
            priority: Priority::FOREGROUND,
            traits: AppTraits::default(),
            queue_capacity: None,
        }
    }

    /// Overrides the message-queue capacity (overflow drops messages, as
    /// real Win32 queues do).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Marks the application as heavily asynchronous (see [`AppTraits`]).
    pub fn with_heavy_async(mut self) -> Self {
        self.traits.heavy_async = true;
        self
    }

    /// Marks the application as a console program (see [`AppTraits`]).
    pub fn with_console(mut self) -> Self {
        self.traits.console = true;
        self
    }

    /// Overrides the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_matches_roles() {
        assert!(Priority::IDLE < Priority::MEASUREMENT);
        assert!(Priority::MEASUREMENT < Priority::NORMAL);
        assert!(Priority::NORMAL < Priority::FOREGROUND);
        assert!(Priority::FOREGROUND < Priority::KERNEL);
    }

    #[test]
    fn compute_spec_builders() {
        let c = ComputeSpec::app(100).with_pages(5, 7);
        assert_eq!(c.instructions, 100);
        assert_eq!(c.code_pages, 5);
        assert_eq!(c.data_pages, 7);
        assert_eq!(c.class, MixClass::App);
        assert_eq!(ComputeSpec::gui(1).class, MixClass::Gui);
    }

    #[test]
    fn process_spec_builders() {
        let s = ProcessSpec::app("word").with_heavy_async();
        assert!(s.traits.heavy_async);
        assert_eq!(s.priority, Priority::FOREGROUND);
        let t = ProcessSpec::app("x").with_priority(Priority::NORMAL);
        assert_eq!(t.priority, Priority::NORMAL);
    }

    #[test]
    fn default_reply_is_none() {
        assert_eq!(ApiReply::default(), ApiReply::None);
    }
}
