//! Simulator ground truth: true event spans and true CPU busy intervals.
//!
//! The paper had no ground truth — that is the entire reason its idle-loop
//! methodology exists. The simulator *does*, and uses it for exactly one
//! purpose: validating the methodology (Figure 1 compares idle-loop-measured
//! latency against what actually happened) and test assertions about
//! measurement accuracy. Measurement code in `latlab-core` never reads this
//! module's data.

use latlab_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::msgq::InputKind;
use crate::program::ThreadId;

/// The true life cycle of one user input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtEvent {
    /// Simulator-assigned input id.
    pub input_id: u64,
    /// What the user did.
    pub kind: InputKind,
    /// When the hardware input arrived (interrupt raised).
    pub arrived: SimTime,
    /// When the corresponding message entered the application queue.
    pub enqueued: Option<SimTime>,
    /// When the application retrieved the message.
    pub retrieved: Option<SimTime>,
    /// When handling truly completed (the application asked for the next
    /// message after finishing, or explicitly marked completion).
    pub completed: Option<SimTime>,
    /// The thread that handled it.
    pub handler: Option<ThreadId>,
}

impl GtEvent {
    /// True event-handling latency: from hardware arrival to completion.
    ///
    /// This is the quantity the idle-loop methodology estimates; the
    /// conventional in-application measurement (§2.3's `getchar()`
    /// timestamps) instead spans `retrieved → completion-of-echo` and misses
    /// the interrupt/dispatch/reschedule prefix.
    pub fn true_latency(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.since(self.arrived))
    }

    /// The portion of latency spent before the application saw the message
    /// (interrupt handling, input dispatch, scheduling).
    pub fn pre_application(&self) -> Option<SimDuration> {
        self.retrieved.map(|r| r.since(self.arrived))
    }
}

/// Collected ground truth for a run.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    events: Vec<GtEvent>,
    labels: Vec<(SimTime, &'static str)>,
    busy: Vec<(SimTime, SimTime)>,
}

impl GroundTruth {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Registers an input at hardware-arrival time. Ids must be registered
    /// in increasing order.
    pub fn on_arrival(&mut self, input_id: u64, kind: InputKind, at: SimTime) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.input_id < input_id),
            "input ids must be registered in increasing order"
        );
        self.events.push(GtEvent {
            input_id,
            kind,
            arrived: at,
            enqueued: None,
            retrieved: None,
            completed: None,
            handler: None,
        });
    }

    /// Records the message-queue insertion of an input.
    pub fn on_enqueue(&mut self, input_id: u64, at: SimTime) {
        if let Some(e) = self.find_mut(input_id) {
            e.enqueued = Some(at);
        }
    }

    /// Records retrieval by the handling thread.
    pub fn on_retrieve(&mut self, input_id: u64, thread: ThreadId, at: SimTime) {
        if let Some(e) = self.find_mut(input_id) {
            e.retrieved = Some(at);
            e.handler = Some(thread);
        }
    }

    /// Records true completion (first completion wins; later marks are
    /// ignored so an explicit `GtMark::EventComplete` followed by the
    /// eventual queue-empty block does not move the boundary).
    pub fn on_complete(&mut self, input_id: u64, at: SimTime) {
        if let Some(e) = self.find_mut(input_id) {
            if e.completed.is_none() {
                e.completed = Some(at);
            }
        }
    }

    /// Records a free-form label.
    pub fn on_label(&mut self, label: &'static str, at: SimTime) {
        self.labels.push((at, label));
    }

    /// Appends a CPU-busy interval, merging with the previous interval when
    /// contiguous.
    pub fn on_busy(&mut self, start: SimTime, end: SimTime) {
        if start == end {
            return;
        }
        debug_assert!(start < end, "busy interval must be forward");
        if let Some(last) = self.busy.last_mut() {
            debug_assert!(last.1 <= start, "busy intervals must be ordered");
            if last.1 == start {
                last.1 = end;
                return;
            }
        }
        self.busy.push((start, end));
    }

    /// All recorded events in id order.
    pub fn events(&self) -> &[GtEvent] {
        &self.events
    }

    /// Looks one event up by id.
    pub fn event(&self, input_id: u64) -> Option<&GtEvent> {
        self.events
            .binary_search_by_key(&input_id, |e| e.input_id)
            .ok()
            .map(|i| &self.events[i])
    }

    /// All labels in time order.
    pub fn labels(&self) -> &[(SimTime, &'static str)] {
        &self.labels
    }

    /// Merged CPU-busy intervals in time order.
    pub fn busy_intervals(&self) -> &[(SimTime, SimTime)] {
        &self.busy
    }

    /// Total true CPU busy time within `[from, to)`.
    pub fn busy_within(&self, from: SimTime, to: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(s, e) in &self.busy {
            let s = s.max(from);
            let e = e.min(to);
            if s < e {
                total += e.since(s);
            }
        }
        total
    }

    fn find_mut(&mut self, input_id: u64) -> Option<&mut GtEvent> {
        self.events
            .binary_search_by_key(&input_id, |e| e.input_id)
            .ok()
            .map(move |i| &mut self.events[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgq::KeySym;

    fn t(c: u64) -> SimTime {
        SimTime::from_cycles(c)
    }

    #[test]
    fn lifecycle_and_latency() {
        let mut gt = GroundTruth::new();
        gt.on_arrival(1, InputKind::Key(KeySym::Char('a')), t(100));
        gt.on_enqueue(1, t(150));
        gt.on_retrieve(1, ThreadId(3), t(200));
        gt.on_complete(1, t(1_100));
        let e = gt.event(1).unwrap();
        assert_eq!(e.true_latency(), Some(SimDuration::from_cycles(1_000)));
        assert_eq!(e.pre_application(), Some(SimDuration::from_cycles(100)));
        assert_eq!(e.handler, Some(ThreadId(3)));
    }

    #[test]
    fn first_completion_wins() {
        let mut gt = GroundTruth::new();
        gt.on_arrival(1, InputKind::Key(KeySym::Enter), t(0));
        gt.on_complete(1, t(500));
        gt.on_complete(1, t(900));
        assert_eq!(gt.event(1).unwrap().completed, Some(t(500)));
    }

    #[test]
    fn busy_intervals_merge_when_contiguous() {
        let mut gt = GroundTruth::new();
        gt.on_busy(t(0), t(10));
        gt.on_busy(t(10), t(20));
        gt.on_busy(t(30), t(40));
        assert_eq!(gt.busy_intervals(), &[(t(0), t(20)), (t(30), t(40))]);
    }

    #[test]
    fn busy_within_clips() {
        let mut gt = GroundTruth::new();
        gt.on_busy(t(0), t(100));
        gt.on_busy(t(200), t(300));
        assert_eq!(
            gt.busy_within(t(50), t(250)),
            SimDuration::from_cycles(50 + 50)
        );
    }

    #[test]
    fn zero_length_busy_ignored() {
        let mut gt = GroundTruth::new();
        gt.on_busy(t(5), t(5));
        assert!(gt.busy_intervals().is_empty());
    }

    #[test]
    fn unknown_ids_ignored() {
        let mut gt = GroundTruth::new();
        gt.on_complete(42, t(1)); // no panic, no effect
        assert!(gt.event(42).is_none());
    }
}
