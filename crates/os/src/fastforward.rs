//! Thread-local default for the kernel's idle fast-forward.
//!
//! Fast-forward is a pure performance optimization with a bit-identical
//! observables contract (see `Machine::try_fast_forward`), so it defaults
//! **on**. The `--no-fastforward` escape hatch keeps the iterative path
//! alive as the oracle: the bench harness installs an override on whichever
//! worker thread picks up a scenario, and every [`crate::Machine::new`] on
//! that thread — including calibration scratch machines — captures the
//! setting at boot. Thread-locality mirrors `latlab-bench`'s fault-plan
//! configuration: no cross-test races, and a crashed scenario can never
//! leak its setting into the next job on the same worker.

use std::cell::Cell;

thread_local! {
    static DEFAULT: Cell<bool> = const { Cell::new(true) };
}

/// The fast-forward default new machines on this thread boot with.
pub fn default_enabled() -> bool {
    DEFAULT.with(Cell::get)
}

/// RAII guard restoring the previous default on drop.
///
/// Dropping during a panic unwind also restores state.
pub struct FastForwardOverride {
    prev: bool,
}

impl Drop for FastForwardOverride {
    fn drop(&mut self) {
        DEFAULT.with(|d| d.set(self.prev));
    }
}

/// Sets the fast-forward default for machines subsequently built on this
/// thread, returning a guard that restores the previous setting.
pub fn override_default(enabled: bool) -> FastForwardOverride {
    let prev = DEFAULT.with(|d| d.replace(enabled));
    FastForwardOverride { prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_on() {
        assert!(default_enabled());
    }

    #[test]
    fn override_nests_and_restores() {
        {
            let _outer = override_default(false);
            assert!(!default_enabled());
            {
                let _inner = override_default(true);
                assert!(default_enabled());
            }
            assert!(!default_enabled());
        }
        assert!(default_enabled());
    }

    #[test]
    fn restores_across_panic_unwind() {
        let caught = std::panic::catch_unwind(|| {
            let _guard = override_default(false);
            panic!("scenario died");
        });
        assert!(caught.is_err());
        assert!(default_enabled(), "unwind must not leak the override");
    }
}
