//! Win32-style message queues.
//!
//! User input is queued per thread and retrieved through
//! `GetMessage()`/`PeekMessage()` (§2.4). Queue state (empty/non-empty) is
//! one of the three inputs to the paper's think-time/wait-time state machine
//! (Figure 2): *"when there are events queued, we can assume that the user
//! is waiting."*

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A keyboard key, reduced to what the workloads need.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum KeySym {
    /// A printable character.
    Char(char),
    /// Carriage return.
    Enter,
    /// Backspace.
    Backspace,
    /// Page down.
    PageDown,
    /// Page up.
    PageUp,
    /// Arrow up.
    Up,
    /// Arrow down.
    Down,
    /// Arrow left.
    Left,
    /// Arrow right.
    Right,
    /// Escape.
    Escape,
    /// A control chord, e.g. Ctrl+S.
    Ctrl(char),
}

impl KeySym {
    /// True for keys that insert a printable character.
    pub fn is_printable(self) -> bool {
        matches!(self, KeySym::Char(_))
    }
}

/// A mouse button.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MouseButton {
    /// Left button.
    Left,
    /// Right button.
    Right,
}

/// Hardware-level user input, before the input driver turns it into a
/// message.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InputKind {
    /// A key press (modelled as one event per keystroke).
    Key(KeySym),
    /// Mouse button press.
    MouseDown(MouseButton),
    /// Mouse button release.
    MouseUp(MouseButton),
    /// A network packet arrival of the given payload size — the paper's
    /// other class of latency-critical asynchronous events (§1: "user input
    /// or network packet arrival"). Delivered to the network-bound thread
    /// rather than the focused one.
    Packet(u32),
}

/// A queued window message.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Message {
    /// A user-input message carrying the simulator-assigned input id used
    /// for ground-truth correlation.
    Input {
        /// Simulator-assigned id of the originating user input.
        id: u64,
        /// What the user did.
        kind: InputKind,
    },
    /// Repaint request.
    Paint,
    /// Periodic timer expiry (`WM_TIMER`).
    Timer,
    /// The journal-playback synchronization message Microsoft Test posts
    /// after every injected input (`WM_QUEUESYNC`, §5.4). Its handling cost
    /// is the source of the Notepad elapsed-time anomaly (Figure 7 caption).
    QueueSync,
    /// Completion notification for an asynchronous I/O request, carrying
    /// the request token (§6's async-I/O support; the paper's FSM treats
    /// asynchronous I/O as background activity).
    IoComplete(u32),
    /// Application-defined message.
    User(u32),
}

impl Message {
    /// The originating input id, for input messages.
    pub fn input_id(&self) -> Option<u64> {
        match self {
            Message::Input { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A bounded FIFO message queue.
///
/// Real Win32 queues hold 10,000 messages by default; overflow drops the
/// message (and real systems beep). The bound exists so that runaway posting
/// is an observable failure rather than unbounded memory growth.
#[derive(Clone, Debug)]
pub struct MessageQueue {
    queue: VecDeque<Message>,
    capacity: usize,
    dropped: u64,
    /// Monotone count of all successfully enqueued messages.
    enqueued: u64,
}

/// Default queue capacity.
pub const DEFAULT_QUEUE_CAPACITY: usize = 10_000;

impl MessageQueue {
    /// Creates a queue with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// Creates a queue with a specific capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        MessageQueue {
            queue: VecDeque::new(),
            capacity,
            dropped: 0,
            enqueued: 0,
        }
    }

    /// Enqueues a message; returns `false` (and counts a drop) on overflow.
    pub fn post(&mut self, msg: Message) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(msg);
        self.enqueued += 1;
        true
    }

    /// Dequeues the oldest message.
    pub fn take(&mut self) -> Option<Message> {
        self.queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Messages dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total messages ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }
}

impl Default for MessageQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = MessageQueue::new();
        q.post(Message::User(1));
        q.post(Message::User(2));
        assert_eq!(q.take(), Some(Message::User(1)));
        assert_eq!(q.take(), Some(Message::User(2)));
        assert_eq!(q.take(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = MessageQueue::with_capacity(2);
        assert!(q.post(Message::User(1)));
        assert!(q.post(Message::User(2)));
        assert!(!q.post(Message::User(3)));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_enqueued(), 2);
    }

    #[test]
    fn input_id_extraction() {
        let m = Message::Input {
            id: 7,
            kind: InputKind::Key(KeySym::Char('a')),
        };
        assert_eq!(m.input_id(), Some(7));
        assert_eq!(Message::Paint.input_id(), None);
    }

    #[test]
    fn printable_classification() {
        assert!(KeySym::Char('x').is_printable());
        assert!(!KeySym::Enter.is_printable());
        assert!(!KeySym::PageDown.is_printable());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = MessageQueue::with_capacity(0);
    }
}
