//! The message-API interception log.
//!
//! §2.4: *"Win32 applications use the PeekMessage() and GetMessage() calls to
//! examine and retrieve events from the message queue. We can monitor use of
//! these API entries by intercepting the USER32.DLL calls."*
//!
//! The simulated kernel produces this log as a side effect of servicing the
//! calls — it is one of the three observables available to the measurement
//! layer (`latlab-core`), the others being idle-loop trace records and
//! hardware-counter reads.

use latlab_des::SimTime;
use serde::{Deserialize, Serialize};

use crate::msgq::Message;
use crate::program::ThreadId;

/// Which API entry was observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ApiEntry {
    /// `GetMessage()` — blocks when the queue is empty.
    GetMessage,
    /// `PeekMessage()` — returns immediately.
    PeekMessage,
}

/// The observed outcome of a call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ApiOutcome {
    /// The call retrieved a message.
    Retrieved(Message),
    /// `PeekMessage` found the queue empty.
    Empty,
    /// `GetMessage` found the queue empty and blocked.
    Blocked,
}

/// One intercepted call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ApiLogEntry {
    /// When the call's outcome was decided.
    pub at: SimTime,
    /// The calling thread.
    pub thread: ThreadId,
    /// Which entry point.
    pub entry: ApiEntry,
    /// What happened.
    pub outcome: ApiOutcome,
    /// Queue length after the call completed.
    pub queue_len_after: usize,
}

impl ApiLogEntry {
    /// True if this entry shows the application caught up with its input
    /// (empty-queue poll or block) — the boundary the extraction layer uses
    /// for event completion.
    pub fn found_queue_empty(&self) -> bool {
        matches!(self.outcome, ApiOutcome::Empty | ApiOutcome::Blocked)
    }

    /// The retrieved message, if any.
    pub fn retrieved(&self) -> Option<Message> {
        match self.outcome {
            ApiOutcome::Retrieved(m) => Some(m),
            _ => None,
        }
    }
}

/// The accumulated interception log.
#[derive(Clone, Debug, Default)]
pub struct ApiLog {
    entries: Vec<ApiLogEntry>,
}

impl ApiLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ApiLog::default()
    }

    /// Appends an entry (kernel-side).
    pub fn record(&mut self, entry: ApiLogEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.at <= entry.at),
            "API log must be time-ordered"
        );
        self.entries.push(entry);
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[ApiLogEntry] {
        &self.entries
    }

    /// Entries for one thread, in time order.
    pub fn for_thread(&self, thread: ThreadId) -> impl Iterator<Item = &ApiLogEntry> {
        self.entries.iter().filter(move |e| e.thread == thread)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgq::{InputKind, KeySym};

    fn entry(at: u64, thread: u32, outcome: ApiOutcome) -> ApiLogEntry {
        ApiLogEntry {
            at: SimTime::from_cycles(at),
            thread: ThreadId(thread),
            entry: ApiEntry::GetMessage,
            outcome,
            queue_len_after: 0,
        }
    }

    #[test]
    fn records_in_order() {
        let mut log = ApiLog::new();
        log.record(entry(10, 1, ApiOutcome::Blocked));
        log.record(entry(20, 1, ApiOutcome::Empty));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn per_thread_filter() {
        let mut log = ApiLog::new();
        log.record(entry(10, 1, ApiOutcome::Blocked));
        log.record(entry(20, 2, ApiOutcome::Blocked));
        log.record(entry(30, 1, ApiOutcome::Empty));
        assert_eq!(log.for_thread(ThreadId(1)).count(), 2);
        assert_eq!(log.for_thread(ThreadId(2)).count(), 1);
    }

    #[test]
    fn outcome_helpers() {
        let m = Message::Input {
            id: 3,
            kind: InputKind::Key(KeySym::Enter),
        };
        let e = entry(5, 1, ApiOutcome::Retrieved(m));
        assert_eq!(e.retrieved(), Some(m));
        assert!(!e.found_queue_empty());
        assert!(entry(6, 1, ApiOutcome::Empty).found_queue_empty());
        assert!(entry(7, 1, ApiOutcome::Blocked).found_queue_empty());
    }
}
