//! The buffer cache: an LRU cache of disk blocks.
//!
//! §5.2: *"The effects of the file system cache are most clearly observed in
//! the latency for starting the second OLE edit, as more of the pages for
//! the embedded Excel object editor become resident in the buffer cache."*
//! Table 1's progressive OLE-edit speedup is driven by this cache.

use std::collections::HashMap;

/// A cached block: file-relative addressing keeps the cache independent of
/// disk layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BlockKey {
    /// Owning file.
    pub file: u32,
    /// Block index within the file.
    pub block: u64,
}

/// An LRU block cache with hit/miss accounting.
///
/// Implemented as a hash map into an intrusive doubly-linked list of slots;
/// all operations are O(1).
#[derive(Clone, Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<BlockKey, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    key: BlockKey,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferCache {
    /// Creates a cache holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        BufferCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a block, counting a hit or miss and refreshing recency on a
    /// hit.
    pub fn access(&mut self, key: BlockKey) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.hits += 1;
            self.unlink(slot);
            self.push_front(slot);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks residency without affecting recency or statistics.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Inserts a block as most-recently-used, evicting the LRU block if
    /// full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: BlockKey) -> Option<BlockKey> {
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let old = self.slots[lru].key;
            self.unlink(lru);
            self.map.remove(&old);
            self.free.push(lru);
            evicted = Some(old);
        }
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s].key = key;
            s
        } else {
            self.slots.push(Slot {
                key,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }

    /// Evicts up to `n` blocks from the cold (LRU) end — memory pressure
    /// from elsewhere in the system, e.g. an injected page-fault burst
    /// stealing cache pages for the paging store. Returns the number
    /// actually evicted.
    pub fn evict_oldest(&mut self, n: usize) -> usize {
        let mut evicted = 0;
        while evicted < n && self.tail != NIL {
            let lru = self.tail;
            let old = self.slots[lru].key;
            self.unlink(lru);
            self.map.remove(&old);
            self.free.push(lru);
            evicted += 1;
        }
        evicted
    }

    /// Total cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops everything (used for cold-start scenarios).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u64) -> BlockKey {
        BlockKey { file: 0, block: b }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = BufferCache::new(4);
        assert!(!c.access(key(1)));
        c.insert(key(1));
        assert!(c.access(key(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = BufferCache::new(2);
        c.insert(key(1));
        c.insert(key(2));
        c.access(key(1)); // 1 now MRU, 2 is LRU
        let evicted = c.insert(key(3));
        assert_eq!(evicted, Some(key(2)));
        assert!(c.contains(key(1)));
        assert!(c.contains(key(3)));
        assert!(!c.contains(key(2)));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = BufferCache::new(2);
        c.insert(key(1));
        c.insert(key(2));
        assert_eq!(c.insert(key(1)), None); // refresh, no eviction
        assert_eq!(c.insert(key(3)), Some(key(2)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BufferCache::new(3);
        for b in 0..100 {
            c.insert(key(b));
        }
        assert_eq!(c.len(), 3);
        for b in 97..100 {
            assert!(c.contains(key(b)));
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = BufferCache::new(2);
        c.insert(key(1));
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(key(1)));
        // Reusable after clear.
        c.insert(key(5));
        assert!(c.contains(key(5)));
    }

    #[test]
    fn distinct_files_do_not_collide() {
        let mut c = BufferCache::new(4);
        c.insert(BlockKey { file: 0, block: 7 });
        assert!(!c.contains(BlockKey { file: 1, block: 7 }));
    }

    /// Reference-model check: the intrusive-list LRU must behave exactly
    /// like a naive Vec-based LRU over a long random-ish operation sequence.
    #[test]
    fn matches_reference_lru() {
        let capacity = 8;
        let mut fast = BufferCache::new(capacity);
        let mut slow: Vec<BlockKey> = Vec::new(); // front = MRU
        let mut state = 12345u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 33) % 20;
            let k = key(b);
            if state.is_multiple_of(3) {
                let fast_hit = fast.access(k);
                let slow_hit = slow.contains(&k);
                assert_eq!(fast_hit, slow_hit);
                if slow_hit {
                    slow.retain(|&x| x != k);
                    slow.insert(0, k);
                }
            } else {
                fast.insert(k);
                slow.retain(|&x| x != k);
                slow.insert(0, k);
                slow.truncate(capacity);
            }
        }
        assert_eq!(fast.len(), slow.len());
        for k in slow {
            assert!(fast.contains(k));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = BufferCache::new(0);
    }

    #[test]
    fn evict_oldest_takes_the_cold_end() {
        let mut c = BufferCache::new(8);
        for b in 0..6 {
            c.insert(key(b));
        }
        c.access(key(0)); // 0 becomes MRU; coldest now 1, 2, ...
        assert_eq!(c.evict_oldest(2), 2);
        assert_eq!(c.len(), 4);
        assert!(!c.contains(key(1)));
        assert!(!c.contains(key(2)));
        assert!(c.contains(key(0)));
        assert!(c.contains(key(5)));
        // Over-asking drains the cache and reports the real count.
        assert_eq!(c.evict_oldest(100), 4);
        assert!(c.is_empty());
        // Slots are recycled after mass eviction.
        c.insert(key(9));
        assert!(c.contains(key(9)));
    }
}
