//! OS personalities: Windows NT 3.51, Windows NT 4.0, and Windows 95.
//!
//! Every behavioural and cost difference the paper invokes is a field here:
//!
//! * **Win32 architecture** (§2.1, §5.3): NT 3.51 implements Win32 in a
//!   user-level server — every API batch crosses protection domains and
//!   flushes the TLB. NT 4.0 moved those components into the kernel: a mode
//!   switch, no flush. Windows 95 thunks to 16-bit USER/GDI code.
//! * **16-bit code** (§4): Windows 95's GUI mix carries heavy segment-
//!   register-load and unaligned-access rates.
//! * **Clock interrupts** (§2.5): 10 ms ticks; the smallest NT 4.0 handler
//!   is ~400 cycles.
//! * **Quirks**: Windows 95 busy-waits between mouse-down and mouse-up
//!   (§4, Figure 6) and fails to go idle promptly after heavyweight
//!   asynchronous applications handle an event (§5.4).

use latlab_des::{CpuFreq, SimDuration};
use latlab_hw::HwMix;
use serde::{Deserialize, Serialize};

/// The three measured systems.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OsProfile {
    /// Windows NT 3.51 (user-level Win32 server, classic GUI).
    Nt351,
    /// Windows NT 4.0 (kernel-mode Win32, Windows 95-style GUI).
    Nt40,
    /// Windows 95 (16-bit USER/GDI heritage).
    Win95,
}

impl OsProfile {
    /// All profiles in the paper's presentation order.
    pub const ALL: [OsProfile; 3] = [OsProfile::Nt351, OsProfile::Nt40, OsProfile::Win95];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            OsProfile::Nt351 => "Windows NT 3.51",
            OsProfile::Nt40 => "Windows NT 4.0",
            OsProfile::Win95 => "Windows 95",
        }
    }

    /// Short tag for file names and tables.
    pub const fn tag(self) -> &'static str {
        match self {
            OsProfile::Nt351 => "nt351",
            OsProfile::Nt40 => "nt40",
            OsProfile::Win95 => "win95",
        }
    }

    /// Builds the personality's parameter set.
    pub fn params(self) -> OsParams {
        OsParams::for_profile(self)
    }
}

impl std::fmt::Display for OsProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How Win32 API requests reach their implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Win32Arch {
    /// NT 3.51: LPC to a user-level server. Crossing flushes both TLBs; the
    /// server's working set must be refilled, and on return the client
    /// refills its own.
    UserServer {
        /// Server code pages touched per crossing.
        server_code_pages: u32,
        /// Server data pages touched per crossing.
        server_data_pages: u32,
    },
    /// NT 4.0: kernel-mode Win32. A mode switch without a TLB flush; a small
    /// fixed dilution of TLB contents per call.
    KernelMode {
        /// Extra ITLB misses per call from kernel-text dilution.
        extra_itlb: u32,
        /// Extra DTLB misses per call.
        extra_dtlb: u32,
    },
    /// Windows 95: a 32→16-bit thunk into the shared system arena.
    Thunk16 {
        /// Extra ITLB misses per call.
        extra_itlb: u32,
        /// Extra DTLB misses per call.
        extra_dtlb: u32,
    },
}

/// Complete tunable parameter set for one simulated OS.
///
/// Instruction counts are raw instruction counts (not thousands). They were
/// calibrated so that the *shapes* of the paper's results hold — orderings,
/// ratios and crossovers, not the absolute 1996 numbers (see EXPERIMENTS.md).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OsParams {
    /// Which personality this is.
    pub profile: OsProfile,
    /// CPU clock (100 MHz Pentium).
    pub freq: CpuFreq,

    // --- Timekeeping -----------------------------------------------------
    /// Hardware clock-interrupt period (10 ms on all three systems, §2.5).
    pub clock_tick: SimDuration,
    /// Instructions in the common-case clock interrupt handler.
    pub clock_tick_instr: u64,
    /// Every `housekeeping_every`-th tick runs extra bookkeeping.
    pub housekeeping_every: u32,
    /// Instructions of that periodic bookkeeping.
    pub housekeeping_instr: u64,

    // --- Scheduling ------------------------------------------------------
    /// Scheduling quantum, in clock ticks.
    pub quantum_ticks: u32,
    /// Context-switch cost in instructions.
    pub context_switch_instr: u64,

    // --- Input pipeline --------------------------------------------------
    /// Keyboard/mouse interrupt handler instructions.
    pub input_interrupt_instr: u64,
    /// Driver + windowing-system input dispatch instructions (runs before
    /// the message is enqueued; this is the work conventional in-application
    /// timing misses, §2.3).
    pub input_dispatch_instr: u64,
    /// Per-packet network protocol-stack instructions (§1's other
    /// latency-critical event class).
    pub net_dispatch_instr: u64,
    /// Per-byte copy/checksum instructions in the network path.
    pub net_instr_per_byte: u64,

    // --- Win32 architecture ----------------------------------------------
    /// How API requests cross into the implementation.
    pub win32: Win32Arch,
    /// System-call entry/exit instructions.
    pub syscall_instr: u64,
    /// Per-crossing transport instructions (LPC / mode switch / thunk).
    pub crossing_instr: u64,
    /// USER-side work to retrieve one message.
    pub getmessage_instr: u64,
    /// GDI requests are batched; a batch crossing happens after this many
    /// operations or when the client is about to block (§1.1's batching
    /// discussion).
    pub gdi_batch_size: u32,
    /// Instructions per GDI drawing operation.
    pub gdi_op_instr: u64,
    /// Multiplier (in thousandths) applied to all `MixClass::Gui` work:
    /// the paper's "code path length" difference between GUIs.
    pub gui_path_milli: u64,
    /// Multiplier for `MixClass::GuiText` work (text/blit paths; short
    /// hand-tuned code on Windows 95).
    pub gui_text_path_milli: u64,
    /// Multiplier for GDI drawing services (slide rendering, window
    /// painting). Windows 95's 16-bit GDI is compact but pays the WIN16 mix
    /// penalties, landing it between the NT systems (Figure 9).
    pub gdi_path_milli: u64,
    /// Extra input-dispatch instructions for console applications (the
    /// console-server hop of §2.3's echo program).
    pub console_dispatch_instr: u64,

    // --- Code mixes --------------------------------------------------------
    /// Mix for application code.
    pub app_mix: HwMix,
    /// Mix for GUI/windowing code (16-bit on Windows 95).
    pub gui_mix: HwMix,
    /// Mix for kernel code.
    pub kernel_mix: HwMix,

    // --- Background activity ----------------------------------------------
    /// Period of OS-internal background activity, if any.
    pub background_period: Option<SimDuration>,
    /// Instructions per background burst.
    pub background_instr: u64,

    // --- Quirks -------------------------------------------------------------
    /// Busy-wait between mouse-down and mouse-up (Windows 95, §4).
    pub mouse_busy_wait: bool,
    /// How long the system stays busy after a heavyweight-async application
    /// finishes an event (Windows 95 + Word, §5.4). Zero disables.
    pub post_event_busy: SimDuration,

    // --- Storage -----------------------------------------------------------
    /// Buffer-cache capacity in 4 KB blocks.
    pub cache_blocks: usize,
    /// Kernel instructions per block paged in from disk.
    pub page_in_instr_per_block: u64,
    /// Kernel instructions per cache-hit block copy.
    pub copy_instr_per_block: u64,
    /// Write-path cost multiplier in thousandths (NTFS under NT 4.0 pays
    /// more per write than under 3.51 — Table 1's Save row is the one
    /// operation where NT 4.0 is slower).
    pub write_overhead_milli: u64,
}

impl OsParams {
    /// Builds the calibrated parameter set for a profile.
    pub fn for_profile(profile: OsProfile) -> OsParams {
        let freq = CpuFreq::PENTIUM_100;
        let tick = freq.ms(10);
        match profile {
            OsProfile::Nt40 => OsParams {
                profile,
                freq,
                clock_tick: tick,
                // ~400 cycles at kernel mix (§2.5).
                clock_tick_instr: 250,
                housekeeping_every: 10,
                housekeeping_instr: 4_000,
                quantum_ticks: 2,
                context_switch_instr: 4_000,
                input_interrupt_instr: 4_000,
                input_dispatch_instr: 32_000,
                net_dispatch_instr: 20_000,
                net_instr_per_byte: 6,
                win32: Win32Arch::KernelMode {
                    extra_itlb: 3,
                    extra_dtlb: 5,
                },
                syscall_instr: 1_500,
                crossing_instr: 1_000,
                getmessage_instr: 3_000,
                gdi_batch_size: 8,
                gdi_op_instr: 2_500,
                gui_path_milli: 1_000,
                gui_text_path_milli: 1_000,
                gdi_path_milli: 1_000,
                console_dispatch_instr: 102_000,
                app_mix: HwMix::FLAT32,
                gui_mix: HwMix::FLAT32,
                kernel_mix: HwMix::KERNEL,
                background_period: None,
                background_instr: 0,
                mouse_busy_wait: false,
                post_event_busy: SimDuration::ZERO,
                cache_blocks: 1_536,
                page_in_instr_per_block: 1_500,
                copy_instr_per_block: 700,
                write_overhead_milli: 1_250,
            },
            OsProfile::Nt351 => OsParams {
                profile,
                freq,
                clock_tick: tick,
                clock_tick_instr: 300,
                housekeeping_every: 10,
                housekeeping_instr: 4_500,
                quantum_ticks: 2,
                context_switch_instr: 4_500,
                input_interrupt_instr: 4_000,
                input_dispatch_instr: 42_000,
                net_dispatch_instr: 26_000,
                net_instr_per_byte: 6,
                win32: Win32Arch::UserServer {
                    server_code_pages: 40,
                    server_data_pages: 60,
                },
                syscall_instr: 1_500,
                crossing_instr: 2_400,
                getmessage_instr: 3_500,
                gdi_batch_size: 6,
                gdi_op_instr: 2_700,
                gui_path_milli: 1_300,
                gui_text_path_milli: 1_100,
                gdi_path_milli: 1_008,
                console_dispatch_instr: 160_000,
                app_mix: HwMix::FLAT32,
                gui_mix: HwMix::FLAT32,
                kernel_mix: HwMix::KERNEL,
                background_period: None,
                background_instr: 0,
                mouse_busy_wait: false,
                post_event_busy: SimDuration::ZERO,
                cache_blocks: 1_000,
                page_in_instr_per_block: 1_600,
                copy_instr_per_block: 750,
                write_overhead_milli: 1_050,
            },
            OsProfile::Win95 => OsParams {
                profile,
                freq,
                clock_tick: tick,
                clock_tick_instr: 400,
                housekeeping_every: 8,
                housekeeping_instr: 6_000,
                quantum_ticks: 2,
                context_switch_instr: 5_000,
                input_interrupt_instr: 6_000,
                input_dispatch_instr: 40_000,
                net_dispatch_instr: 30_000,
                net_instr_per_byte: 8,
                win32: Win32Arch::Thunk16 {
                    extra_itlb: 4,
                    extra_dtlb: 8,
                },
                syscall_instr: 1_800,
                crossing_instr: 900,
                getmessage_instr: 4_000,
                gdi_batch_size: 12,
                gdi_op_instr: 2_900,
                gui_path_milli: 1_000,
                gui_text_path_milli: 380,
                gdi_path_milli: 600,
                console_dispatch_instr: 140_000,
                app_mix: HwMix::FLAT32,
                gui_mix: HwMix::WIN16,
                kernel_mix: HwMix::KERNEL,
                background_period: Some(freq.ms(40)),
                background_instr: 25_000,
                mouse_busy_wait: true,
                post_event_busy: freq.ms(2_500),
                cache_blocks: 1_280,
                page_in_instr_per_block: 1_800,
                copy_instr_per_block: 800,
                write_overhead_milli: 900,
            },
        }
    }

    /// The quantum in cycles.
    pub fn quantum(&self) -> SimDuration {
        self.clock_tick.mul(self.quantum_ticks as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_construct() {
        for p in OsProfile::ALL {
            let params = p.params();
            assert_eq!(params.profile, p);
            assert_eq!(params.freq.to_ms(params.clock_tick), 10.0);
            assert!(params.quantum() >= params.clock_tick);
        }
    }

    #[test]
    fn nt40_clock_interrupt_near_400_cycles() {
        let p = OsProfile::Nt40.params();
        let cycles = p.kernel_mix.cycles_for(p.clock_tick_instr);
        assert!(
            (350..=450).contains(&cycles),
            "NT 4.0 clock interrupt {cycles} cycles, expected ~400 (§2.5)"
        );
    }

    #[test]
    fn architectures_match_paper() {
        assert!(matches!(
            OsProfile::Nt351.params().win32,
            Win32Arch::UserServer { .. }
        ));
        assert!(matches!(
            OsProfile::Nt40.params().win32,
            Win32Arch::KernelMode { .. }
        ));
        assert!(matches!(
            OsProfile::Win95.params().win32,
            Win32Arch::Thunk16 { .. }
        ));
    }

    #[test]
    fn win95_quirks_enabled() {
        let p = OsProfile::Win95.params();
        assert!(p.mouse_busy_wait);
        assert!(!p.post_event_busy.is_zero());
        assert!(p.background_period.is_some());
        assert_eq!(p.gui_mix, HwMix::WIN16);
        let nt = OsProfile::Nt40.params();
        assert!(!nt.mouse_busy_wait);
        assert!(nt.post_event_busy.is_zero());
    }

    #[test]
    fn nt40_save_penalty_exceeds_nt351() {
        // Table 1: Save is the one op where NT 4.0 is slower than NT 3.51.
        assert!(
            OsProfile::Nt40.params().write_overhead_milli
                > OsProfile::Nt351.params().write_overhead_milli
        );
    }

    #[test]
    fn display_and_tags() {
        assert_eq!(OsProfile::Nt40.to_string(), "Windows NT 4.0");
        assert_eq!(OsProfile::Win95.tag(), "win95");
    }
}
