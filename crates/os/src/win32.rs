//! The Win32 service cost engine.
//!
//! Translates abstract work requests (computes, API calls, GDI batches,
//! interrupts, I/O paths) into [`WorkPacket`]s — concrete cycle and
//! hardware-event charges — according to the active OS personality. This is
//! where the paper's architectural stories become mechanisms:
//!
//! * NT 3.51's user-level Win32 server: each service crossing flushes both
//!   TLBs and refills the server's working set; the return crossing flushes
//!   again, so the client refills afterwards (§5.3).
//! * NT 4.0's kernel-mode Win32: a mode switch, no flush, a small fixed TLB
//!   dilution per call.
//! * Windows 95's 16-bit thunks: transport and service run in the
//!   segment-load-heavy [`HwMix::WIN16`] mix (§4).

use latlab_hw::{EventCounts, HwEvent, HwMix, MixAccumulator, TlbPair, WorkCharge};

use crate::profile::{OsParams, Win32Arch};
use crate::program::{ComputeSpec, MixClass};
use crate::sweep::SweptParam;

/// What a packet of work represents, for attribution and debugging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkKind {
    /// Application compute.
    App,
    /// System-API service work.
    Api,
    /// Hardware interrupt handling.
    Interrupt,
    /// Context switch.
    ContextSwitch,
    /// I/O path CPU work (cache copies, page-in bookkeeping).
    Io,
    /// OS background activity.
    Background,
    /// Busy-wait quirk work (Windows 95 mouse spin, post-event lag).
    Spin,
}

/// A fully costed, schedulable piece of CPU work.
#[derive(Clone, Debug)]
pub struct WorkPacket {
    /// Cycle cost.
    pub cycles: u64,
    /// Hardware events generated over those cycles.
    pub events: EventCounts,
    /// Attribution.
    pub kind: WorkKind,
}

impl WorkPacket {
    fn from_charge(charge: WorkCharge, kind: WorkKind) -> Self {
        WorkPacket {
            cycles: charge.cycles,
            events: charge.events,
            kind,
        }
    }
}

/// The cost engine: OS parameters plus live TLB state and per-mix
/// fractional-event accumulators.
///
/// `Clone` captures the complete costing state (TLB occupancy, fractional
/// remainders, pending read mask), so a cloned engine continues
/// bit-identically — whole-machine snapshots rely on this.
#[derive(Clone, Debug)]
pub struct CostEngine {
    params: OsParams,
    tlb: TlbPair,
    acc_app: MixAccumulator,
    acc_gui: MixAccumulator,
    acc_kernel: MixAccumulator,
    /// Swept parameters consulted since the last
    /// [`CostEngine::take_param_reads`], as [`SweptParam::bit`] flags. The
    /// kernel drains this into its first-read watermark table with a
    /// conservative-early timestamp (see `crate::sweep`).
    reads: u8,
}

impl CostEngine {
    /// Creates an engine for a personality with a cold TLB.
    pub fn new(params: OsParams) -> Self {
        CostEngine {
            params,
            tlb: TlbPair::pentium(),
            acc_app: MixAccumulator::new(),
            acc_gui: MixAccumulator::new(),
            acc_kernel: MixAccumulator::new(),
            reads: 0,
        }
    }

    /// The active parameters.
    pub fn params(&self) -> &OsParams {
        &self.params
    }

    /// Replaces the parameter set (sweep forks re-point a restored engine
    /// at the swept value). Costing state is untouched.
    pub fn set_params(&mut self, params: OsParams) {
        self.params = params;
    }

    /// Returns and clears the mask of swept parameters read since the last
    /// call.
    pub fn take_param_reads(&mut self) -> u8 {
        std::mem::take(&mut self.reads)
    }

    /// Resolves a [`MixClass`] to the personality's concrete mix.
    pub fn mix_for(&self, class: MixClass) -> HwMix {
        match class {
            MixClass::App => self.params.app_mix,
            MixClass::Gui | MixClass::GuiText | MixClass::GuiDraw => self.params.gui_mix,
            MixClass::Kernel => self.params.kernel_mix,
            MixClass::Raw(m) => m,
        }
    }

    fn charge_mix(&mut self, class: MixClass, instructions: u64) -> WorkCharge {
        let mix = self.mix_for(class);
        let acc = match class {
            MixClass::App => &mut self.acc_app,
            MixClass::Gui | MixClass::GuiText | MixClass::GuiDraw => &mut self.acc_gui,
            MixClass::Kernel | MixClass::Raw(_) => &mut self.acc_kernel,
        };
        acc.charge(&mix, instructions)
    }

    /// Applies the personality's GUI path-length factor.
    fn gui_instr(&mut self, instructions: u64) -> u64 {
        self.reads |= SweptParam::GuiPathMilli.bit();
        instructions * self.params.gui_path_milli / 1_000
    }

    /// Adds TLB-touch misses (and their cycle penalties) to a charge.
    fn add_tlb_touch(&mut self, charge: &mut WorkCharge, code_pages: u32, data_pages: u32) {
        let (im, dm) = self.tlb.touch(code_pages, data_pages);
        self.add_tlb_misses(charge, im as u64, dm as u64);
    }

    fn add_tlb_misses(&mut self, charge: &mut WorkCharge, im: u64, dm: u64) {
        charge.events.add(HwEvent::ItlbMisses, im);
        charge.events.add(HwEvent::DtlbMisses, dm);
        charge.cycles += (im + dm) * latlab_hw::costs::TLB_MISS_CYCLES;
    }

    /// Costs an application-requested compute.
    pub fn compute(&mut self, spec: &ComputeSpec) -> WorkPacket {
        let mut charge = self.compute_warm(spec);
        self.add_tlb_touch(&mut charge, spec.code_pages, spec.data_pages);
        WorkPacket::from_charge(charge, WorkKind::App)
    }

    /// The accumulator-only part of [`CostEngine::compute`]: path-length
    /// scaling plus the mix charge, without the TLB touch. When the spec's
    /// working set is already resident (see [`CostEngine::tlb_covers`]) the
    /// touch contributes no misses, no cycles, and no state change, so this
    /// is exactly `compute` minus the packet wrapper — the kernel's idle
    /// fast-forward uses it to cost steady-state idle iterations without
    /// the per-packet TLB bookkeeping.
    pub fn compute_warm(&mut self, spec: &ComputeSpec) -> WorkCharge {
        let instr = match spec.class {
            MixClass::Gui => self.gui_instr(spec.instructions),
            MixClass::GuiText => spec.instructions * self.params.gui_text_path_milli / 1_000,
            MixClass::GuiDraw => {
                self.reads |= SweptParam::GdiPathMilli.bit();
                spec.instructions * self.params.gdi_path_milli / 1_000
            }
            _ => spec.instructions,
        };
        self.charge_mix(spec.class, instr)
    }

    /// True when working sets of `code_pages`/`data_pages` are fully
    /// TLB-resident, i.e. a touch would return zero misses and leave the
    /// TLB state unchanged.
    pub fn tlb_covers(&self, code_pages: u32, data_pages: u32) -> bool {
        self.tlb.itlb.resident() >= code_pages && self.tlb.dtlb.resident() >= data_pages
    }

    /// Costs a hardware interrupt handler of `instructions`.
    pub fn interrupt(&mut self, instructions: u64) -> WorkPacket {
        let mut charge = self.charge_mix(MixClass::Kernel, instructions);
        charge.events.add(HwEvent::HardwareInterrupts, 1);
        // Interrupt handlers run on whatever address space is active and
        // touch a small kernel working set.
        self.add_tlb_touch(&mut charge, 3, 4);
        WorkPacket::from_charge(charge, WorkKind::Interrupt)
    }

    /// Costs non-interrupt kernel work of `instructions`.
    pub fn kernel_work(&mut self, instructions: u64, kind: WorkKind) -> WorkPacket {
        let mut charge = self.charge_mix(MixClass::Kernel, instructions);
        self.add_tlb_touch(&mut charge, 4, 6);
        WorkPacket::from_charge(charge, kind)
    }

    /// Costs a context switch between processes. On the Pentium this
    /// reloads CR3 and flushes both TLBs.
    pub fn context_switch(&mut self) -> WorkPacket {
        let charge = self.charge_mix(MixClass::Kernel, self.params.context_switch_instr);
        self.tlb.flush();
        WorkPacket::from_charge(charge, WorkKind::ContextSwitch)
    }

    /// Costs one Win32 API service of `service_instr` GUI-side instructions
    /// touching `(code, data)` service pages, including the architectural
    /// crossing.
    pub fn api_service(
        &mut self,
        service_instr: u64,
        service_pages: (u32, u32),
    ) -> Vec<WorkPacket> {
        let mut packets = Vec::with_capacity(3);
        self.reads |= SweptParam::CrossingInstr.bit();
        let service_instr = self.gui_instr(service_instr);
        match self.params.win32 {
            Win32Arch::UserServer {
                server_code_pages,
                server_data_pages,
            } => {
                // Client → server LPC: syscall, transport, CR3 switch.
                let send = self.charge_mix(
                    MixClass::Kernel,
                    self.params.syscall_instr + self.params.crossing_instr,
                );
                packets.push(WorkPacket::from_charge(send, WorkKind::Api));
                self.tlb.flush();
                // Server-side service: refill the server working set.
                let mut work = self.charge_mix(MixClass::Gui, service_instr);
                self.add_tlb_touch(
                    &mut work,
                    server_code_pages + service_pages.0,
                    server_data_pages + service_pages.1,
                );
                packets.push(WorkPacket::from_charge(work, WorkKind::Api));
                // Server → client return: another CR3 switch; the client
                // refills its own working set as it resumes.
                self.tlb.flush();
                let ret = self.charge_mix(MixClass::Kernel, self.params.crossing_instr / 2);
                packets.push(WorkPacket::from_charge(ret, WorkKind::Api));
            }
            Win32Arch::KernelMode {
                extra_itlb,
                extra_dtlb,
            } => {
                let mut entry = self.charge_mix(
                    MixClass::Kernel,
                    self.params.syscall_instr + self.params.crossing_instr,
                );
                self.add_tlb_misses(&mut entry, extra_itlb as u64, extra_dtlb as u64);
                packets.push(WorkPacket::from_charge(entry, WorkKind::Api));
                let mut work = self.charge_mix(MixClass::Gui, service_instr);
                self.add_tlb_touch(&mut work, service_pages.0, service_pages.1);
                packets.push(WorkPacket::from_charge(work, WorkKind::Api));
            }
            Win32Arch::Thunk16 {
                extra_itlb,
                extra_dtlb,
            } => {
                // The thunk transport itself runs in 16-bit-style code.
                let mut entry = self.charge_mix(
                    MixClass::Gui,
                    self.params.syscall_instr + self.params.crossing_instr,
                );
                self.add_tlb_misses(&mut entry, extra_itlb as u64, extra_dtlb as u64);
                packets.push(WorkPacket::from_charge(entry, WorkKind::Api));
                let mut work = self.charge_mix(MixClass::Gui, service_instr);
                self.add_tlb_touch(&mut work, service_pages.0, service_pages.1);
                packets.push(WorkPacket::from_charge(work, WorkKind::Api));
            }
        }
        packets
    }

    /// Costs a GDI batch flush of `ops` accumulated drawing operations.
    /// Drawing uses the personality's GDI path factor, not the USER-chrome
    /// factor — the two differ on Windows 95 (compact 16-bit GDI vs.
    /// thunk-heavy USER).
    pub fn gdi_flush(&mut self, ops: u32) -> Vec<WorkPacket> {
        self.reads |= SweptParam::GdiPathMilli.bit() | SweptParam::GuiPathMilli.bit();
        let service = self.params.gdi_op_instr * ops as u64 * self.params.gdi_path_milli
            / self.params.gui_path_milli.max(1);
        // Drawing touches framebuffer/bitmap data proportional to batch size.
        let data_pages = 8 + (ops / 2).min(48);
        self.api_service(service, (10, data_pages))
    }

    /// Costs the client-side buffering of GDI operations (no crossing).
    pub fn gdi_buffer(&mut self, ops: u32) -> WorkPacket {
        let charge = self.charge_mix(MixClass::App, 150 * ops as u64);
        WorkPacket::from_charge(charge, WorkKind::App)
    }

    /// Costs the CPU side of a read: cache-hit copies plus page-in
    /// bookkeeping for missed blocks.
    pub fn read_cpu(&mut self, hit_blocks: u64, miss_blocks: u64) -> Vec<WorkPacket> {
        let instr = self.params.syscall_instr
            + hit_blocks * self.params.copy_instr_per_block
            + miss_blocks * self.params.page_in_instr_per_block;
        let mut charge = self.charge_mix(MixClass::Kernel, instr);
        // Copies touch the destination buffer.
        let touched = ((hit_blocks + miss_blocks).min(32)) as u32;
        self.add_tlb_touch(&mut charge, 4, 6 + touched);
        vec![WorkPacket::from_charge(charge, WorkKind::Io)]
    }

    /// Costs the CPU side of a write-through write of `blocks` blocks.
    pub fn write_cpu(&mut self, blocks: u64) -> Vec<WorkPacket> {
        let base = self.params.syscall_instr
            + blocks * (self.params.copy_instr_per_block + self.params.page_in_instr_per_block);
        self.reads |= SweptParam::WriteOverheadMilli.bit();
        let instr = base * self.params.write_overhead_milli / 1_000;
        let mut charge = self.charge_mix(MixClass::Kernel, instr);
        let touched = (blocks.min(32)) as u32;
        self.add_tlb_touch(&mut charge, 4, 6 + touched);
        vec![WorkPacket::from_charge(charge, WorkKind::Io)]
    }

    /// Costs a slice of busy-wait spin (quirk states), `cycles` long.
    pub fn spin(&mut self, cycles: u64) -> WorkPacket {
        // Spin loops are tight 16-bit polling code on Windows 95; the exact
        // mix is irrelevant to latency (it is pure occupancy), so charge the
        // kernel mix's event rates scaled to the requested cycles.
        let mix = self.params.kernel_mix;
        let instr = cycles * 1_000 / mix.cpi_milli.max(1);
        let charge = self.acc_kernel.charge(&mix, instr);
        WorkPacket {
            cycles,
            events: charge.events,
            kind: WorkKind::Spin,
        }
    }

    /// Direct TLB access for tests and the kernel.
    pub fn tlb_mut(&mut self) -> &mut TlbPair {
        &mut self.tlb
    }

    /// Captures the engine's mutable state (TLB occupancy plus the
    /// fractional-event remainders of every mix accumulator), so a
    /// trial-costed packet can be rolled back with
    /// [`CostEngine::restore`]. Used by the kernel's idle fast-forward,
    /// which must not perturb the accumulators when the next iteration
    /// turns out not to fit before the event horizon.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            tlb: self.tlb,
            acc_app: self.acc_app.clone(),
            acc_gui: self.acc_gui.clone(),
            acc_kernel: self.acc_kernel.clone(),
        }
    }

    /// Restores state captured by [`CostEngine::snapshot`].
    pub fn restore(&mut self, snap: CostSnapshot) {
        self.tlb = snap.tlb;
        self.acc_app = snap.acc_app;
        self.acc_gui = snap.acc_gui;
        self.acc_kernel = snap.acc_kernel;
    }
}

/// Rollback state for [`CostEngine::snapshot`]/[`CostEngine::restore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostSnapshot {
    tlb: TlbPair,
    acc_app: MixAccumulator,
    acc_gui: MixAccumulator,
    acc_kernel: MixAccumulator,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OsProfile;

    fn engine(p: OsProfile) -> CostEngine {
        CostEngine::new(p.params())
    }

    fn total(packets: &[WorkPacket]) -> (u64, EventCounts) {
        let mut cycles = 0;
        let mut events = EventCounts::ZERO;
        for p in packets {
            cycles += p.cycles;
            events.accumulate(&p.events);
        }
        (cycles, events)
    }

    #[test]
    fn nt351_service_flushes_and_refills() {
        let mut e = engine(OsProfile::Nt351);
        // Warm the TLB as an application would.
        let warm = e.compute(&ComputeSpec::app(100_000));
        assert!(warm.events.tlb_misses() > 0);
        // A service call flushes; misses appear in the service packets.
        let (_, ev) = total(&e.api_service(10_000, (8, 8)));
        assert!(
            ev.tlb_misses() >= 60,
            "user-server crossing should refill a large working set, saw {}",
            ev.tlb_misses()
        );
        // And the application refills afterwards.
        let after = e.compute(&ComputeSpec::app(100_000));
        assert!(after.events.tlb_misses() >= 60);
    }

    #[test]
    fn nt40_service_is_cheaper_and_does_not_flush() {
        let mut e40 = engine(OsProfile::Nt40);
        let mut e351 = engine(OsProfile::Nt351);
        // Warm both.
        e40.compute(&ComputeSpec::app(100_000));
        e351.compute(&ComputeSpec::app(100_000));
        let (c40, ev40) = total(&e40.api_service(10_000, (8, 8)));
        let (c351, ev351) = total(&e351.api_service(10_000, (8, 8)));
        assert!(c40 < c351, "NT 4.0 service {c40} !< NT 3.51 {c351}");
        assert!(ev40.tlb_misses() < ev351.tlb_misses());
        // NT 4.0 app work after the call stays warm.
        let after = e40.compute(&ComputeSpec::app(100_000));
        let steady = HwMix::FLAT32.events_for(100_000).tlb_misses();
        assert!(
            after.events.tlb_misses() <= steady + 5,
            "NT 4.0 call should not flush the app working set"
        );
    }

    #[test]
    fn win95_service_generates_segment_loads() {
        let mut e = engine(OsProfile::Win95);
        let (_, ev) = total(&e.api_service(10_000, (8, 8)));
        assert!(
            ev.get(HwEvent::SegmentLoads) > 100,
            "16-bit thunked service must load segments, saw {}",
            ev.get(HwEvent::SegmentLoads)
        );
        assert!(ev.get(HwEvent::UnalignedAccesses) > 100);
    }

    #[test]
    fn gui_path_factor_scales_compute() {
        let mut e40 = engine(OsProfile::Nt40);
        let mut e351 = engine(OsProfile::Nt351);
        // Warm TLBs so the comparison is pure path length.
        for e in [&mut e40, &mut e351] {
            e.compute(&ComputeSpec::gui(100_000));
        }
        let c40 = e40.compute(&ComputeSpec::gui(1_000_000)).cycles;
        let c351 = e351.compute(&ComputeSpec::gui(1_000_000)).cycles;
        let ratio = c351 as f64 / c40 as f64;
        assert!(
            (1.25..=1.35).contains(&ratio),
            "NT 3.51 GUI path factor should be ~1.3×, got {ratio:.3}"
        );
    }

    #[test]
    fn context_switch_flushes_tlb() {
        let mut e = engine(OsProfile::Nt40);
        e.compute(&ComputeSpec::app(100_000));
        let warm = e.compute(&ComputeSpec::app(10_000));
        assert_eq!(
            warm.events.tlb_misses(),
            HwMix::FLAT32.events_for(10_000).tlb_misses()
        );
        e.context_switch();
        let cold = e.compute(&ComputeSpec::app(10_000));
        assert!(cold.events.tlb_misses() > warm.events.tlb_misses() + 50);
    }

    #[test]
    fn interrupt_counts_hardware_interrupt() {
        let mut e = engine(OsProfile::Nt40);
        let p = e.interrupt(250);
        assert_eq!(p.events.get(HwEvent::HardwareInterrupts), 1);
        assert_eq!(p.kind, WorkKind::Interrupt);
    }

    #[test]
    fn write_overhead_applies() {
        let mut e40 = engine(OsProfile::Nt40);
        let mut e351 = engine(OsProfile::Nt351);
        let (c40, _) = total(&e40.write_cpu(100));
        let (c351, _) = total(&e351.write_cpu(100));
        assert!(
            c40 > c351,
            "NT 4.0 write path must cost more (Table 1 Save)"
        );
    }

    #[test]
    fn spin_charges_requested_cycles() {
        let mut e = engine(OsProfile::Win95);
        let p = e.spin(12_345);
        assert_eq!(p.cycles, 12_345);
        assert_eq!(p.kind, WorkKind::Spin);
    }

    #[test]
    fn snapshot_restore_undoes_trial_compute() {
        let mut e = engine(OsProfile::Nt40);
        // Put the accumulators mid-phase so remainders are non-trivial.
        e.compute(&ComputeSpec::app(12_345));
        let snap = e.snapshot();
        let trial = e.compute(&ComputeSpec::app(777));
        e.restore(snap);
        let replay = e.compute(&ComputeSpec::app(777));
        assert_eq!(trial.cycles, replay.cycles);
        assert_eq!(trial.events, replay.events);
    }

    #[test]
    fn gdi_flush_scales_with_ops() {
        let mut e = engine(OsProfile::Nt40);
        let (c1, _) = total(&e.gdi_flush(1));
        let (c16, _) = total(&e.gdi_flush(16));
        assert!(c16 > c1 * 4, "16-op flush should cost much more than 1-op");
    }
}
