//! Conversion between the OS-level API log and wire-level trace records.
//!
//! `latlab-trace` deliberately knows nothing about OS types: its
//! [`ApiRecord`] is plain integers. This module owns the packing — entry
//! and outcome discriminants, and the [`Message`] payload squeezed into
//! the record's two payload words — and the unpacking used by trace
//! inspection and replay. Both directions are total over values this
//! crate produces; unpacking returns [`TraceError::Corrupt`] on anything
//! else, since trace files are external input.

use latlab_des::SimTime;
use latlab_trace::{ApiRecord, TraceError};

use crate::apilog::{ApiEntry, ApiLogEntry, ApiOutcome};
use crate::msgq::{InputKind, KeySym, Message, MouseButton};
use crate::program::ThreadId;

// Entry discriminants.
const ENTRY_GET: u8 = 0;
const ENTRY_PEEK: u8 = 1;

// Outcome discriminants.
const OUT_EMPTY: u8 = 0;
const OUT_BLOCKED: u8 = 1;
const OUT_RETRIEVED: u8 = 2;

// Message tags (low byte of payload word `a`).
const MSG_INPUT: u64 = 0;
const MSG_PAINT: u64 = 1;
const MSG_TIMER: u64 = 2;
const MSG_QUEUESYNC: u64 = 3;
const MSG_IO_COMPLETE: u64 = 4;
const MSG_USER: u64 = 5;

// KeySym encoding: named keys get small codes; Char/Ctrl carry the code
// point above a flag bit.
const KEY_CHAR_FLAG: u64 = 1 << 24;
const KEY_CTRL_FLAG: u64 = 1 << 25;

fn pack_keysym(sym: KeySym) -> u64 {
    match sym {
        KeySym::Enter => 1,
        KeySym::Backspace => 2,
        KeySym::PageDown => 3,
        KeySym::PageUp => 4,
        KeySym::Up => 5,
        KeySym::Down => 6,
        KeySym::Left => 7,
        KeySym::Right => 8,
        KeySym::Escape => 9,
        KeySym::Char(c) => KEY_CHAR_FLAG | u64::from(u32::from(c)),
        KeySym::Ctrl(c) => KEY_CTRL_FLAG | u64::from(u32::from(c)),
    }
}

fn unpack_keysym(v: u64) -> Result<KeySym, TraceError> {
    let bad = TraceError::Corrupt {
        what: "invalid key symbol in API record",
    };
    if v & KEY_CHAR_FLAG != 0 {
        let code = u32::try_from(v & (KEY_CHAR_FLAG - 1)).map_err(|_| bad)?;
        return char::from_u32(code)
            .map(KeySym::Char)
            .ok_or(TraceError::Corrupt {
                what: "invalid key symbol in API record",
            });
    }
    if v & KEY_CTRL_FLAG != 0 {
        let code = u32::try_from(v & (KEY_CHAR_FLAG - 1)).map_err(|_| bad)?;
        return char::from_u32(code)
            .map(KeySym::Ctrl)
            .ok_or(TraceError::Corrupt {
                what: "invalid key symbol in API record",
            });
    }
    match v {
        1 => Ok(KeySym::Enter),
        2 => Ok(KeySym::Backspace),
        3 => Ok(KeySym::PageDown),
        4 => Ok(KeySym::PageUp),
        5 => Ok(KeySym::Up),
        6 => Ok(KeySym::Down),
        7 => Ok(KeySym::Left),
        8 => Ok(KeySym::Right),
        9 => Ok(KeySym::Escape),
        _ => Err(bad),
    }
}

// InputKind encoding: tag in the low 3 bits, payload above.
fn pack_input_kind(kind: InputKind) -> u64 {
    match kind {
        InputKind::Key(sym) => pack_keysym(sym) << 3,
        InputKind::MouseDown(b) => 1 | (u64::from(b == MouseButton::Right) << 3),
        InputKind::MouseUp(b) => 2 | (u64::from(b == MouseButton::Right) << 3),
        InputKind::Packet(size) => 3 | (u64::from(size) << 3),
    }
}

fn unpack_input_kind(v: u64) -> Result<InputKind, TraceError> {
    let payload = v >> 3;
    let button = || {
        if payload == 1 {
            MouseButton::Right
        } else {
            MouseButton::Left
        }
    };
    match v & 0x7 {
        0 => Ok(InputKind::Key(unpack_keysym(payload)?)),
        1 => Ok(InputKind::MouseDown(button())),
        2 => Ok(InputKind::MouseUp(button())),
        3 => u32::try_from(payload)
            .map(InputKind::Packet)
            .map_err(|_| TraceError::Corrupt {
                what: "packet size exceeds 32 bits in API record",
            }),
        _ => Err(TraceError::Corrupt {
            what: "invalid input kind in API record",
        }),
    }
}

/// Packs a retrieved message into the record's `(a, b)` payload words:
/// the message tag in `a`'s low byte (input-kind bits above it) and the
/// numeric payload in `b`.
fn pack_message(msg: Message) -> (u64, u64) {
    match msg {
        Message::Input { id, kind } => (MSG_INPUT | (pack_input_kind(kind) << 8), id),
        Message::Paint => (MSG_PAINT, 0),
        Message::Timer => (MSG_TIMER, 0),
        Message::QueueSync => (MSG_QUEUESYNC, 0),
        Message::IoComplete(token) => (MSG_IO_COMPLETE, u64::from(token)),
        Message::User(code) => (MSG_USER, u64::from(code)),
    }
}

fn unpack_message(a: u64, b: u64) -> Result<Message, TraceError> {
    match a & 0xff {
        MSG_INPUT => Ok(Message::Input {
            id: b,
            kind: unpack_input_kind(a >> 8)?,
        }),
        MSG_PAINT => Ok(Message::Paint),
        MSG_TIMER => Ok(Message::Timer),
        MSG_QUEUESYNC => Ok(Message::QueueSync),
        MSG_IO_COMPLETE => {
            u32::try_from(b)
                .map(Message::IoComplete)
                .map_err(|_| TraceError::Corrupt {
                    what: "I/O token exceeds 32 bits in API record",
                })
        }
        MSG_USER => u32::try_from(b)
            .map(Message::User)
            .map_err(|_| TraceError::Corrupt {
                what: "user message code exceeds 32 bits in API record",
            }),
        _ => Err(TraceError::Corrupt {
            what: "unknown message tag in API record",
        }),
    }
}

/// Flattens an API log entry to its wire form.
pub fn to_record(e: &ApiLogEntry) -> ApiRecord {
    let entry = match e.entry {
        ApiEntry::GetMessage => ENTRY_GET,
        ApiEntry::PeekMessage => ENTRY_PEEK,
    };
    let (outcome, a, b) = match e.outcome {
        ApiOutcome::Empty => (OUT_EMPTY, 0, 0),
        ApiOutcome::Blocked => (OUT_BLOCKED, 0, 0),
        ApiOutcome::Retrieved(msg) => {
            let (a, b) = pack_message(msg);
            (OUT_RETRIEVED, a, b)
        }
    };
    ApiRecord {
        at_cycles: e.at.cycles(),
        thread: e.thread.0,
        entry,
        outcome,
        a,
        b,
        queue_len: u32::try_from(e.queue_len_after).unwrap_or(u32::MAX),
    }
}

/// Reconstructs an API log entry from its wire form.
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] on unknown discriminants or
/// unrepresentable payloads — wire records come from files.
pub fn from_record(r: &ApiRecord) -> Result<ApiLogEntry, TraceError> {
    let entry = match r.entry {
        ENTRY_GET => ApiEntry::GetMessage,
        ENTRY_PEEK => ApiEntry::PeekMessage,
        _ => {
            return Err(TraceError::Corrupt {
                what: "unknown API entry discriminant",
            })
        }
    };
    let outcome = match r.outcome {
        OUT_EMPTY => ApiOutcome::Empty,
        OUT_BLOCKED => ApiOutcome::Blocked,
        OUT_RETRIEVED => ApiOutcome::Retrieved(unpack_message(r.a, r.b)?),
        _ => {
            return Err(TraceError::Corrupt {
                what: "unknown API outcome discriminant",
            })
        }
    };
    Ok(ApiLogEntry {
        at: SimTime::from_cycles(r.at_cycles),
        thread: ThreadId(r.thread),
        entry,
        outcome,
        queue_len_after: r.queue_len as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        let mut msgs = vec![
            Message::Paint,
            Message::Timer,
            Message::QueueSync,
            Message::IoComplete(0),
            Message::IoComplete(u32::MAX),
            Message::User(7),
        ];
        let keys = [
            KeySym::Char('a'),
            KeySym::Char('\u{10ffff}'),
            KeySym::Ctrl('s'),
            KeySym::Enter,
            KeySym::Backspace,
            KeySym::PageDown,
            KeySym::PageUp,
            KeySym::Up,
            KeySym::Down,
            KeySym::Left,
            KeySym::Right,
            KeySym::Escape,
        ];
        for (i, k) in keys.into_iter().enumerate() {
            msgs.push(Message::Input {
                id: i as u64 * 1000,
                kind: InputKind::Key(k),
            });
        }
        for b in [MouseButton::Left, MouseButton::Right] {
            msgs.push(Message::Input {
                id: 1,
                kind: InputKind::MouseDown(b),
            });
            msgs.push(Message::Input {
                id: 2,
                kind: InputKind::MouseUp(b),
            });
        }
        msgs.push(Message::Input {
            id: u64::MAX,
            kind: InputKind::Packet(u32::MAX),
        });
        msgs
    }

    #[test]
    fn every_entry_round_trips() {
        let mut entries = vec![
            (ApiEntry::GetMessage, ApiOutcome::Blocked),
            (ApiEntry::PeekMessage, ApiOutcome::Empty),
        ];
        for msg in all_messages() {
            entries.push((ApiEntry::GetMessage, ApiOutcome::Retrieved(msg)));
            entries.push((ApiEntry::PeekMessage, ApiOutcome::Retrieved(msg)));
        }
        for (i, (entry, outcome)) in entries.into_iter().enumerate() {
            let e = ApiLogEntry {
                at: SimTime::from_cycles(i as u64 * 12_345),
                thread: ThreadId(i as u32 % 5),
                entry,
                outcome,
                queue_len_after: i % 9,
            };
            let back = from_record(&to_record(&e)).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn junk_discriminants_are_errors() {
        let base = to_record(&ApiLogEntry {
            at: SimTime::ZERO,
            thread: ThreadId(0),
            entry: ApiEntry::GetMessage,
            outcome: ApiOutcome::Blocked,
            queue_len_after: 0,
        });
        let bad_entry = ApiRecord { entry: 9, ..base };
        assert!(from_record(&bad_entry).is_err());
        let bad_outcome = ApiRecord { outcome: 9, ..base };
        assert!(from_record(&bad_outcome).is_err());
        let bad_msg = ApiRecord {
            outcome: 2,
            a: 0xff,
            ..base
        };
        assert!(from_record(&bad_msg).is_err());
        // A surrogate code point is not a char.
        let bad_key = ApiRecord {
            outcome: 2,
            a: ((1u64 << 24) | 0xd800) << 11,
            b: 0,
            ..base
        };
        assert!(from_record(&bad_key).is_err());
    }
}
