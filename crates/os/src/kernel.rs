//! The simulated machine: CPU, kernel, scheduler, devices and threads.
//!
//! [`Machine`] is a deterministic discrete-event simulation of one personal
//! computer running one OS personality. Threads execute [`Program`] state
//! machines; their work is costed by the [`CostEngine`] and charged against
//! simulated time and the hardware [`CounterBank`]. User input arrives as
//! scheduled hardware events, flows through the interrupt/dispatch path into
//! per-thread message queues, and is retrieved via
//! `GetMessage`/`PeekMessage` — producing the [`ApiLog`] the measurement
//! layer consumes.
//!
//! The machine records ground truth (true event spans, true busy intervals)
//! for methodology validation only; see [`crate::ground_truth`].

use std::collections::VecDeque;

use latlab_des::{EventQueue, SimDuration, SimRng, SimTime};
use latlab_faults::{FaultKind, FaultPlan, FaultStats};
use latlab_hw::disk::BLOCK_SIZE;
use latlab_hw::{
    CounterBank, CounterError, CounterId, Disk, EventCounts, HwEvent, Ring, WorkCharge,
};
use latlab_trace::{Record as TraceRecord, TraceSink, VecSink};

use crate::apilog::{ApiEntry, ApiLog, ApiLogEntry, ApiOutcome};
use crate::bufcache::{BlockKey, BufferCache};
use crate::fs::{FileId, Fs};
use crate::ground_truth::GroundTruth;
use crate::msgq::{InputKind, Message, MessageQueue};
use crate::profile::OsParams;
use crate::program::{
    Action, ApiCall, ApiReply, AppTraits, ComputeSpec, GtMark, Priority, ProcessSpec, Program,
    StepCtx, ThreadId,
};
use crate::sched::Scheduler;
use crate::statelog::{IoKind, StateLog, Transition};
use crate::sweep::{ParamWatermarks, SweptParam};
use crate::win32::{CostEngine, WorkKind, WorkPacket};

/// Maximum zero-cost program steps before the kernel declares a runaway.
const RUNAWAY_STEP_LIMIT: u32 = 10_000;

/// Cost of `ApiCall::ReadCycleCounter`: RDTSC plus a little glue — ~10
/// instructions of app code. Shared by the call path and the idle
/// fast-forward, which must replay the exact same cost.
const READ_CYCLES_SPEC: ComputeSpec = ComputeSpec {
    instructions: 10,
    class: crate::program::MixClass::App,
    code_pages: 1,
    data_pages: 1,
};

/// Cost of `ApiCall::Emit`: a buffered store of one trace record (§2.3's
/// `generate_trace_record`) — ~50 instructions. Shared with fast-forward.
const EMIT_SPEC: ComputeSpec = ComputeSpec {
    instructions: 50,
    class: crate::program::MixClass::App,
    code_pages: 1,
    data_pages: 2,
};

/// Counters for the idle fast-forward engine (diagnostic only; exposed via
/// [`Machine::fast_forward_stats`]).
#[derive(Clone, Default)]
struct FastForwardStats {
    /// Batches committed (calls that fast-forwarded at least one iteration).
    batches: u64,
    /// Iterations costed on the warm path ([`CostEngine::compute_warm`],
    /// TLB verified resident).
    warm_iters: u64,
    /// Iterations costed through the generic [`CostEngine::compute`] path
    /// (cold TLB at batch entry).
    cold_iters: u64,
}

/// `Message::User` payload delivered to a window losing input focus.
pub const FOCUS_LOST: u32 = 0xF0C0_0000;
/// `Message::User` payload delivered to a window gaining input focus.
pub const FOCUS_GAINED: u32 = 0xF0C0_0001;

/// Hardware/OS events the machine processes.
#[derive(Clone, Debug)]
enum MachineEvent {
    /// Periodic clock interrupt.
    ClockTick,
    /// User input arriving at the hardware.
    Input { id: u64, kind: InputKind },
    /// A synchronous disk request completed.
    DiskDone { thread: ThreadId, bytes: u64 },
    /// An asynchronous disk request completed.
    AsyncIoDone {
        thread: ThreadId,
        token: u32,
        kind: IoKind,
    },
    /// OS-internal background activity burst.
    Background,
    /// An externally scheduled message post to the focused thread.
    PostToFocus { msg: Message },
    /// A scheduled input-focus change (the user alt-tabs between windows).
    FocusChange { target: ThreadId },
    /// One interrupt of an injected interrupt storm (fault plan).
    FaultStorm { idx: usize },
    /// One injected page-fault burst (fault plan).
    FaultPage { idx: usize },
}

/// Why a thread is not running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// Runnable (queued in the scheduler).
    Ready,
    /// Blocked in `GetMessage` on an empty queue.
    BlockedMsg,
    /// Blocked on synchronous disk I/O.
    BlockedIo,
    /// Sleeping until a clock tick at or after the stored time.
    Sleeping(SimTime),
    /// Terminated.
    Exited,
}

/// What happens when a thread's current work packets drain.
#[derive(Clone, Debug)]
enum Outcome {
    /// Deliver a reply and keep running.
    Reply(ApiReply),
    /// Resolve a `GetMessage` against the queue.
    GetMessage,
    /// Resolve a `PeekMessage` against the queue.
    PeekMessage,
    /// Begin blocking disk I/O (zero duration means fully cached).
    Io {
        disk_time: SimDuration,
        bytes: u64,
        kind: IoKind,
    },
    /// Launch non-blocking disk I/O; completion posts `Message::IoComplete`.
    AsyncIo {
        disk_time: SimDuration,
        token: u32,
        kind: IoKind,
    },
    /// Block until a clock tick at or after now + the duration.
    Sleep(SimDuration),
    /// Post a message.
    Post { target: ThreadId, msg: Message },
    /// Arm the periodic timer.
    SetTimer(SimDuration),
    /// Disarm the periodic timer.
    KillTimer,
    /// Reply with the cycle counter at resolution time.
    ReadCycles,
    /// Append to the emission buffer.
    Emit(u64),
}

/// How a program's requested call was handled by the kernel.
enum CallDisposition {
    /// Costed work was installed as the thread's exec.
    Work,
    /// Handled inline at zero cost; step the program again.
    Inline,
    /// The thread gave up the CPU (yield).
    Deschedule,
}

/// In-flight costed work.
#[derive(Clone, Debug)]
struct Exec {
    packets: VecDeque<PacketProgress>,
    outcome: Outcome,
}

#[derive(Clone, Debug)]
struct PacketProgress {
    packet: WorkPacket,
    done: u64,
    charged: EventCounts,
}

impl Exec {
    fn new(packets: Vec<WorkPacket>, outcome: Outcome) -> Self {
        Exec {
            packets: packets
                .into_iter()
                .filter(|p| p.cycles > 0)
                .map(|packet| PacketProgress {
                    packet,
                    done: 0,
                    charged: EventCounts::ZERO,
                })
                .collect(),
            outcome,
        }
    }
}

/// Periodic application timer state.
#[derive(Clone, Copy, Debug)]
struct AppTimer {
    period: SimDuration,
    next_due: SimTime,
}

/// One simulated thread.
#[derive(Clone)]
struct ThreadSlot {
    id: ThreadId,
    name: &'static str,
    priority: Priority,
    traits: AppTraits,
    program: Box<dyn Program>,
    state: ThreadState,
    exec: Option<Exec>,
    pending_reply: ApiReply,
    msgq: MessageQueue,
    gdi_pending: u32,
    quantum_left: u64,
    cpu_cycles: u64,
    emitted: VecSink,
    retrieved_open: Vec<u64>,
    timer: Option<AppTimer>,
    zero_exec_streak: u32,
    /// A message was retrieved since the last block (gates the Windows 95
    /// post-event lag so it fires after real work, not at boot).
    handled_since_block: bool,
    /// The kind of the synchronous I/O the thread is blocked on, if any.
    pending_sync_io: Option<IoKind>,
}

/// First synthetic input id used for fault-injected duplicate deliveries.
/// Real input ids count up from zero; ids at or above this base never have
/// a ground-truth arrival, so the oracle ignores them by construction.
pub const DUP_INPUT_ID_BASE: u64 = 1 << 63;

/// A fault from the installed plan with its window resolved to cycles.
#[derive(Clone, Copy, Debug)]
struct ArmedFault {
    kind: FaultKind,
    start: SimTime,
    end: Option<SimTime>,
}

impl ArmedFault {
    fn active(&self, now: SimTime) -> bool {
        self.start <= now && self.end.is_none_or(|e| now < e)
    }
}

/// Kernel-side state for an installed [`FaultPlan`]: the armed faults,
/// one forked RNG stream per stochastic class (so classes perturb
/// independently of each other), and the injection counters.
#[derive(Clone, Debug)]
struct FaultEngine {
    faults: Vec<ArmedFault>,
    input_rng: SimRng,
    disk_rng: SimRng,
    sched_rng: SimRng,
    dup_next: u64,
    dup_pending: bool,
    stats: FaultStats,
}

/// Summary statistics a run exposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MachineStats {
    /// Context switches performed.
    pub context_switches: u64,
    /// Clock ticks handled.
    pub clock_ticks: u64,
    /// User inputs delivered.
    pub inputs_delivered: u64,
    /// Messages posted (all kinds).
    pub messages_posted: u64,
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use latlab_os::{
///     Action, ApiCall, ApiReply, ComputeSpec, InputKind, KeySym, Machine, OsProfile,
///     ProcessSpec, Program, StepCtx,
/// };
/// use latlab_des::{CpuFreq, SimTime};
///
/// // A minimal message-loop application.
/// #[derive(Clone)]
/// struct Echo(bool);
/// impl Program for Echo {
///     fn step(&mut self, ctx: &mut StepCtx) -> Action {
///         if std::mem::take(&mut self.0) {
///             if let ApiReply::Message(Some(_)) = ctx.reply {
///                 return Action::Compute(ComputeSpec::app(100_000));
///             }
///         }
///         self.0 = true;
///         Action::Call(ApiCall::GetMessage)
///     }
/// }
///
/// let freq = CpuFreq::PENTIUM_100;
/// let mut machine = Machine::new(OsProfile::Nt40.params());
/// let app = machine.spawn(ProcessSpec::app("echo"), Box::new(Echo(false)));
/// machine.set_focus(app);
/// let id = machine.schedule_input_at(
///     SimTime::ZERO + freq.ms(50),
///     InputKind::Key(KeySym::Char('a')),
/// );
/// machine.run_until(SimTime::ZERO + freq.ms(500));
/// let event = machine.ground_truth().event(id).unwrap();
/// assert!(event.true_latency().is_some());
/// ```
pub struct Machine {
    params: OsParams,
    now: SimTime,
    pending: EventQueue<MachineEvent>,
    threads: Vec<ThreadSlot>,
    sched: Scheduler,
    cost: CostEngine,
    counters: CounterBank,
    disk: Disk,
    fs: Fs,
    cache: BufferCache,
    apilog: ApiLog,
    statelog: StateLog,
    gt: GroundTruth,
    focus: Option<ThreadId>,
    network_sink: Option<ThreadId>,
    next_input_id: u64,
    last_input_at: SimTime,
    next_tick_at: SimTime,
    tick_index: u64,
    mouse_spin: bool,
    deferred_mouse: Vec<(u64, InputKind)>,
    lag_until: Option<SimTime>,
    sync_io_inflight: u32,
    async_io_inflight: u32,
    inputs_outstanding: u64,
    last_ran: Option<ThreadId>,
    stats: MachineStats,
    faults: Option<FaultEngine>,
    /// Idle fast-forward enabled (captured from the thread-local default at
    /// boot; see [`crate::fastforward`]).
    fastforward: bool,
    /// Fast-forward diagnostic counters.
    ff_stats: FastForwardStats,
    /// Scratch buffer for batched idle stamps (reused across batches to
    /// keep the fast-forward commit allocation-free).
    ff_stamps: Vec<u64>,
    /// Main-loop turns taken, for O(events) regression tests only — not
    /// part of the machine's observable state.
    loop_turns: u64,
    /// First-read watermarks of the sweepable cost parameters (see
    /// [`crate::sweep`]): the evidence the prefix-sharing sweep planner
    /// uses to prove a fork sound.
    watermarks: ParamWatermarks,
    /// Stamp records produced so far (every `Emit`, whether or not a tee
    /// is installed). Snapshots capture this so a resumed run knows where
    /// the original trace left off.
    stamp_records: u64,
    /// API-log records produced so far (same bookkeeping for the API tee).
    api_records: u64,
    /// Optional tee for idle-loop stamps: every `Emit` also lands here.
    stamp_sink: Option<Box<dyn TraceSink>>,
    /// Optional tee for the API log: every entry also lands here as a
    /// wire-level [`latlab_trace::ApiRecord`].
    api_sink: Option<Box<dyn TraceSink>>,
}

impl Machine {
    /// Boots a machine with the given OS personality. The first clock tick
    /// fires one tick period after power-on.
    pub fn new(params: OsParams) -> Self {
        let tick = params.clock_tick;
        let cache_blocks = params.cache_blocks;
        // The buffer cache is sized at boot: `cache_blocks` is consulted
        // before the simulation ever runs, so its watermark is time zero
        // and no fork may change it (the planner falls back to scratch).
        let mut watermarks = ParamWatermarks::new();
        watermarks.note(SweptParam::CacheBlocks, SimTime::ZERO);
        let mut pending = EventQueue::new();
        pending.schedule(SimTime::ZERO + tick, MachineEvent::ClockTick);
        if let Some(period) = params.background_period {
            pending.schedule(SimTime::ZERO + period, MachineEvent::Background);
        }
        Machine {
            cost: CostEngine::new(params.clone()),
            params,
            now: SimTime::ZERO,
            pending,
            threads: Vec::new(),
            sched: Scheduler::new(),
            counters: CounterBank::new(),
            disk: Disk::fujitsu_m1606(),
            fs: Fs::new(),
            cache: BufferCache::new(cache_blocks),
            apilog: ApiLog::new(),
            statelog: StateLog::new(),
            gt: GroundTruth::new(),
            focus: None,
            network_sink: None,
            next_input_id: 0,
            last_input_at: SimTime::ZERO,
            next_tick_at: SimTime::ZERO + tick,
            tick_index: 0,
            mouse_spin: false,
            deferred_mouse: Vec::new(),
            lag_until: None,
            sync_io_inflight: 0,
            async_io_inflight: 0,
            inputs_outstanding: 0,
            last_ran: None,
            stats: MachineStats::default(),
            faults: None,
            fastforward: crate::fastforward::default_enabled(),
            ff_stats: FastForwardStats::default(),
            ff_stamps: Vec::new(),
            loop_turns: 0,
            watermarks,
            stamp_records: 0,
            api_records: 0,
            stamp_sink: None,
            api_sink: None,
        }
    }

    // --- Configuration ----------------------------------------------------

    /// Registers a file with the simulated file system.
    pub fn register_file(&mut self, name: &'static str, size: u64, frag_blocks: u64) -> FileId {
        self.fs.create(name, size, frag_blocks)
    }

    /// Spawns a thread running `program`; it starts ready.
    pub fn spawn(&mut self, spec: ProcessSpec, program: Box<dyn Program>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        let quantum = self.params.quantum().cycles();
        self.threads.push(ThreadSlot {
            id,
            name: spec.name,
            priority: spec.priority,
            traits: spec.traits,
            program,
            state: ThreadState::Ready,
            exec: None,
            pending_reply: ApiReply::None,
            msgq: spec
                .queue_capacity
                .map(MessageQueue::with_capacity)
                .unwrap_or_default(),
            gdi_pending: 0,
            quantum_left: quantum,
            cpu_cycles: 0,
            emitted: VecSink::new(),
            retrieved_open: Vec::new(),
            timer: None,
            zero_exec_streak: 0,
            handled_since_block: false,
            pending_sync_io: None,
        });
        self.sched.enqueue(id, spec.priority);
        id
    }

    /// Directs user input to a thread.
    pub fn set_focus(&mut self, tid: ThreadId) {
        self.focus = Some(tid);
    }

    /// Directs network packets to a thread (the socket owner).
    pub fn bind_network(&mut self, tid: ThreadId) {
        self.network_sink = Some(tid);
    }

    /// Schedules a network packet arrival; same time-ordering rules as
    /// [`Machine::schedule_input_at`]. Returns the event id used for
    /// ground-truth correlation.
    pub fn schedule_packet_at(&mut self, at: SimTime, bytes: u32) -> u64 {
        self.schedule_input_at(at, InputKind::Packet(bytes))
    }

    /// Schedules a user input for hardware arrival at `at`, returning its
    /// input id. Inputs must be scheduled in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than a previously scheduled input or than
    /// the current simulation time.
    pub fn schedule_input_at(&mut self, at: SimTime, kind: InputKind) -> u64 {
        assert!(
            at >= self.last_input_at && at >= self.now,
            "inputs must be scheduled in time order"
        );
        self.last_input_at = at;
        let id = self.next_input_id;
        self.next_input_id += 1;
        self.inputs_outstanding += 1;
        self.pending.schedule(at, MachineEvent::Input { id, kind });
        id
    }

    /// Schedules a message post to the focused thread at `at` (the test
    /// driver's `WM_QUEUESYNC` injection path).
    pub fn schedule_post_to_focus(&mut self, at: SimTime, msg: Message) {
        assert!(at >= self.now, "posts must be scheduled in the future");
        self.pending.schedule(at, MachineEvent::PostToFocus { msg });
    }

    /// Schedules an input-focus change at `at` (the user switching windows);
    /// both windows receive `Message::User` focus notifications
    /// ([`FOCUS_LOST`]/[`FOCUS_GAINED`]).
    pub fn schedule_focus_change(&mut self, at: SimTime, target: ThreadId) {
        assert!(
            at >= self.now,
            "focus changes must be scheduled in the future"
        );
        self.pending
            .schedule(at, MachineEvent::FocusChange { target });
    }

    /// The thread currently holding input focus.
    pub fn focused(&self) -> Option<ThreadId> {
        self.focus
    }

    /// Looks up a registered file by name.
    pub fn find_file(&self, name: &str) -> Option<FileId> {
        self.fs.lookup(name)
    }

    /// Pre-loads a whole file into the buffer cache (warm-cache scenarios).
    pub fn prime_cache(&mut self, file: FileId) {
        let blocks = self.fs.size(file).div_ceil(BLOCK_SIZE);
        for b in 0..blocks {
            self.cache.insert(BlockKey {
                file: file.0,
                block: b,
            });
        }
    }

    /// Empties the buffer cache (cold-start scenarios).
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    /// Installs a fault plan. Faults become pure simulation events — the
    /// periodic classes (interrupt storms, page-fault bursts) schedule
    /// themselves on the event queue; the reactive classes (scheduler
    /// jitter, disk faults, input chaos) hook the corresponding kernel
    /// paths. All randomness comes from [`SimRng`] streams forked off the
    /// plan seed in deterministic simulation order, so a given plan on a
    /// given machine replays bit-identically.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        let freq = self.params.freq;
        let mut base = SimRng::new(plan.seed);
        let input_rng = base.fork();
        let disk_rng = base.fork();
        let sched_rng = base.fork();
        let faults: Vec<ArmedFault> = plan
            .faults
            .iter()
            .map(|f| ArmedFault {
                kind: f.kind,
                start: SimTime::ZERO + freq.ms(f.window.start_ms),
                end: f.window.end_ms.map(|e| SimTime::ZERO + freq.ms(e)),
            })
            .collect();
        for (idx, f) in faults.iter().enumerate() {
            let at = if f.start > self.now {
                f.start
            } else {
                self.now
            };
            match f.kind {
                FaultKind::InterruptStorm { period_us, .. } => {
                    self.pending
                        .schedule(at + freq.us(period_us), MachineEvent::FaultStorm { idx });
                }
                FaultKind::PageFaultBurst { period_ms, .. } => {
                    self.pending
                        .schedule(at + freq.ms(period_ms), MachineEvent::FaultPage { idx });
                }
                _ => {}
            }
        }
        self.faults = Some(FaultEngine {
            faults,
            input_rng,
            disk_rng,
            sched_rng,
            dup_next: DUP_INPUT_ID_BASE,
            dup_pending: false,
            stats: FaultStats::default(),
        });
    }

    /// Injection counters of the installed fault plan, if any.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| &f.stats)
    }

    // --- Observables ------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The OS parameters in force.
    pub fn params(&self) -> &OsParams {
        &self.params
    }

    /// The message-API interception log (§2.4).
    pub fn apilog(&self) -> &ApiLog {
        &self.apilog
    }

    /// The kernel state-transition log — the §6 system support for
    /// message-queue and I/O-queue monitoring.
    pub fn state_log(&self) -> &StateLog {
        &self.statelog
    }

    /// Whether asynchronous I/O is in flight (background activity per the
    /// paper's FSM assumptions).
    pub fn async_io_pending(&self) -> bool {
        self.async_io_inflight > 0
    }

    /// Simulator ground truth — validation only.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.gt
    }

    /// Configures a hardware event counter through the system-mode hook
    /// (the paper's measurement driver, §2.2).
    ///
    /// # Errors
    ///
    /// Propagates counter errors.
    pub fn configure_counter(&mut self, id: CounterId, event: HwEvent) -> Result<(), CounterError> {
        self.counters.configure(id, event, Ring::System)
    }

    /// Reads a hardware event counter through the system-mode hook.
    ///
    /// # Errors
    ///
    /// Propagates counter errors.
    pub fn read_counter(&self, id: CounterId) -> Result<u64, CounterError> {
        self.counters.read_event(id, Ring::System)
    }

    /// Reads the cycle counter (readable from anywhere).
    pub fn read_cycle_counter(&self) -> u64 {
        self.now.cycles()
    }

    /// Omniscient event totals; tests and validation only.
    pub fn counter_ground_truth(&self) -> &EventCounts {
        self.counters.ground_truth_totals()
    }

    /// Takes (drains) a thread's emission buffer.
    pub fn take_emitted(&mut self, tid: ThreadId) -> Vec<u64> {
        self.thread_mut(tid).emitted.take_stamps()
    }

    /// Pre-sizes a thread's emission buffer for at least `additional`
    /// further records. Callers that know how long the machine is about to
    /// run (the measurement session does) reserve the expected stamp volume
    /// once instead of growing the buffer repeatedly on the emit hot path.
    pub fn reserve_emitted(&mut self, tid: ThreadId, additional: usize) {
        self.thread_mut(tid).emitted.reserve(additional);
    }

    /// Installs a tee for idle-loop stamps: every `Emit` by any thread is
    /// also forwarded to `sink` (in addition to the per-thread buffer
    /// drained by [`Machine::take_emitted`]). Used to stream traces to
    /// disk while a measurement runs.
    pub fn set_stamp_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.stamp_sink = Some(sink);
    }

    /// Removes and returns the stamp tee, if one was installed.
    pub fn take_stamp_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.stamp_sink.take()
    }

    /// Installs a tee for the message-API log: every entry is also
    /// forwarded to `sink` as a wire-level [`latlab_trace::ApiRecord`].
    pub fn set_api_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.api_sink = Some(sink);
    }

    /// Removes and returns the API-log tee, if one was installed.
    pub fn take_api_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.api_sink.take()
    }

    /// Enables or disables idle fast-forward, overriding the thread-local
    /// default captured at boot. Fast-forward is observationally
    /// transparent (see [`Machine::try_fast_forward`]); disabling it keeps
    /// the step-by-step path alive as the equivalence oracle.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fastforward = enabled;
    }

    /// Whether idle fast-forward is enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fastforward
    }

    /// Idle fast-forward statistics: `(batches, warm_iters, cold_iters)` —
    /// committed batches, iterations costed on the warm accumulator-only
    /// path, and iterations that went through the generic TLB-touching
    /// path. Diagnostic only — exposed for tests and benches.
    pub fn fast_forward_stats(&self) -> (u64, u64, u64) {
        (
            self.ff_stats.batches,
            self.ff_stats.warm_iters,
            self.ff_stats.cold_iters,
        )
    }

    /// Main-loop turns taken so far. Diagnostic only (regression tests
    /// assert quiescence is reached in O(events) turns); not part of the
    /// machine's observable state.
    pub fn debug_loop_turns(&self) -> u64 {
        self.loop_turns
    }

    /// Appends to the API log and forwards to the API tee, if any.
    fn log_api(&mut self, entry: ApiLogEntry) {
        self.api_records += 1;
        if let Some(sink) = self.api_sink.as_deref_mut() {
            sink.record(&TraceRecord::Api(crate::tracebridge::to_record(&entry)));
        }
        self.apilog.record(entry);
    }

    /// Message-queue length of a thread — the §6 "message queue length" API
    /// the paper wished for.
    pub fn queue_len(&self, tid: ThreadId) -> usize {
        self.thread(tid).msgq.len()
    }

    /// Whether synchronous I/O is in flight — the §6 "I/O queue" API.
    pub fn sync_io_pending(&self) -> bool {
        self.sync_io_inflight > 0
    }

    /// CPU cycles consumed by a thread so far.
    pub fn thread_cpu_cycles(&self, tid: ThreadId) -> u64 {
        self.thread(tid).cpu_cycles
    }

    /// Buffer-cache hit/miss counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Run statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// True when no application work is runnable or in flight: every thread
    /// above measurement priority is blocked with an empty queue, no inputs
    /// or I/O are outstanding, and no quirk spin is active.
    pub fn is_quiescent(&self) -> bool {
        self.inputs_outstanding == 0
            && self.sync_io_inflight == 0
            && self.async_io_inflight == 0
            && !self.mouse_spin
            && self.lag_until.is_none()
            && self.threads.iter().all(|t| {
                t.priority <= Priority::MEASUREMENT
                    || matches!(t.state, ThreadState::Exited)
                    || (matches!(t.state, ThreadState::BlockedMsg) && t.msgq.is_empty())
            })
    }

    // --- Snapshots --------------------------------------------------------

    /// Clones the entire simulation state. The trace tees are external
    /// resources and are *not* cloned: the fork starts with no sinks
    /// installed but keeps the record counters, so a fresh sink attached
    /// to it receives exactly the suffix the original would have written
    /// past the counted positions.
    fn fork(&self) -> Machine {
        Machine {
            params: self.params.clone(),
            now: self.now,
            pending: self.pending.clone(),
            threads: self.threads.clone(),
            sched: self.sched.clone(),
            cost: self.cost.clone(),
            counters: self.counters.clone(),
            disk: self.disk.clone(),
            fs: self.fs.clone(),
            cache: self.cache.clone(),
            apilog: self.apilog.clone(),
            statelog: self.statelog.clone(),
            gt: self.gt.clone(),
            focus: self.focus,
            network_sink: self.network_sink,
            next_input_id: self.next_input_id,
            last_input_at: self.last_input_at,
            next_tick_at: self.next_tick_at,
            tick_index: self.tick_index,
            mouse_spin: self.mouse_spin,
            deferred_mouse: self.deferred_mouse.clone(),
            lag_until: self.lag_until,
            sync_io_inflight: self.sync_io_inflight,
            async_io_inflight: self.async_io_inflight,
            inputs_outstanding: self.inputs_outstanding,
            last_ran: self.last_ran,
            stats: self.stats,
            faults: self.faults.clone(),
            fastforward: self.fastforward,
            ff_stats: self.ff_stats.clone(),
            ff_stamps: self.ff_stamps.clone(),
            loop_turns: self.loop_turns,
            watermarks: self.watermarks,
            stamp_records: self.stamp_records,
            api_records: self.api_records,
            stamp_sink: None,
            api_sink: None,
        }
    }

    /// Freezes the complete simulation state into a [`MachineSnapshot`].
    ///
    /// Any cost-engine parameter reads not yet drained into the watermark
    /// table are folded in first (the run loop drains per turn, so between
    /// runs there are normally none). What
    /// [`MachineSnapshot::param_unread`] consults is whether a parameter
    /// has *ever* been read — not when — so the fold can only make forks
    /// more conservative, never unsound.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        let mask = self.cost.take_param_reads();
        self.watermarks.note_mask(mask, self.now);
        MachineSnapshot {
            machine: Box::new(self.fork()),
        }
    }

    /// Reconstructs a runnable machine from a snapshot. The restored
    /// machine has no trace tees installed (attach fresh sinks with
    /// [`Machine::set_stamp_sink`]/[`Machine::set_api_sink`]); its record
    /// counters continue from the snapshot's, so the new sinks receive
    /// exactly the byte suffix a straight run would have produced past
    /// [`MachineSnapshot::sink_records`].
    pub fn restore(snap: &MachineSnapshot) -> Machine {
        snap.machine.fork()
    }

    /// Re-points a sweepable parameter at `value` mid-run — the
    /// prefix-sharing sweep's fork edit. Both the kernel's parameter set
    /// and the cost engine's copy are updated.
    ///
    /// Soundness is the *caller's* obligation: the edit is only
    /// equivalent to a scratch boot with `value` if the parameter was
    /// never consulted before this instant (check
    /// [`MachineSnapshot::param_unread`] on the snapshot the machine was
    /// restored from). `CacheBlocks` in particular is consulted at boot
    /// and therefore never passes that check.
    pub fn apply_param(&mut self, param: SweptParam, value: u64) {
        param.apply(&mut self.params, value);
        self.cost.set_params(self.params.clone());
    }

    /// The first-read watermark table (drained per run-loop turn; exact
    /// whenever the machine is between runs).
    pub fn param_watermarks(&self) -> &ParamWatermarks {
        &self.watermarks
    }

    /// Folds parameter reads that happened on *other* machines feeding
    /// this one — e.g. the idle-loop calibration runs whose result is
    /// baked into this machine's programs — into the table at time zero,
    /// as if they happened before this machine's timeline began.
    pub fn note_external_param_reads(&mut self, reads: &ParamWatermarks) {
        self.watermarks.absorb(reads, SimTime::ZERO);
    }

    /// `(stamp, api)` trace records produced so far, with or without tees
    /// installed (snapshot/resume bookkeeping).
    pub fn sink_records(&self) -> (u64, u64) {
        (self.stamp_records, self.api_records)
    }

    // --- Execution --------------------------------------------------------

    /// Runs the machine until `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        self.run_loop(t_end, false);
    }

    /// The main loop. With `until_quiescent`, additionally returns as soon
    /// as [`Machine::is_quiescent`] holds — checked once per loop turn, i.e.
    /// at every event boundary and dispatch return, rather than on a fixed
    /// polling grid: quiescence is observed at the exact instant the last
    /// piece of work retires.
    fn run_loop(&mut self, t_end: SimTime, until_quiescent: bool) -> bool {
        while self.now < t_end {
            if until_quiescent && self.is_quiescent() {
                return true;
            }
            self.loop_turns += 1;
            let turn_start = self.now;
            self.turn(t_end);
            // Watermark any swept-parameter reads the cost engine saw this
            // turn. The stamp is the turn's *start* time — at-or-before
            // every read the turn performed — so a recorded watermark is
            // conservative-early (see [`crate::sweep`]).
            let mask = self.cost.take_param_reads();
            self.watermarks.note_mask(mask, turn_start);
        }
        until_quiescent && self.is_quiescent()
    }

    /// One main-loop turn: fire a due event, service a quirk busy-wait, or
    /// dispatch a thread.
    fn turn(&mut self, t_end: SimTime) {
        // 1. Fire due events.
        if let Some((_, ev)) = self.pending.pop_due(self.now) {
            self.handle_event(ev);
            return;
        }
        // 2. Busy-wait quirk states occupy the CPU ahead of all threads.
        if self.mouse_spin || self.lag_until.is_some() {
            let mut target = self.pending.peek_time().unwrap_or(t_end).min(t_end);
            if let Some(lag_end) = self.lag_until {
                target = target.min(lag_end);
            }
            if target > self.now {
                let packet = self.cost.spin(target.since(self.now).cycles());
                self.charge_system(packet);
            }
            if let Some(lag_end) = self.lag_until {
                if self.now >= lag_end {
                    self.lag_until = None;
                }
            }
            return;
        }
        // 3. Dispatch a thread.
        let Some((tid, _prio)) = self.sched.pop_highest() else {
            // True idle: jump to the next event (or the horizon).
            let target = self.pending.peek_time().unwrap_or(t_end).min(t_end);
            self.now = if target > self.now { target } else { t_end };
            return;
        };
        self.run_thread(tid, t_end);
    }

    /// Notes a kernel-direct read of a swept parameter at the current
    /// instant (the cost engine reports its own reads via a mask drained
    /// per turn).
    fn note_param_read(&mut self, param: SweptParam) {
        self.watermarks.note(param, self.now);
    }

    /// Runs for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Runs until the machine is quiescent (see [`Machine::is_quiescent`]),
    /// up to `limit`. Returns true if quiescence was reached. Quiescence is
    /// re-checked at every loop turn (event boundaries and dispatch
    /// returns) — not on a polling grid — so a long-idle machine reaches it
    /// in O(events) loop iterations.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> bool {
        self.run_loop(limit, true)
    }

    // --- Event handling ---------------------------------------------------

    fn handle_event(&mut self, ev: MachineEvent) {
        match ev {
            MachineEvent::ClockTick => self.on_clock_tick(),
            MachineEvent::Input { id, kind } => self.on_input(id, kind),
            MachineEvent::DiskDone { thread, bytes } => self.on_disk_done(thread, bytes),
            MachineEvent::AsyncIoDone {
                thread,
                token,
                kind,
            } => self.on_async_io_done(thread, token, kind),
            MachineEvent::Background => self.on_background(),
            MachineEvent::PostToFocus { msg } => self.on_post_to_focus(msg),
            MachineEvent::FocusChange { target } => {
                // Focus changes run through the window manager: activation
                // and deactivation paint work on both sides.
                self.note_param_read(SweptParam::InputDispatchInstr);
                let packet = self
                    .cost
                    .kernel_work(self.params.input_dispatch_instr / 2, WorkKind::Api);
                self.charge_system(packet);
                if let Some(old) = self.focus {
                    if old != target {
                        self.enqueue_message(old, Message::User(FOCUS_LOST));
                    }
                }
                self.focus = Some(target);
                self.enqueue_message(target, Message::User(FOCUS_GAINED));
            }
            MachineEvent::FaultStorm { idx } => self.on_fault_storm(idx),
            MachineEvent::FaultPage { idx } => self.on_fault_page(idx),
        }
    }

    // --- Fault injection ----------------------------------------------------

    /// One interrupt of an injected storm: a real hardware interrupt is
    /// charged (kernel mix, TLB touches, counter events), then the storm
    /// reschedules itself while its window lasts.
    fn on_fault_storm(&mut self, idx: usize) {
        let Some(fx) = self.faults.as_ref() else {
            return;
        };
        let f = fx.faults[idx];
        let FaultKind::InterruptStorm { period_us, instr } = f.kind else {
            return;
        };
        if f.active(self.now) {
            self.faults.as_mut().unwrap().stats.storm_interrupts += 1;
            let packet = self.cost.interrupt(instr);
            self.charge_system(packet);
        }
        let next = self.now
            + self
                .params
                .freq
                .us(period_us)
                .max(SimDuration::from_cycles(1));
        if f.end.is_none_or(|e| next < e) {
            self.pending
                .schedule(next, MachineEvent::FaultStorm { idx });
        }
    }

    /// One injected page-fault burst: flush the TLBs (every later memory
    /// touch re-walks), evict the oldest cached blocks (later reads go
    /// back to disk), and charge the page-in kernel work.
    fn on_fault_page(&mut self, idx: usize) {
        let Some(fx) = self.faults.as_ref() else {
            return;
        };
        let f = fx.faults[idx];
        let FaultKind::PageFaultBurst {
            period_ms,
            evict_blocks,
            instr,
        } = f.kind
        else {
            return;
        };
        if f.active(self.now) {
            self.faults.as_mut().unwrap().stats.page_bursts += 1;
            self.cost.tlb_mut().flush();
            self.cache.evict_oldest(evict_blocks as usize);
            let packet = self.cost.kernel_work(instr, WorkKind::Io);
            self.charge_system(packet);
        }
        let next = self.now + self.params.freq.ms(period_ms);
        if f.end.is_none_or(|e| next < e) {
            self.pending.schedule(next, MachineEvent::FaultPage { idx });
        }
    }

    /// Rolls input chaos for one arriving user input. Returns `true` when
    /// the input must be dropped; duplication is latched in the engine and
    /// consumed at the enqueue point by [`Machine::fault_maybe_duplicate`].
    fn fault_input_roll(&mut self) -> bool {
        let now = self.now;
        let Some(fx) = self.faults.as_mut() else {
            return false;
        };
        let mut drop = false;
        for f in &fx.faults {
            if !f.active(now) {
                continue;
            }
            if let FaultKind::InputChaos {
                drop_permille,
                dup_permille,
            } = f.kind
            {
                if fx.input_rng.gen_range(1000) < u64::from(drop_permille) {
                    drop = true;
                } else if fx.input_rng.gen_range(1000) < u64::from(dup_permille) {
                    fx.dup_pending = true;
                }
            }
        }
        if drop {
            fx.stats.inputs_dropped += 1;
            fx.dup_pending = false;
        }
        drop
    }

    /// Delivers the latched duplicate: the same payload again under a
    /// synthetic id (≥ [`DUP_INPUT_ID_BASE`]) that ground truth ignores,
    /// plus one more dispatch charge for the repeated delivery.
    fn fault_maybe_duplicate(&mut self, focus: ThreadId, kind: InputKind) {
        let Some(fx) = self.faults.as_mut() else {
            return;
        };
        if !std::mem::take(&mut fx.dup_pending) {
            return;
        }
        fx.stats.inputs_duplicated += 1;
        let dup_id = fx.dup_next;
        fx.dup_next += 1;
        self.note_param_read(SweptParam::InputDispatchInstr);
        let packet = self
            .cost
            .kernel_work(self.params.input_dispatch_instr, WorkKind::Api);
        self.charge_system(packet);
        self.enqueue_message(focus, Message::Input { id: dup_id, kind });
    }

    /// Extra dispatcher instructions to charge at this context switch, if
    /// an active jitter window rolls a hit.
    fn fault_jitter_instr(&mut self) -> Option<u64> {
        let now = self.now;
        let fx = self.faults.as_mut()?;
        let mut extra: Option<u64> = None;
        for f in &fx.faults {
            if !f.active(now) {
                continue;
            }
            if let FaultKind::SchedJitter {
                rate_permille,
                max_instr,
            } = f.kind
            {
                if fx.sched_rng.gen_range(1000) < u64::from(rate_permille) {
                    let draw = fx.sched_rng.gen_range(max_instr) + 1;
                    extra = Some(extra.unwrap_or(0) + draw);
                }
            }
        }
        if extra.is_some() {
            fx.stats.sched_delays += 1;
        }
        extra
    }

    /// Applies active disk faults to a transfer's service time: a fixed
    /// extra controller delay, plus (on an error roll) a transparent
    /// retry costing the base service time and another delay. Fully
    /// cached accesses (`base == 0`) never touch the device and are
    /// unaffected.
    fn fault_disk_time(&mut self, base: SimDuration) -> SimDuration {
        if base.cycles() == 0 {
            return base;
        }
        let now = self.now;
        let freq = self.params.freq;
        let Some(fx) = self.faults.as_mut() else {
            return base;
        };
        let mut total = base;
        for f in &fx.faults {
            if !f.active(now) {
                continue;
            }
            if let FaultKind::DiskFault {
                delay_ms,
                error_permille,
            } = f.kind
            {
                fx.stats.disk_delays += 1;
                total += freq.ms(delay_ms);
                if fx.disk_rng.gen_range(1000) < u64::from(error_permille) {
                    fx.stats.disk_errors += 1;
                    total += base + freq.ms(delay_ms);
                }
            }
        }
        total
    }

    fn on_clock_tick(&mut self) {
        self.tick_index += 1;
        self.stats.clock_ticks += 1;
        let mut instr = self.params.clock_tick_instr;
        if self.params.housekeeping_every > 0
            && self
                .tick_index
                .is_multiple_of(self.params.housekeeping_every as u64)
        {
            instr += self.params.housekeeping_instr;
        }
        let packet = self.cost.interrupt(instr);
        self.charge_system(packet);
        // Wake sleepers due at this tick.
        let now = self.now;
        let due: Vec<ThreadId> = self
            .threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping(wake) if wake <= now => Some(t.id),
                _ => None,
            })
            .collect();
        for tid in due {
            let prio = self.thread(tid).priority;
            let t = self.thread_mut(tid);
            t.state = ThreadState::Ready;
            t.pending_reply = ApiReply::None;
            self.sched.enqueue(tid, prio);
        }
        // Fire application timers.
        let timer_due: Vec<ThreadId> = self
            .threads
            .iter()
            .filter_map(|t| match (t.timer, t.state) {
                (Some(timer), state) if state != ThreadState::Exited && timer.next_due <= now => {
                    Some(t.id)
                }
                _ => None,
            })
            .collect();
        for tid in timer_due {
            let tick = self.params.clock_tick;
            if let Some(timer) = &mut self.thread_mut(tid).timer {
                while timer.next_due <= now {
                    timer.next_due += timer.period.max(tick);
                }
            }
            self.enqueue_message(tid, Message::Timer);
        }
        // Schedule the next tick.
        self.next_tick_at += self.params.clock_tick;
        let at = self.next_tick_at;
        self.pending.schedule(at, MachineEvent::ClockTick);
    }

    fn on_input(&mut self, id: u64, kind: InputKind) {
        self.gt.on_arrival(id, kind, self.now);
        self.inputs_outstanding -= 1;
        let packet = self.cost.interrupt(self.params.input_interrupt_instr);
        self.charge_system(packet);
        // Input chaos (fault plan): the interrupt already happened — a
        // dropped input dies between driver and queue, so its ground-truth
        // event simply never completes. Packets take the protocol stack
        // and are exempt.
        if !matches!(kind, InputKind::Packet(_)) && self.fault_input_roll() {
            return;
        }
        // Windows 95 busy-waits between mouse-down and mouse-up (§4):
        // delivery of the whole click is deferred to the release.
        if self.params.mouse_busy_wait {
            match kind {
                InputKind::MouseDown(_) => {
                    self.mouse_spin = true;
                    self.deferred_mouse.push((id, kind));
                    return;
                }
                InputKind::MouseUp(_) if self.mouse_spin => {
                    self.mouse_spin = false;
                    let deferred = std::mem::take(&mut self.deferred_mouse);
                    for (d_id, d_kind) in deferred {
                        self.dispatch_input(d_id, d_kind);
                    }
                    self.dispatch_input(id, kind);
                    return;
                }
                _ => {}
            }
        }
        self.dispatch_input(id, kind);
    }

    fn dispatch_input(&mut self, id: u64, kind: InputKind) {
        // Network packets take the protocol stack, not the input driver:
        // per-packet processing plus a per-byte copy/checksum cost.
        if let InputKind::Packet(bytes) = kind {
            let instr =
                self.params.net_dispatch_instr + bytes as u64 * self.params.net_instr_per_byte;
            let packet = self.cost.kernel_work(instr, WorkKind::Api);
            self.charge_system(packet);
            if let Some(sink) = self.network_sink {
                self.stats.inputs_delivered += 1;
                self.enqueue_message(sink, Message::Input { id, kind });
            }
            return;
        }
        self.note_param_read(SweptParam::InputDispatchInstr);
        let packet = self
            .cost
            .kernel_work(self.params.input_dispatch_instr, WorkKind::Api);
        self.charge_system(packet);
        let Some(focus) = self.focus else {
            return; // Input with no focused window is dropped.
        };
        // Console applications receive input through the console server —
        // an extra hop the in-application `getchar()` timestamp never sees
        // (§2.3, Figure 1).
        if self.thread(focus).traits.console {
            let extra = self
                .cost
                .kernel_work(self.params.console_dispatch_instr, WorkKind::Api);
            self.charge_system(extra);
        }
        self.stats.inputs_delivered += 1;
        self.enqueue_message(focus, Message::Input { id, kind });
        self.fault_maybe_duplicate(focus, kind);
    }

    fn on_disk_done(&mut self, tid: ThreadId, bytes: u64) {
        self.sync_io_inflight -= 1;
        let completion = self
            .cost
            .kernel_work(self.params.syscall_instr, WorkKind::Io);
        self.charge_system(completion);
        if let Some(kind) = self.thread_mut(tid).pending_sync_io.take() {
            self.statelog
                .record(self.now, Transition::IoCompleted { thread: tid, kind });
        }
        let prio = self.thread(tid).priority;
        let t = self.thread_mut(tid);
        debug_assert_eq!(t.state, ThreadState::BlockedIo);
        t.state = ThreadState::Ready;
        t.exec = Some(Exec::new(Vec::new(), Outcome::Reply(ApiReply::Io(bytes))));
        self.sched.enqueue(tid, prio);
    }

    fn on_async_io_done(&mut self, tid: ThreadId, token: u32, kind: IoKind) {
        self.async_io_inflight -= 1;
        let completion = self
            .cost
            .kernel_work(self.params.syscall_instr, WorkKind::Io);
        self.charge_system(completion);
        self.statelog
            .record(self.now, Transition::IoCompleted { thread: tid, kind });
        self.enqueue_message(tid, Message::IoComplete(token));
    }

    fn on_background(&mut self) {
        let packet = self
            .cost
            .kernel_work(self.params.background_instr, WorkKind::Background);
        self.charge_system(packet);
        if let Some(period) = self.params.background_period {
            let at = self.now + period;
            self.pending.schedule(at, MachineEvent::Background);
        }
    }

    fn on_post_to_focus(&mut self, msg: Message) {
        if let Some(focus) = self.focus {
            let packet = self
                .cost
                .kernel_work(self.params.syscall_instr, WorkKind::Api);
            self.charge_system(packet);
            self.enqueue_message(focus, msg);
        }
    }

    /// Charges kernel-context work at the current instant (interrupts,
    /// dispatch, spins). Always counts as CPU-busy ground truth.
    fn charge_system(&mut self, packet: WorkPacket) {
        if packet.cycles == 0 {
            return;
        }
        let start = self.now;
        self.counters.on_work(packet.cycles, &packet.events);
        self.now += SimDuration::from_cycles(packet.cycles);
        self.gt.on_busy(start, self.now);
    }

    // --- Message plumbing ---------------------------------------------------

    fn enqueue_message(&mut self, tid: ThreadId, msg: Message) {
        let now = self.now;
        let t = self.thread_mut(tid);
        if t.state == ThreadState::Exited {
            return;
        }
        if !t.msgq.post(msg) {
            return; // Overflow: dropped, counted by the queue.
        }
        self.stats.messages_posted += 1;
        let queue_len = self.thread(tid).msgq.len();
        self.statelog.record(
            now,
            Transition::MessageEnqueued {
                thread: tid,
                queue_len,
            },
        );
        if let Some(id) = msg.input_id() {
            self.gt.on_enqueue(id, now);
        }
        // Wake a blocked GetMessage.
        let t = self.thread_mut(tid);
        if t.state == ThreadState::BlockedMsg {
            t.state = ThreadState::Ready;
            let prio = t.priority;
            let wake = self
                .cost
                .kernel_work(self.params.syscall_instr, WorkKind::Api);
            let t = self.thread_mut(tid);
            t.exec = Some(Exec::new(vec![wake], Outcome::GetMessage));
            self.sched.enqueue(tid, prio);
        }
    }

    // --- Thread execution ---------------------------------------------------

    fn run_thread(&mut self, tid: ThreadId, t_end: SimTime) {
        // Context switch if the CPU last ran someone else.
        if self.last_ran != Some(tid) {
            self.stats.context_switches += 1;
            let packet = self.cost.context_switch();
            self.charge_system(packet);
            // Scheduler jitter (fault plan): some switches take a long
            // path through the dispatcher.
            if let Some(extra) = self.fault_jitter_instr() {
                let packet = self.cost.kernel_work(extra, WorkKind::ContextSwitch);
                self.charge_system(packet);
            }
            self.last_ran = Some(tid);
            // The switch may have carried us past an event boundary.
            if self.pending.peek_time().is_some_and(|t| t <= self.now) || self.now >= t_end {
                self.requeue_front(tid);
                return;
            }
        }
        loop {
            match self.thread(tid).state {
                ThreadState::Ready => {}
                _ => return, // Blocked or exited inside this dispatch.
            }
            if self.thread(tid).exec.is_none() {
                if self.try_fast_forward(tid, t_end) {
                    continue; // Batch committed; re-evaluate the horizon.
                }
                if !self.step_program(tid) {
                    return; // Yielded or exited.
                }
            }
            if self.thread(tid).exec.is_none() {
                continue; // Inline action consumed; step again.
            }
            let next_event = self.pending.peek_time().unwrap_or(SimTime::MAX);
            let quantum_end = self.now + SimDuration::from_cycles(self.thread(tid).quantum_left);
            let slice_end = t_end.min(next_event).min(quantum_end);
            if slice_end <= self.now {
                if quantum_end <= self.now {
                    self.rotate_quantum(tid);
                } else {
                    self.requeue_front(tid);
                }
                return;
            }
            let budget = slice_end.since(self.now).cycles();
            let (consumed, finished) = self.charge_thread(tid, budget);
            {
                let t = self.thread_mut(tid);
                t.quantum_left = t.quantum_left.saturating_sub(consumed);
            }
            if finished {
                self.resolve_outcome(tid);
                // Loop: thread may be ready to continue, blocked, or exited.
                continue;
            }
            // Out of budget: why?
            if self.thread(tid).quantum_left == 0 {
                self.rotate_quantum(tid);
                return;
            }
            // An event is due or the horizon was reached.
            self.requeue_front(tid);
            return;
        }
    }

    /// Idle fast-forward: batch-executes whole idle-loop iterations.
    ///
    /// When the dispatched thread is the measurement idle loop
    /// ([`Priority::MEASUREMENT`]), it is the only runnable thread, no
    /// quirk busy-wait is active, and the program sits at an iteration
    /// boundary of a declared [`crate::program::IdleCycle`], every
    /// iteration that completes strictly before the next pending event (or
    /// `t_end`) is executed here in one batch instead of through
    /// `step_program`/`charge_thread`/`resolve_outcome`.
    ///
    /// The contract is **bit-identical observables** with the step path:
    /// the per-iteration cost packets are produced by the same
    /// [`CostEngine`] calls in the same order (the mix accumulators carry
    /// fractional-event remainders, so packet costs vary iteration to
    /// iteration and cannot be extrapolated), counters advance by exactly
    /// the per-packet totals (prorated charging telescopes), stamps carry
    /// the same read-packet-end instants, and the straddling iteration —
    /// which the step path begins eagerly, costing its spin packet before
    /// discovering an event is due — is left for the step path to cost
    /// identically. A trial iteration that does not fit is rolled back via
    /// [`CostEngine::snapshot`]. Quantum expiries inside the batch only
    /// rotate a solo thread back to itself, so the final `quantum_left` is
    /// computed in closed form. Returns true if at least one iteration was
    /// committed.
    fn try_fast_forward(&mut self, tid: ThreadId, t_end: SimTime) -> bool {
        if !self.fastforward {
            return false;
        }
        {
            let t = self.thread(tid);
            if t.priority != Priority::MEASUREMENT || t.exec.is_some() {
                return false;
            }
        }
        // The dispatched thread is already popped, so any ready thread is a
        // preemptor (equal priority would round-robin mid-batch; higher
        // would preempt outright).
        if !self.sched.is_empty() {
            return false;
        }
        // Quirk busy-waits own the CPU ahead of all threads. The main loop
        // services them before dispatching, so this is defensive.
        if self.mouse_spin || self.lag_until.is_some() {
            return false;
        }
        let horizon = match self.pending.peek_time() {
            Some(at) => at.min(t_end),
            None => t_end,
        };
        if horizon <= self.now {
            return false;
        }
        let q0 = self.thread(tid).quantum_left;
        let quantum = self.params.quantum().cycles();
        let mut committed = 0u64;
        let mut batch_cycles = 0u64;
        let mut batch_events = EventCounts::ZERO;
        self.ff_stamps.clear();
        // Re-query the cycle shape each segment: it changes when the
        // trace buffer fills (`emits` flips off).
        'segments: while let Some(cycle) = self.thread(tid).program.idle_cycle() {
            if cycle.spin.instructions == 0 || cycle.max_iterations == 0 {
                break;
            }
            // Segment-constant warm-path inputs: the working set the
            // iteration's packets touch, and whether the spin's mix
            // generates events at all. A zero-rate mix leaves the
            // accumulator remainders untouched, so the spin charge is
            // state-independent — computed once and reused.
            let (need_code, need_data) = if cycle.emits {
                (
                    cycle
                        .spin
                        .code_pages
                        .max(READ_CYCLES_SPEC.code_pages)
                        .max(EMIT_SPEC.code_pages),
                    cycle
                        .spin
                        .data_pages
                        .max(READ_CYCLES_SPEC.data_pages)
                        .max(EMIT_SPEC.data_pages),
                )
            } else {
                (cycle.spin.code_pages, cycle.spin.data_pages)
            };
            let spin_mix = self.cost.mix_for(cycle.spin.class);
            let spin_is_flat = spin_mix.data_refs_per_k == 0
                && spin_mix.itlb_miss_per_k == 0
                && spin_mix.dtlb_miss_per_k == 0
                && spin_mix.seg_loads_per_k == 0
                && spin_mix.unaligned_per_k == 0;
            let mut spin_const: Option<WorkCharge> = None;
            let mut seg = 0u64;
            let mut hit_horizon = false;
            while seg < cycle.max_iterations {
                let snap = self.cost.snapshot();
                let warm = self.cost.tlb_covers(need_code, need_data);
                let (iter_cycles, stamp_offset, iter_events) = if warm {
                    // Steady state: every TLB touch is a no-op, so the
                    // iteration's packets are pure accumulator charges
                    // ([`CostEngine::compute_warm`] ≡ `compute` here).
                    let spin = match spin_const {
                        Some(c) => c,
                        None => {
                            let c = self.cost.compute_warm(&cycle.spin);
                            if spin_is_flat {
                                spin_const = Some(c);
                            }
                            c
                        }
                    };
                    let mut cyc = spin.cycles;
                    let mut ev = spin.events;
                    let mut off = 0u64;
                    if cycle.emits {
                        let read = self.cost.compute_warm(&READ_CYCLES_SPEC);
                        let emit = self.cost.compute_warm(&EMIT_SPEC);
                        // The stamp is the cycle counter at the end of the
                        // read packet (`Outcome::ReadCycles` replies `now`).
                        off = spin.cycles + read.cycles;
                        cyc += read.cycles + emit.cycles;
                        ev.accumulate(&read.events);
                        ev.accumulate(&emit.events);
                    }
                    (cyc, off, ev)
                } else {
                    // Cold TLB (batch entry right after non-idle work):
                    // the generic path warms it for the rest of the batch.
                    let spin = self.cost.compute(&cycle.spin);
                    let mut cyc = spin.cycles;
                    let mut ev = spin.events;
                    let mut off = 0u64;
                    if cycle.emits {
                        let read = self.cost.compute(&READ_CYCLES_SPEC);
                        let emit = self.cost.compute(&EMIT_SPEC);
                        off = spin.cycles + read.cycles;
                        cyc += read.cycles + emit.cycles;
                        ev.accumulate(&read.events);
                        ev.accumulate(&emit.events);
                    }
                    (cyc, off, ev)
                };
                if iter_cycles == 0 {
                    // Degenerate zero-cost cycle: leave it to the step
                    // path's runaway detection.
                    self.cost.restore(snap);
                    break 'segments;
                }
                let iter_end = self.now + SimDuration::from_cycles(batch_cycles + iter_cycles);
                if iter_end > horizon {
                    // Straddling iteration: roll back the trial costs and
                    // let the step path begin it, exactly as it would have.
                    self.cost.restore(snap);
                    hit_horizon = true;
                    break;
                }
                if warm {
                    self.ff_stats.warm_iters += 1;
                } else {
                    self.ff_stats.cold_iters += 1;
                }
                if cycle.emits {
                    self.ff_stamps
                        .push(self.now.cycles() + batch_cycles + stamp_offset);
                }
                batch_cycles += iter_cycles;
                batch_events.accumulate(&iter_events);
                seg += 1;
            }
            if seg > 0 {
                committed += seg;
                self.thread_mut(tid).program.idle_cycle_advance(seg);
            }
            if hit_horizon || seg == 0 {
                break;
            }
            // seg == cycle.max_iterations: the shape changed; next segment.
        }
        if committed == 0 {
            return false;
        }
        self.ff_stats.batches += 1;
        // Apply the batch wholesale. `CounterBank::on_work` composes
        // (cycles wrap-add; event counters are modular), and prorated
        // charging telescopes to the per-packet totals, so one bulk charge
        // is bit-identical to the step path's piecewise charges. Ground
        // truth sees nothing: measurement priority is never "busy".
        self.counters.on_work(batch_cycles, &batch_events);
        self.now += SimDuration::from_cycles(batch_cycles);
        {
            let t = self.thread_mut(tid);
            t.cpu_cycles += batch_cycles;
            // The step path resets the streak at every spin compute.
            t.zero_exec_streak = 0;
            // The step path takes (and discards) any lingering reply at the
            // first spin step of the batch.
            t.pending_reply = ApiReply::None;
            // Quantum expiries mid-batch rotate the solo thread back to
            // itself and reset to a full quantum; only the remainder of the
            // last reset is observable.
            t.quantum_left = if batch_cycles < q0 {
                q0 - batch_cycles
            } else {
                quantum - ((batch_cycles - q0) % quantum)
            };
        }
        if !self.ff_stamps.is_empty() {
            // Move the scratch buffer out for the duration of the emit (it
            // is put back, capacity intact, so batches stay allocation-free).
            let stamps = std::mem::take(&mut self.ff_stamps);
            self.stamp_records += stamps.len() as u64;
            if let Some(sink) = self.stamp_sink.as_deref_mut() {
                sink.emit_stamps(&stamps);
            }
            self.thread_mut(tid).emitted.emit_stamps(&stamps);
            self.ff_stamps = stamps;
        }
        true
    }

    fn requeue_front(&mut self, tid: ThreadId) {
        let prio = self.thread(tid).priority;
        self.sched.enqueue_front(tid, prio);
    }

    fn rotate_quantum(&mut self, tid: ThreadId) {
        let quantum = self.params.quantum().cycles();
        let prio = {
            let t = self.thread_mut(tid);
            t.quantum_left = quantum;
            t.priority
        };
        self.sched.enqueue(tid, prio);
    }

    /// Charges up to `budget` cycles of the thread's current exec.
    /// Returns `(consumed, finished)`.
    fn charge_thread(&mut self, tid: ThreadId, budget: u64) -> (u64, bool) {
        let start = self.now;
        let is_busy = self.thread(tid).priority > Priority::MEASUREMENT;
        let mut consumed = 0u64;
        let mut finished = false;
        loop {
            let t = &mut self.threads[tid.0 as usize];
            let exec = t.exec.as_mut().expect("charge_thread without exec");
            let Some(pp) = exec.packets.front_mut() else {
                finished = true;
                break;
            };
            if consumed >= budget {
                break;
            }
            let remaining = pp.packet.cycles - pp.done;
            let take = remaining.min(budget - consumed);
            // Prorate hardware events over the packet's cycles.
            let mut delta = EventCounts::ZERO;
            let done_after = pp.done + take;
            for (event, total) in pp.packet.events.iter() {
                let target = total * done_after / pp.packet.cycles;
                delta.set(event, target - pp.charged.get(event));
            }
            pp.done = done_after;
            pp.charged.accumulate(&delta);
            t.cpu_cycles += take;
            self.counters.on_work(take, &delta);
            consumed += take;
            if pp.done == pp.packet.cycles {
                exec.packets.pop_front();
                if exec.packets.is_empty() {
                    finished = true;
                    break;
                }
            }
        }
        self.now += SimDuration::from_cycles(consumed);
        if is_busy {
            self.gt.on_busy(start, self.now);
        }
        (consumed, finished)
    }

    /// Steps the thread's program until it produces costed work or changes
    /// state. Returns false if the thread yielded or exited.
    fn step_program(&mut self, tid: ThreadId) -> bool {
        for _ in 0..RUNAWAY_STEP_LIMIT {
            let action = {
                let t = &mut self.threads[tid.0 as usize];
                let mut ctx = StepCtx {
                    reply: std::mem::take(&mut t.pending_reply),
                };
                t.program.step(&mut ctx)
            };
            match action {
                Action::Compute(spec) => {
                    if spec.instructions == 0 {
                        self.note_zero_exec(tid);
                        self.thread_mut(tid).pending_reply = ApiReply::None;
                        continue;
                    }
                    self.thread_mut(tid).zero_exec_streak = 0;
                    let packet = self.cost.compute(&spec);
                    self.thread_mut(tid).exec =
                        Some(Exec::new(vec![packet], Outcome::Reply(ApiReply::None)));
                    return true;
                }
                Action::Call(call) => match self.build_call(tid, call) {
                    CallDisposition::Work => return true,
                    CallDisposition::Inline => continue,
                    CallDisposition::Deschedule => return false,
                },
                Action::Exit => {
                    let t = self.thread_mut(tid);
                    t.state = ThreadState::Exited;
                    t.exec = None;
                    self.sched.remove(tid);
                    return false;
                }
            }
        }
        panic!(
            "thread {} ({:?}) made no progress in {} steps — runaway program",
            self.thread(tid).name,
            tid,
            RUNAWAY_STEP_LIMIT
        );
    }

    fn note_zero_exec(&mut self, tid: ThreadId) {
        let t = self.thread_mut(tid);
        t.zero_exec_streak += 1;
        assert!(
            t.zero_exec_streak < RUNAWAY_STEP_LIMIT,
            "thread {} issued {} consecutive zero-cost actions",
            t.name,
            t.zero_exec_streak
        );
    }

    /// Requeues a voluntarily yielding thread at the back of its class.
    fn yielded(&mut self, tid: ThreadId) {
        let prio = self.thread(tid).priority;
        self.thread_mut(tid).pending_reply = ApiReply::None;
        self.sched.enqueue(tid, prio);
    }

    /// Builds the exec for an API call, or handles it inline.
    fn build_call(&mut self, tid: ThreadId, call: ApiCall) -> CallDisposition {
        match call {
            ApiCall::GetMessage => {
                let packets = self.cost.api_service(self.params.getmessage_instr, (6, 8));
                self.thread_mut(tid).exec = Some(Exec::new(packets, Outcome::GetMessage));
                CallDisposition::Work
            }
            ApiCall::PeekMessage => {
                let packets = self
                    .cost
                    .api_service(self.params.getmessage_instr / 2, (4, 6));
                self.thread_mut(tid).exec = Some(Exec::new(packets, Outcome::PeekMessage));
                CallDisposition::Work
            }
            ApiCall::Gdi { ops } => {
                self.note_param_read(SweptParam::GdiBatchSize);
                let t = self.thread_mut(tid);
                t.gdi_pending += ops;
                let pending = t.gdi_pending;
                if pending >= self.params.gdi_batch_size {
                    self.thread_mut(tid).gdi_pending = 0;
                    let packets = self.cost.gdi_flush(pending);
                    self.thread_mut(tid).exec =
                        Some(Exec::new(packets, Outcome::Reply(ApiReply::None)));
                } else {
                    let packet = self.cost.gdi_buffer(ops);
                    self.thread_mut(tid).exec =
                        Some(Exec::new(vec![packet], Outcome::Reply(ApiReply::None)));
                }
                CallDisposition::Work
            }
            ApiCall::UserCall { instr } => {
                let packets = self.cost.api_service(instr, (8, 10));
                self.thread_mut(tid).exec =
                    Some(Exec::new(packets, Outcome::Reply(ApiReply::None)));
                CallDisposition::Work
            }
            ApiCall::OpenFile { name } => {
                let file = self
                    .fs
                    .lookup(name)
                    .unwrap_or_else(|| panic!("OpenFile: no such file {name:?}"));
                let packet = self
                    .cost
                    .kernel_work(self.params.syscall_instr * 2, WorkKind::Api);
                self.thread_mut(tid).exec = Some(Exec::new(
                    vec![packet],
                    Outcome::Reply(ApiReply::File(file)),
                ));
                CallDisposition::Work
            }
            ApiCall::ReadFile { file, offset, len } => {
                let (cpu, disk_time) = self.cost_read(file, offset, len);
                self.thread_mut(tid).exec = Some(Exec::new(
                    cpu,
                    Outcome::Io {
                        disk_time,
                        bytes: len,
                        kind: IoKind::SyncRead,
                    },
                ));
                CallDisposition::Work
            }
            ApiCall::WriteFile { file, offset, len } => {
                let (cpu, disk_time) = self.cost_write(file, offset, len);
                self.thread_mut(tid).exec = Some(Exec::new(
                    cpu,
                    Outcome::Io {
                        disk_time,
                        bytes: len,
                        kind: IoKind::SyncWrite,
                    },
                ));
                CallDisposition::Work
            }
            ApiCall::ReadFileAsync {
                file,
                offset,
                len,
                token,
            } => {
                let (cpu, disk_time) = self.cost_read(file, offset, len);
                self.thread_mut(tid).exec = Some(Exec::new(
                    cpu,
                    Outcome::AsyncIo {
                        disk_time,
                        token,
                        kind: IoKind::AsyncRead,
                    },
                ));
                CallDisposition::Work
            }
            ApiCall::WriteFileAsync {
                file,
                offset,
                len,
                token,
            } => {
                let (cpu, disk_time) = self.cost_write(file, offset, len);
                self.thread_mut(tid).exec = Some(Exec::new(
                    cpu,
                    Outcome::AsyncIo {
                        disk_time,
                        token,
                        kind: IoKind::AsyncWrite,
                    },
                ));
                CallDisposition::Work
            }
            ApiCall::Sleep { duration } => {
                let packet = self
                    .cost
                    .kernel_work(self.params.syscall_instr, WorkKind::Api);
                self.thread_mut(tid).exec = Some(Exec::new(vec![packet], Outcome::Sleep(duration)));
                CallDisposition::Work
            }
            ApiCall::PostMessage { target, msg } => {
                let packet = self
                    .cost
                    .kernel_work(self.params.syscall_instr, WorkKind::Api);
                self.thread_mut(tid).exec =
                    Some(Exec::new(vec![packet], Outcome::Post { target, msg }));
                CallDisposition::Work
            }
            ApiCall::SetTimer { period } => {
                let packet = self
                    .cost
                    .kernel_work(self.params.syscall_instr, WorkKind::Api);
                self.thread_mut(tid).exec =
                    Some(Exec::new(vec![packet], Outcome::SetTimer(period)));
                CallDisposition::Work
            }
            ApiCall::KillTimer => {
                let packet = self
                    .cost
                    .kernel_work(self.params.syscall_instr, WorkKind::Api);
                self.thread_mut(tid).exec = Some(Exec::new(vec![packet], Outcome::KillTimer));
                CallDisposition::Work
            }
            ApiCall::ReadCycleCounter => {
                let packet = self.cost.compute(&READ_CYCLES_SPEC);
                self.thread_mut(tid).exec = Some(Exec::new(vec![packet], Outcome::ReadCycles));
                CallDisposition::Work
            }
            ApiCall::Emit(v) => {
                let packet = self.cost.compute(&EMIT_SPEC);
                self.thread_mut(tid).exec = Some(Exec::new(vec![packet], Outcome::Emit(v)));
                CallDisposition::Work
            }
            ApiCall::GtMark(mark) => {
                match mark {
                    GtMark::EventComplete => self.complete_open_events(tid),
                    GtMark::Label(l) => self.gt.on_label(l, self.now),
                }
                self.thread_mut(tid).pending_reply = ApiReply::None;
                self.note_zero_exec(tid);
                CallDisposition::Inline
            }
            ApiCall::Yield => {
                self.yielded(tid);
                CallDisposition::Deschedule
            }
        }
    }

    /// Marks all retrieved-but-open input events as truly complete now.
    fn complete_open_events(&mut self, tid: ThreadId) {
        let ids = std::mem::take(&mut self.thread_mut(tid).retrieved_open);
        for id in ids {
            self.gt.on_complete(id, self.now);
        }
    }

    /// Resolves the outcome of a drained exec.
    fn resolve_outcome(&mut self, tid: ThreadId) {
        let outcome = self
            .thread_mut(tid)
            .exec
            .take()
            .expect("resolve_outcome without exec")
            .outcome;
        match outcome {
            Outcome::Reply(reply) => {
                self.thread_mut(tid).pending_reply = reply;
            }
            Outcome::GetMessage => self.resolve_get_message(tid),
            Outcome::PeekMessage => self.resolve_peek_message(tid),
            Outcome::Io {
                disk_time,
                bytes,
                kind,
            } => {
                if disk_time.is_zero() {
                    self.thread_mut(tid).pending_reply = ApiReply::Io(bytes);
                } else {
                    self.statelog
                        .record(self.now, Transition::IoIssued { thread: tid, kind });
                    self.thread_mut(tid).state = ThreadState::BlockedIo;
                    self.thread_mut(tid).pending_sync_io = Some(kind);
                    self.sync_io_inflight += 1;
                    let at = self.now + disk_time;
                    self.pending
                        .schedule(at, MachineEvent::DiskDone { thread: tid, bytes });
                }
            }
            Outcome::AsyncIo {
                disk_time,
                token,
                kind,
            } => {
                self.statelog
                    .record(self.now, Transition::IoIssued { thread: tid, kind });
                self.async_io_inflight += 1;
                // Even a fully cached async request completes via a posted
                // message, never inline.
                let at = self.now + disk_time.max(SimDuration::from_cycles(1));
                self.pending.schedule(
                    at,
                    MachineEvent::AsyncIoDone {
                        thread: tid,
                        token,
                        kind,
                    },
                );
                self.thread_mut(tid).pending_reply = ApiReply::None;
            }
            Outcome::Sleep(min) => {
                let wake = (self.now + min).align_up(self.params.clock_tick);
                self.thread_mut(tid).state = ThreadState::Sleeping(wake);
            }
            Outcome::Post { target, msg } => {
                self.enqueue_message(target, msg);
                self.thread_mut(tid).pending_reply = ApiReply::None;
            }
            Outcome::SetTimer(period) => {
                let tick = self.params.clock_tick;
                let period = if period < tick { tick } else { period };
                let next_due = (self.now + period).align_up(tick);
                self.thread_mut(tid).timer = Some(AppTimer { period, next_due });
                self.thread_mut(tid).pending_reply = ApiReply::None;
            }
            Outcome::KillTimer => {
                self.thread_mut(tid).timer = None;
                self.thread_mut(tid).pending_reply = ApiReply::None;
            }
            Outcome::ReadCycles => {
                let cycles = self.now.cycles();
                self.thread_mut(tid).pending_reply = ApiReply::Cycles(cycles);
            }
            Outcome::Emit(v) => {
                let rec = TraceRecord::Stamp(v);
                self.stamp_records += 1;
                if let Some(sink) = self.stamp_sink.as_deref_mut() {
                    sink.record(&rec);
                }
                let t = self.thread_mut(tid);
                t.emitted.record(&rec);
                t.pending_reply = ApiReply::None;
            }
        }
    }

    fn resolve_get_message(&mut self, tid: ThreadId) {
        if let Some(msg) = self.thread_mut(tid).msgq.take() {
            self.record_retrieval(tid, ApiEntry::GetMessage, msg);
            return;
        }
        // Queue empty: the client is about to block, so flush any buffered
        // GDI batch first (§1.1's batching model), then re-check — a message
        // may arrive while flushing.
        if self.thread(tid).gdi_pending > 0 {
            let ops = std::mem::take(&mut self.thread_mut(tid).gdi_pending);
            let packets = self.cost.gdi_flush(ops);
            self.thread_mut(tid).exec = Some(Exec::new(packets, Outcome::GetMessage));
            return;
        }
        // Still empty: the previous events are truly complete (their output
        // has been flushed), and the thread blocks.
        self.complete_open_events(tid);
        self.log_api(ApiLogEntry {
            at: self.now,
            thread: tid,
            entry: ApiEntry::GetMessage,
            outcome: ApiOutcome::Blocked,
            queue_len_after: 0,
        });
        self.thread_mut(tid).state = ThreadState::BlockedMsg;
        self.thread_mut(tid).exec = None;
        // Windows 95 post-event lag for heavyweight-async applications
        // (§5.4): the system stays busy after the application goes idle.
        let lag_due = self.thread(tid).traits.heavy_async
            && self.thread(tid).handled_since_block
            && !self.params.post_event_busy.is_zero();
        self.thread_mut(tid).handled_since_block = false;
        if lag_due {
            self.lag_until = Some(self.now + self.params.post_event_busy);
        }
    }

    fn resolve_peek_message(&mut self, tid: ThreadId) {
        if let Some(msg) = self.thread_mut(tid).msgq.take() {
            self.record_retrieval(tid, ApiEntry::PeekMessage, msg);
            return;
        }
        if self.thread(tid).gdi_pending > 0 {
            let ops = std::mem::take(&mut self.thread_mut(tid).gdi_pending);
            let packets = self.cost.gdi_flush(ops);
            self.thread_mut(tid).exec = Some(Exec::new(packets, Outcome::PeekMessage));
            return;
        }
        self.complete_open_events(tid);
        self.log_api(ApiLogEntry {
            at: self.now,
            thread: tid,
            entry: ApiEntry::PeekMessage,
            outcome: ApiOutcome::Empty,
            queue_len_after: 0,
        });
        self.thread_mut(tid).pending_reply = ApiReply::Message(None);
    }

    fn record_retrieval(&mut self, tid: ThreadId, entry: ApiEntry, msg: Message) {
        // Retrieving the next message closes the previous events (the
        // application has moved on; anything further belongs to `msg`).
        self.complete_open_events(tid);
        let qlen = self.thread(tid).msgq.len();
        self.statelog.record(
            self.now,
            Transition::MessageDequeued {
                thread: tid,
                queue_len: qlen,
            },
        );
        self.log_api(ApiLogEntry {
            at: self.now,
            thread: tid,
            entry,
            outcome: ApiOutcome::Retrieved(msg),
            queue_len_after: qlen,
        });
        if let Some(id) = msg.input_id() {
            self.gt.on_retrieve(id, tid, self.now);
            self.thread_mut(tid).retrieved_open.push(id);
        }
        self.thread_mut(tid).handled_since_block = true;
        self.thread_mut(tid).pending_reply = ApiReply::Message(Some(msg));
    }

    // --- I/O costing --------------------------------------------------------

    /// Computes CPU packets and disk time for a read, updating the cache.
    fn cost_read(&mut self, file: FileId, offset: u64, len: u64) -> (Vec<WorkPacket>, SimDuration) {
        let runs = self.fs.map_range(file, offset, len);
        let mut hit_blocks = 0u64;
        let mut miss_blocks = 0u64;
        let mut disk_time = SimDuration::ZERO;
        for (first_file_block, run) in runs {
            // Check each block against the cache; coalesce missing
            // disk-contiguous stretches into single requests.
            let mut pending_start: Option<(u64, u64)> = None; // (disk_block, count)
            for i in 0..run.count {
                let fb = first_file_block + i;
                let key = BlockKey {
                    file: file.0,
                    block: fb,
                };
                if self.cache.access(key) {
                    hit_blocks += 1;
                    if let Some((s, c)) = pending_start.take() {
                        disk_time += self.disk.service(latlab_hw::DiskRequest {
                            start_block: s,
                            block_count: c,
                        });
                    }
                } else {
                    miss_blocks += 1;
                    self.cache.insert(key);
                    match &mut pending_start {
                        Some((_, c)) => *c += 1,
                        None => pending_start = Some((run.start + i, 1)),
                    }
                }
            }
            if let Some((s, c)) = pending_start {
                disk_time += self.disk.service(latlab_hw::DiskRequest {
                    start_block: s,
                    block_count: c,
                });
            }
        }
        let disk_time = self.fault_disk_time(disk_time);
        (self.cost.read_cpu(hit_blocks, miss_blocks), disk_time)
    }

    /// Computes CPU packets and disk time for a write-through write.
    fn cost_write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> (Vec<WorkPacket>, SimDuration) {
        let runs = self.fs.map_range(file, offset, len);
        let mut blocks = 0u64;
        let mut disk_time = SimDuration::ZERO;
        for (first_file_block, run) in &runs {
            blocks += run.count;
            disk_time += self.disk.service(latlab_hw::DiskRequest {
                start_block: run.start,
                block_count: run.count,
            });
            // Written blocks become cached.
            for i in 0..run.count {
                self.cache.insert(BlockKey {
                    file: file.0,
                    block: first_file_block + i,
                });
            }
        }
        // The write-overhead factor models metadata/journaling I/O.
        self.note_param_read(SweptParam::WriteOverheadMilli);
        let adjusted =
            SimDuration::from_cycles(disk_time.cycles() * self.params.write_overhead_milli / 1_000);
        let adjusted = self.fault_disk_time(adjusted);
        (self.cost.write_cpu(blocks), adjusted)
    }

    // --- Plumbing -----------------------------------------------------------

    fn thread(&self, tid: ThreadId) -> &ThreadSlot {
        &self.threads[tid.0 as usize]
    }

    fn thread_mut(&mut self, tid: ThreadId) -> &mut ThreadSlot {
        &mut self.threads[tid.0 as usize]
    }
}

/// A frozen, restorable copy of a [`Machine`]'s complete state.
///
/// Taken with [`Machine::snapshot`]; any number of machines can be
/// [`Machine::restore`]d from it, each resuming the simulation from the
/// exact captured instant — same event queue (times *and* sequence
/// numbers), same RNG streams, same scheduler/process/cache/counter
/// state — so a restored run's observables are bit-identical to the
/// original continuing.
///
/// The snapshot also carries the evidence the prefix-sharing sweep
/// planner needs: [`MachineSnapshot::param_unread`] answers whether a
/// fork that changes a given swept parameter is provably equivalent to a
/// scratch run (see [`crate::sweep`] for the invariant).
pub struct MachineSnapshot {
    machine: Box<Machine>,
}

impl MachineSnapshot {
    /// The simulated instant the snapshot was taken.
    pub fn now(&self) -> SimTime {
        self.machine.now
    }

    /// True when `param` had never been consulted at snapshot time — the
    /// soundness condition for restoring this snapshot with `param`
    /// changed (via [`Machine::apply_param`]) in place of a scratch run.
    pub fn param_unread(&self, param: SweptParam) -> bool {
        self.machine.watermarks.get(param).is_none()
    }

    /// `(stamp, api)` trace-record counts at snapshot time: where in the
    /// original's trace streams a restored run's fresh sinks pick up.
    pub fn sink_records(&self) -> (u64, u64) {
        (self.machine.stamp_records, self.machine.api_records)
    }

    /// Pending simulation events captured in the snapshot.
    pub fn pending_events(&self) -> usize {
        self.machine.pending.len()
    }

    /// Threads (live or exited) captured in the snapshot.
    pub fn process_count(&self) -> usize {
        self.machine.threads.len()
    }

    /// Approximate resident size of the frozen state in bytes (the
    /// dominant heap blocks; per-thread message queues and emission
    /// buffers are counted by slot, not content).
    pub fn state_footprint(&self) -> usize {
        let m = &*self.machine;
        std::mem::size_of::<Machine>()
            + m.pending.len() * std::mem::size_of::<(u128, MachineEvent)>()
            + m.threads.len() * std::mem::size_of::<ThreadSlot>()
            + m.apilog.len() * std::mem::size_of::<ApiLogEntry>()
            + m.statelog.len() * std::mem::size_of::<crate::statelog::StateRecord>()
    }
}
