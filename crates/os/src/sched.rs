//! The priority-preemptive scheduler.
//!
//! Strict priority with round-robin among equals, matching the NT scheduler
//! closely enough for the paper's purposes: the crucial property is that the
//! measurement idle-loop process (priority 1) runs exactly when no real work
//! is runnable — it *is* the idle loop (§2.3).

use std::collections::VecDeque;

use crate::program::{Priority, ThreadId};

/// Ready queues indexed by priority.
#[derive(Clone, Debug, Default)]
pub struct Scheduler {
    queues: Vec<VecDeque<ThreadId>>, // index = priority
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler { queues: Vec::new() }
    }

    fn queue_mut(&mut self, p: Priority) -> &mut VecDeque<ThreadId> {
        let idx = p.0 as usize;
        if self.queues.len() <= idx {
            self.queues.resize_with(idx + 1, VecDeque::new);
        }
        &mut self.queues[idx]
    }

    /// Enqueues a thread at the back of its priority class (fresh wakeup or
    /// quantum rotation).
    pub fn enqueue(&mut self, tid: ThreadId, p: Priority) {
        self.queue_mut(p).push_back(tid);
    }

    /// Enqueues a thread at the front of its priority class (preempted
    /// thread resumes before its peers).
    pub fn enqueue_front(&mut self, tid: ThreadId, p: Priority) {
        self.queue_mut(p).push_front(tid);
    }

    /// Removes and returns the highest-priority ready thread.
    pub fn pop_highest(&mut self) -> Option<(ThreadId, Priority)> {
        for (prio, q) in self.queues.iter_mut().enumerate().rev() {
            if let Some(tid) = q.pop_front() {
                return Some((tid, Priority(prio as u8)));
            }
        }
        None
    }

    /// Returns the priority of the most urgent ready thread without
    /// dequeuing it.
    pub fn highest_ready(&self) -> Option<Priority> {
        self.queues
            .iter()
            .enumerate()
            .rev()
            .find(|(_, q)| !q.is_empty())
            .map(|(p, _)| Priority(p as u8))
    }

    /// Removes a specific thread from the ready queues (e.g. on exit).
    /// Returns true if it was queued.
    pub fn remove(&mut self, tid: ThreadId) -> bool {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|&t| t == tid) {
                q.remove(pos);
                return true;
            }
        }
        false
    }

    /// Total ready threads.
    pub fn ready_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// True when no thread is ready. Unlike [`Scheduler::ready_count`] this
    /// short-circuits on the first non-empty queue — it sits on the kernel's
    /// idle fast-forward eligibility check, which runs once per dispatch.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_priority_order() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1), Priority(1));
        s.enqueue(ThreadId(2), Priority(9));
        s.enqueue(ThreadId(3), Priority(5));
        assert_eq!(s.pop_highest(), Some((ThreadId(2), Priority(9))));
        assert_eq!(s.pop_highest(), Some((ThreadId(3), Priority(5))));
        assert_eq!(s.pop_highest(), Some((ThreadId(1), Priority(1))));
        assert_eq!(s.pop_highest(), None);
    }

    #[test]
    fn round_robin_within_priority() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1), Priority(8));
        s.enqueue(ThreadId(2), Priority(8));
        let (first, _) = s.pop_highest().unwrap();
        s.enqueue(first, Priority(8)); // quantum rotation
        assert_eq!(s.pop_highest().unwrap().0, ThreadId(2));
    }

    #[test]
    fn preempted_thread_resumes_first() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1), Priority(8));
        s.enqueue_front(ThreadId(2), Priority(8));
        assert_eq!(s.pop_highest().unwrap().0, ThreadId(2));
    }

    #[test]
    fn highest_ready_peeks() {
        let mut s = Scheduler::new();
        assert_eq!(s.highest_ready(), None);
        s.enqueue(ThreadId(1), Priority(3));
        assert_eq!(s.highest_ready(), Some(Priority(3)));
        assert_eq!(s.ready_count(), 1);
    }

    #[test]
    fn is_empty_tracks_ready_count() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        s.enqueue(ThreadId(1), Priority(3));
        assert!(!s.is_empty());
        s.pop_highest();
        assert!(s.is_empty());
    }

    #[test]
    fn remove_specific_thread() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1), Priority(8));
        s.enqueue(ThreadId(2), Priority(8));
        assert!(s.remove(ThreadId(1)));
        assert!(!s.remove(ThreadId(1)));
        assert_eq!(s.pop_highest().unwrap().0, ThreadId(2));
    }
}
