//! Sweepable cost parameters and their first-read watermarks.
//!
//! The calibration tooling (`latlab-sweep`, DESIGN.md) varies seven
//! [`OsParams`] knobs. This module is the canonical list of those knobs —
//! the CLI name, how to apply a value, the stock value per profile — plus
//! the machinery that makes prefix-sharing sweeps *provably* sound: a
//! [`ParamWatermarks`] table recording the simulated time at which each
//! swept parameter was first consulted.
//!
//! # The soundness invariant
//!
//! A sweep that forks a snapshot taken at time `T` and then changes
//! parameter `p` produces bit-identical results to a scratch run with `p`
//! changed from boot **iff `p` was not read at or before `T`**. The kernel
//! therefore notes the first read of every swept parameter as it happens
//! (see `Machine::note_param_read` and the cost engine's read mask); a
//! recorded watermark is always at-or-before the true read time, never
//! after — a conservative-early stamp can only force an unnecessary
//! scratch fallback, never an unsound fork.

use latlab_des::SimTime;

use crate::profile::{OsParams, OsProfile};

/// A sweepable OS cost parameter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweptParam {
    /// Per-crossing transport instructions.
    CrossingInstr,
    /// Input-dispatch instructions.
    InputDispatchInstr,
    /// GDI batch size.
    GdiBatchSize,
    /// GDI path-length multiplier (thousandths).
    GdiPathMilli,
    /// GUI (USER-chrome) path-length multiplier (thousandths).
    GuiPathMilli,
    /// Buffer-cache capacity in blocks.
    CacheBlocks,
    /// Write-path overhead (thousandths).
    WriteOverheadMilli,
}

impl SweptParam {
    /// All sweepable parameters.
    pub const ALL: [SweptParam; 7] = [
        SweptParam::CrossingInstr,
        SweptParam::InputDispatchInstr,
        SweptParam::GdiBatchSize,
        SweptParam::GdiPathMilli,
        SweptParam::GuiPathMilli,
        SweptParam::CacheBlocks,
        SweptParam::WriteOverheadMilli,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SweptParam::CrossingInstr => "crossing-instr",
            SweptParam::InputDispatchInstr => "input-dispatch-instr",
            SweptParam::GdiBatchSize => "gdi-batch-size",
            SweptParam::GdiPathMilli => "gdi-path-milli",
            SweptParam::GuiPathMilli => "gui-path-milli",
            SweptParam::CacheBlocks => "cache-blocks",
            SweptParam::WriteOverheadMilli => "write-overhead-milli",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<SweptParam> {
        SweptParam::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Applies a value to a parameter set.
    pub fn apply(self, params: &mut OsParams, value: u64) {
        match self {
            SweptParam::CrossingInstr => params.crossing_instr = value,
            SweptParam::InputDispatchInstr => params.input_dispatch_instr = value,
            SweptParam::GdiBatchSize => params.gdi_batch_size = value as u32,
            SweptParam::GdiPathMilli => params.gdi_path_milli = value,
            SweptParam::GuiPathMilli => params.gui_path_milli = value,
            SweptParam::CacheBlocks => params.cache_blocks = value as usize,
            SweptParam::WriteOverheadMilli => params.write_overhead_milli = value,
        }
    }

    /// The parameter's stock value under a profile.
    pub fn stock(self, profile: OsProfile) -> u64 {
        let p = profile.params();
        match self {
            SweptParam::CrossingInstr => p.crossing_instr,
            SweptParam::InputDispatchInstr => p.input_dispatch_instr,
            SweptParam::GdiBatchSize => p.gdi_batch_size as u64,
            SweptParam::GdiPathMilli => p.gdi_path_milli,
            SweptParam::GuiPathMilli => p.gui_path_milli,
            SweptParam::CacheBlocks => p.cache_blocks as u64,
            SweptParam::WriteOverheadMilli => p.write_overhead_milli,
        }
    }

    /// Table index (also the bit position in a read mask).
    pub fn index(self) -> usize {
        match self {
            SweptParam::CrossingInstr => 0,
            SweptParam::InputDispatchInstr => 1,
            SweptParam::GdiBatchSize => 2,
            SweptParam::GdiPathMilli => 3,
            SweptParam::GuiPathMilli => 4,
            SweptParam::CacheBlocks => 5,
            SweptParam::WriteOverheadMilli => 6,
        }
    }

    /// This parameter's bit in a read mask.
    pub fn bit(self) -> u8 {
        1 << self.index()
    }
}

/// First-read watermarks for every swept parameter.
///
/// `None` means "never consulted so far"; `Some(t)` means the parameter was
/// first consulted at simulated time at-or-after `t` (the stamp is
/// conservative-early, see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParamWatermarks {
    first_read: [Option<SimTime>; 7],
}

impl ParamWatermarks {
    /// A table with no reads recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `param` at `at`; later reads never move an
    /// existing watermark.
    pub fn note(&mut self, param: SweptParam, at: SimTime) {
        let slot = &mut self.first_read[param.index()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Records a read at `at` for every parameter whose bit is set in
    /// `mask` (the cost engine reports its reads this way).
    pub fn note_mask(&mut self, mask: u8, at: SimTime) {
        if mask == 0 {
            return;
        }
        for p in SweptParam::ALL {
            if mask & p.bit() != 0 {
                self.note(p, at);
            }
        }
    }

    /// The first-read watermark of `param`, if it has been read.
    pub fn get(&self, param: SweptParam) -> Option<SimTime> {
        self.first_read[param.index()]
    }

    /// Bit mask of every parameter that has been read.
    pub fn read_mask(&self) -> u8 {
        SweptParam::ALL
            .into_iter()
            .filter(|p| self.get(*p).is_some())
            .fold(0, |m, p| m | p.bit())
    }

    /// Folds another table into this one (used when a derived artifact —
    /// e.g. an idle-loop calibration run on scratch machines — contributes
    /// reads that happened "before" this machine's timeline).
    pub fn absorb(&mut self, other: &ParamWatermarks, at: SimTime) {
        self.note_mask(other.read_mask(), at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for p in SweptParam::ALL {
            assert_eq!(SweptParam::parse(p.name()), Some(p));
        }
        assert_eq!(SweptParam::parse("nope"), None);
    }

    #[test]
    fn stock_values_positive() {
        for profile in OsProfile::ALL {
            for p in SweptParam::ALL {
                assert!(p.stock(profile) > 0, "{} on {profile}", p.name());
            }
        }
    }

    #[test]
    fn apply_changes_params() {
        for p in SweptParam::ALL {
            let mut params = OsProfile::Nt40.params();
            p.apply(&mut params, p.stock(OsProfile::Nt40) * 2);
            assert_ne!(
                format!("{params:?}"),
                format!("{:?}", OsProfile::Nt40.params()),
                "{} must change the parameter set",
                p.name()
            );
        }
    }

    #[test]
    fn first_read_sticks() {
        let mut w = ParamWatermarks::new();
        let t1 = SimTime::from_cycles(100);
        let t2 = SimTime::from_cycles(200);
        w.note(SweptParam::CrossingInstr, t1);
        w.note(SweptParam::CrossingInstr, t2);
        assert_eq!(w.get(SweptParam::CrossingInstr), Some(t1));
        assert_eq!(w.get(SweptParam::GdiBatchSize), None);
        assert_eq!(w.read_mask(), SweptParam::CrossingInstr.bit());
    }

    #[test]
    fn mask_notes_every_set_bit() {
        let mut w = ParamWatermarks::new();
        let mask = SweptParam::GuiPathMilli.bit() | SweptParam::WriteOverheadMilli.bit();
        w.note_mask(mask, SimTime::from_cycles(7));
        assert_eq!(w.read_mask(), mask);
        let mut u = ParamWatermarks::new();
        u.absorb(&w, SimTime::ZERO);
        assert_eq!(u.get(SweptParam::GuiPathMilli), Some(SimTime::ZERO));
    }
}
