#![warn(missing_docs)]

//! A simulated message-driven operating system with Windows NT 3.51,
//! Windows NT 4.0 and Windows 95 personalities.
//!
//! This crate is the substrate for reproducing *"Using Latency to Evaluate
//! Interactive System Performance"* (Endo, Wang, Chen, Seltzer — OSDI '96):
//! a deterministic, cycle-granularity simulation of the paper's testbed — a
//! 100 MHz Pentium PC running one of three Windows variants — detailed
//! enough that every mechanism the paper invokes to explain its measurements
//! (user-level vs kernel-mode Win32 servers, TLB flushes on protection
//! crossings, 16-bit code penalties, message-queue batching, buffer-cache
//! warming, clock-tick-aligned sleeps) exists as an actual mechanism.
//!
//! The top-level object is [`kernel::Machine`]. Applications implement
//! [`program::Program`] and are driven by scheduled user input; measurement
//! tools (in `latlab-core`) observe the machine strictly through the
//! interfaces the paper had — the cycle counter, event counters behind a
//! system-mode hook, a replaced idle loop, and the message-API log.

pub mod apilog;
pub mod bufcache;
pub mod fastforward;
pub mod fs;
pub mod ground_truth;
pub mod kernel;
pub mod msgq;
pub mod profile;
pub mod program;
pub mod sched;
pub mod statelog;
pub mod sweep;
pub mod tracebridge;
pub mod win32;

pub use apilog::{ApiEntry, ApiLog, ApiLogEntry, ApiOutcome};
pub use fastforward::FastForwardOverride;
pub use fs::FileId;
pub use ground_truth::{GroundTruth, GtEvent};
pub use kernel::{
    Machine, MachineSnapshot, MachineStats, DUP_INPUT_ID_BASE, FOCUS_GAINED, FOCUS_LOST,
};
pub use latlab_faults::{FaultKind, FaultPlan, FaultSpec, FaultStats, FaultWindow};
pub use msgq::{InputKind, KeySym, Message, MessageQueue, MouseButton};
pub use profile::{OsParams, OsProfile, Win32Arch};
pub use program::{
    Action, ApiCall, ApiReply, AppTraits, CloneProgram, ComputeSpec, GtMark, IdleCycle, MixClass,
    Priority, ProcessSpec, Program, StepCtx, ThreadId,
};
pub use statelog::{IoKind, StateLog, StateRecord, Transition};
pub use sweep::{ParamWatermarks, SweptParam};
