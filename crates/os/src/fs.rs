//! Simulated file system: named files mapped to disk block extents.
//!
//! Layout matters only through timing: a file is a sequence of extents
//! (contiguous block runs) on the simulated disk; reading within one extent
//! is sequential, crossing extents pays a seek. Files are created with a
//! configurable fragmentation so that e.g. a 530 KB PowerPoint document is
//! not one perfectly-sequential read.

use latlab_hw::disk::BLOCK_SIZE;
use serde::{Deserialize, Serialize};

/// A file handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// A contiguous run of disk blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BlockRun {
    /// First disk block.
    pub start: u64,
    /// Number of blocks.
    pub count: u64,
}

/// One file's metadata.
#[derive(Clone, Debug)]
struct File {
    name: &'static str,
    size: u64,
    extents: Vec<BlockRun>,
}

/// The simulated file system.
#[derive(Clone, Debug, Default)]
pub struct Fs {
    files: Vec<File>,
    next_block: u64,
}

/// Gap left between extents of a fragmented file, in blocks.
const FRAGMENT_GAP: u64 = 64;

impl Fs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Fs::default()
    }

    /// Creates a file of `size` bytes split into extents of at most
    /// `frag_blocks` blocks each, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or `frag_blocks` is zero.
    pub fn create(&mut self, name: &'static str, size: u64, frag_blocks: u64) -> FileId {
        assert!(size > 0, "file size must be non-zero");
        assert!(frag_blocks > 0, "fragment size must be non-zero");
        let total_blocks = size.div_ceil(BLOCK_SIZE);
        let mut extents = Vec::new();
        let mut remaining = total_blocks;
        while remaining > 0 {
            let run = remaining.min(frag_blocks);
            extents.push(BlockRun {
                start: self.next_block,
                count: run,
            });
            self.next_block += run + FRAGMENT_GAP;
            remaining -= run;
        }
        let id = FileId(self.files.len() as u32);
        self.files.push(File {
            name,
            size,
            extents,
        });
        id
    }

    /// Creates a file in one contiguous extent.
    pub fn create_contiguous(&mut self, name: &'static str, size: u64) -> FileId {
        self.create(name, size, u64::MAX / BLOCK_SIZE)
    }

    /// Looks a file up by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }

    /// Returns the file's size in bytes.
    ///
    /// # Panics
    ///
    /// Panics on an invalid handle.
    pub fn size(&self, id: FileId) -> u64 {
        self.file(id).size
    }

    /// Returns the file's name.
    pub fn name(&self, id: FileId) -> &'static str {
        self.file(id).name
    }

    /// Returns the number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Maps a byte range to `(file_block_index, disk_block)` pairs grouped
    /// into disk-contiguous runs.
    ///
    /// The returned runs are `(first_file_block, disk_run)`; consecutive
    /// file blocks that are disk-contiguous share a run.
    ///
    /// # Panics
    ///
    /// Panics on an invalid handle or a range extending past end-of-file.
    pub fn map_range(&self, id: FileId, offset: u64, len: u64) -> Vec<(u64, BlockRun)> {
        let f = self.file(id);
        assert!(len > 0, "cannot map an empty range");
        assert!(
            offset + len <= f.size.div_ceil(BLOCK_SIZE) * BLOCK_SIZE,
            "range [{offset}, {}) beyond file {} of size {}",
            offset + len,
            f.name,
            f.size
        );
        let first_block = offset / BLOCK_SIZE;
        let last_block = (offset + len - 1) / BLOCK_SIZE;
        let mut runs: Vec<(u64, BlockRun)> = Vec::new();
        for fb in first_block..=last_block {
            let db = self.disk_block(f, fb);
            match runs.last_mut() {
                Some((_, run)) if run.start + run.count == db => run.count += 1,
                _ => runs.push((
                    fb,
                    BlockRun {
                        start: db,
                        count: 1,
                    },
                )),
            }
        }
        runs
    }

    /// Translates a file block index to a disk block.
    fn disk_block(&self, f: &File, file_block: u64) -> u64 {
        let mut remaining = file_block;
        for ext in &f.extents {
            if remaining < ext.count {
                return ext.start + remaining;
            }
            remaining -= ext.count;
        }
        panic!("file block {file_block} beyond extents of {}", f.name);
    }

    fn file(&self, id: FileId) -> &File {
        self.files
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("invalid file handle {id:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_file_maps_to_one_run() {
        let mut fs = Fs::new();
        let f = fs.create_contiguous("a.dat", 10 * BLOCK_SIZE);
        let runs = fs.map_range(f, 0, 10 * BLOCK_SIZE);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1.count, 10);
    }

    #[test]
    fn fragmented_file_splits_runs() {
        let mut fs = Fs::new();
        let f = fs.create("b.dat", 8 * BLOCK_SIZE, 3);
        let runs = fs.map_range(f, 0, 8 * BLOCK_SIZE);
        assert_eq!(
            runs.iter().map(|(_, r)| r.count).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
        // Extents are separated by the fragmentation gap.
        assert_eq!(runs[1].1.start, runs[0].1.start + 3 + FRAGMENT_GAP);
    }

    #[test]
    fn partial_range_maps_correct_blocks() {
        let mut fs = Fs::new();
        let f = fs.create_contiguous("c.dat", 100 * BLOCK_SIZE);
        let runs = fs.map_range(f, 5 * BLOCK_SIZE + 100, BLOCK_SIZE);
        // Touches file blocks 5 and 6.
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 5);
        assert_eq!(runs[0].1.count, 2);
    }

    #[test]
    fn lookup_by_name() {
        let mut fs = Fs::new();
        let a = fs.create_contiguous("x", BLOCK_SIZE);
        let b = fs.create_contiguous("y", BLOCK_SIZE);
        assert_eq!(fs.lookup("x"), Some(a));
        assert_eq!(fs.lookup("y"), Some(b));
        assert_eq!(fs.lookup("z"), None);
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.name(a), "x");
    }

    #[test]
    fn files_do_not_overlap() {
        let mut fs = Fs::new();
        let a = fs.create("a", 10 * BLOCK_SIZE, 4);
        let b = fs.create("b", 10 * BLOCK_SIZE, 4);
        let mut blocks = std::collections::HashSet::new();
        for f in [a, b] {
            for (_, run) in fs.map_range(f, 0, 10 * BLOCK_SIZE) {
                for d in run.start..run.start + run.count {
                    assert!(blocks.insert(d), "block {d} allocated twice");
                }
            }
        }
    }

    #[test]
    fn size_rounds_into_last_block() {
        let mut fs = Fs::new();
        let f = fs.create_contiguous("odd", BLOCK_SIZE + 1);
        assert_eq!(fs.size(f), BLOCK_SIZE + 1);
        // Reading the whole (2-block) allocation works.
        let runs = fs.map_range(f, 0, BLOCK_SIZE + 1);
        assert_eq!(runs[0].1.count, 2);
    }

    #[test]
    #[should_panic(expected = "beyond file")]
    fn oversized_range_rejected() {
        let mut fs = Fs::new();
        let f = fs.create_contiguous("s", BLOCK_SIZE);
        let _ = fs.map_range(f, 0, 3 * BLOCK_SIZE);
    }
}
