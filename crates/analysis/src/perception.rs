//! Event-type-aware perception thresholds — the §3.1 metric, completed.
//!
//! The paper sketched a responsiveness summation but abandoned it because
//! *"the threshold, T, is a function of the type of event. For example,
//! users probably expect keystroke event latency to be imperceptible while
//! they may expect that a print command will impose some delay"* — and
//! calibrating those thresholds needs human-factors data the authors did not
//! have.
//!
//! This module implements the machinery the paper deferred: events are
//! classified by their originating input, each class carries its own
//! tolerance band (defaults follow the Shneiderman guidance the paper cites:
//! 0.1 s imperceptible, 2–4 s invariably irritating, with per-class
//! expectations layered on top), and the penalty function is pluggable so
//! the human-factors numbers can be swapped in when they exist. The
//! `abl-score` ablation shows how sensitive the scalar is to these choices —
//! the reason the paper declined to pick one.

use latlab_core::MeasuredEvent;
use latlab_des::CpuFreq;
use latlab_os::{InputKind, KeySym, Message};
use serde::{Deserialize, Serialize};

/// Categories of interactive events with distinct latency expectations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EventClass {
    /// Echoing a printable keystroke: expected imperceptible.
    Keystroke,
    /// Cursor movement, clicks: expected imperceptible.
    Navigation,
    /// Screen-changing keystrokes (page movement, returns).
    ScreenChange,
    /// Short commands (menu operations, OLE activation).
    Command,
    /// Operations the user expects to take a while (open, save, print,
    /// application start).
    MajorOperation,
    /// System housekeeping the user never asked for (timers, sync
    /// messages).
    Background,
}

impl EventClass {
    /// Every class, in a stable order (the [`index`](EventClass::index)
    /// order — telemetry sketches and wire encodings rely on it).
    pub const ALL: [EventClass; 6] = [
        EventClass::Keystroke,
        EventClass::Navigation,
        EventClass::ScreenChange,
        EventClass::Command,
        EventClass::MajorOperation,
        EventClass::Background,
    ];

    /// Dense index of this class into [`EventClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            EventClass::Keystroke => 0,
            EventClass::Navigation => 1,
            EventClass::ScreenChange => 2,
            EventClass::Command => 3,
            EventClass::MajorOperation => 4,
            EventClass::Background => 5,
        }
    }

    /// Short lowercase name, used in CLI output and wire protocols.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Keystroke => "keystroke",
            EventClass::Navigation => "navigation",
            EventClass::ScreenChange => "screen_change",
            EventClass::Command => "command",
            EventClass::MajorOperation => "major_operation",
            EventClass::Background => "background",
        }
    }

    /// Parses a [`name`](EventClass::name) back into a class.
    pub fn parse(s: &str) -> Option<EventClass> {
        EventClass::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Classifies an event from its initiating message.
    pub fn of(event: &MeasuredEvent) -> EventClass {
        match event.message {
            Message::Input { kind, .. } => match kind {
                InputKind::Key(KeySym::Char(_)) | InputKind::Key(KeySym::Backspace) => {
                    EventClass::Keystroke
                }
                InputKind::Key(
                    KeySym::Up | KeySym::Down | KeySym::Left | KeySym::Right | KeySym::Escape,
                ) => EventClass::Navigation,
                InputKind::Key(KeySym::Enter | KeySym::PageDown | KeySym::PageUp) => {
                    EventClass::ScreenChange
                }
                InputKind::Key(KeySym::Ctrl(c)) => match c {
                    // Open, save, print, launch, embedded-object edit
                    // sessions: operations users expect to take a while.
                    'o' | 's' | 'p' | 'e' | '\n' => EventClass::MajorOperation,
                    _ => EventClass::Command,
                },
                InputKind::MouseDown(_) | InputKind::MouseUp(_) => EventClass::Navigation,
                // Remote-echo expectations match local keystrokes: packet
                // handling should feel immediate.
                InputKind::Packet(_) => EventClass::Keystroke,
            },
            Message::QueueSync | Message::Timer | Message::IoComplete(_) => EventClass::Background,
            Message::Paint => EventClass::ScreenChange,
            Message::User(_) => EventClass::Command,
        }
    }
}

/// Per-class tolerance band: latency up to `free_ms` is imperceptible;
/// dissatisfaction saturates at `saturate_ms`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ToleranceBand {
    /// Imperceptible threshold, ms.
    pub free_ms: f64,
    /// Saturation threshold, ms.
    pub saturate_ms: f64,
}

impl ToleranceBand {
    /// Penalty in `[0, 1]`: zero up to `free_ms`, one beyond
    /// `saturate_ms`, log-interpolated between. Degenerate bands
    /// (non-positive or inverted thresholds) behave as a step at
    /// `saturate_ms` rather than producing NaN.
    pub fn penalty(&self, latency_ms: f64) -> f64 {
        if latency_ms <= self.free_ms {
            0.0
        } else if latency_ms >= self.saturate_ms
            || self.free_ms <= 0.0
            || self.saturate_ms <= self.free_ms
        {
            1.0
        } else {
            (latency_ms / self.free_ms).ln() / (self.saturate_ms / self.free_ms).ln()
        }
    }
}

/// A full perception model: one band per event class.
///
/// # Examples
///
/// ```
/// use latlab_analysis::PerceptionModel;
///
/// let model = PerceptionModel::default();
/// // 1.5 s is irritating for a keystroke but free for a save command.
/// assert!(model.keystroke.penalty(1_500.0) > 0.5);
/// assert_eq!(model.major_operation.penalty(1_500.0), 0.0);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerceptionModel {
    /// Band for [`EventClass::Keystroke`].
    pub keystroke: ToleranceBand,
    /// Band for [`EventClass::Navigation`].
    pub navigation: ToleranceBand,
    /// Band for [`EventClass::ScreenChange`].
    pub screen_change: ToleranceBand,
    /// Band for [`EventClass::Command`].
    pub command: ToleranceBand,
    /// Band for [`EventClass::MajorOperation`].
    pub major_operation: ToleranceBand,
}

impl Default for PerceptionModel {
    /// Defaults from the Shneiderman guidance the paper cites (§3.1):
    /// 0.1 s imperceptible / 2–4 s invariably irritating, with looser bands
    /// for operations users expect to take time.
    fn default() -> Self {
        PerceptionModel {
            keystroke: ToleranceBand {
                free_ms: 100.0,
                saturate_ms: 2_000.0,
            },
            navigation: ToleranceBand {
                free_ms: 100.0,
                saturate_ms: 2_000.0,
            },
            screen_change: ToleranceBand {
                free_ms: 150.0,
                saturate_ms: 3_000.0,
            },
            command: ToleranceBand {
                free_ms: 500.0,
                saturate_ms: 4_000.0,
            },
            major_operation: ToleranceBand {
                free_ms: 2_000.0,
                saturate_ms: 15_000.0,
            },
        }
    }
}

impl PerceptionModel {
    /// The band for a class (background events never accrue penalty).
    pub fn band(&self, class: EventClass) -> Option<ToleranceBand> {
        match class {
            EventClass::Keystroke => Some(self.keystroke),
            EventClass::Navigation => Some(self.navigation),
            EventClass::ScreenChange => Some(self.screen_change),
            EventClass::Command => Some(self.command),
            EventClass::MajorOperation => Some(self.major_operation),
            EventClass::Background => None,
        }
    }

    /// Penalty for one event, using wall span (the user's wait) as the
    /// latency reading.
    pub fn penalty(&self, event: &MeasuredEvent, freq: CpuFreq) -> f64 {
        match self.band(EventClass::of(event)) {
            Some(band) => band.penalty(event.span_ms(freq)),
            None => 0.0,
        }
    }

    /// The §3.1 summation over a whole run: total dissatisfaction, plus the
    /// number of events that crossed their class's imperceptibility
    /// threshold.
    pub fn score(&self, events: &[MeasuredEvent], freq: CpuFreq) -> PerceptionScore {
        let mut total = 0.0;
        let mut perceptible = 0usize;
        for e in events {
            let p = self.penalty(e, freq);
            total += p;
            if p > 0.0 {
                perceptible += 1;
            }
        }
        PerceptionScore {
            total_penalty: total,
            perceptible_events: perceptible,
            events: events.len(),
        }
    }
}

/// Result of scoring a run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerceptionScore {
    /// Summed per-event penalty.
    pub total_penalty: f64,
    /// Events whose latency exceeded their class's free threshold.
    pub perceptible_events: usize,
    /// Total events scored.
    pub events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::{SimDuration, SimTime};

    fn event(message: Message, span_ms: u64) -> MeasuredEvent {
        MeasuredEvent {
            message,
            input_id: message.input_id(),
            window_start: SimTime::ZERO,
            retrieved_at: SimTime::ZERO,
            boundary_at: SimTime::from_cycles(span_ms * 100_000),
            busy: SimDuration::from_cycles(span_ms * 100_000),
            span: SimDuration::from_cycles(span_ms * 100_000),
        }
    }

    fn key_event(key: KeySym, span_ms: u64) -> MeasuredEvent {
        event(
            Message::Input {
                id: 0,
                kind: InputKind::Key(key),
            },
            span_ms,
        )
    }

    #[test]
    fn classification_matches_input_kinds() {
        assert_eq!(
            EventClass::of(&key_event(KeySym::Char('a'), 5)),
            EventClass::Keystroke
        );
        assert_eq!(
            EventClass::of(&key_event(KeySym::PageDown, 5)),
            EventClass::ScreenChange
        );
        assert_eq!(
            EventClass::of(&key_event(KeySym::Ctrl('s'), 5)),
            EventClass::MajorOperation
        );
        assert_eq!(
            EventClass::of(&event(Message::QueueSync, 5)),
            EventClass::Background
        );
        assert_eq!(
            EventClass::of(&key_event(KeySym::Left, 5)),
            EventClass::Navigation
        );
    }

    #[test]
    fn per_class_thresholds_differ() {
        let model = PerceptionModel::default();
        let freq = CpuFreq::PENTIUM_100;
        // 1.5 s: irritating for a keystroke, free for a save.
        let slow_key = key_event(KeySym::Char('a'), 1_500);
        let slow_save = key_event(KeySym::Ctrl('s'), 1_500);
        assert!(model.penalty(&slow_key, freq) > 0.5);
        assert_eq!(model.penalty(&slow_save, freq), 0.0);
    }

    #[test]
    fn background_events_never_penalized() {
        let model = PerceptionModel::default();
        let freq = CpuFreq::PENTIUM_100;
        assert_eq!(model.penalty(&event(Message::QueueSync, 60_000), freq), 0.0);
    }

    #[test]
    fn band_penalty_shape() {
        let band = ToleranceBand {
            free_ms: 100.0,
            saturate_ms: 1_000.0,
        };
        assert_eq!(band.penalty(50.0), 0.0);
        assert_eq!(band.penalty(100.0), 0.0);
        assert_eq!(band.penalty(5_000.0), 1.0);
        let mid = band.penalty(316.0); // ≈ geometric midpoint
        assert!((mid - 0.5).abs() < 0.01, "log midpoint {mid}");
    }

    #[test]
    fn score_aggregates() {
        let model = PerceptionModel::default();
        let freq = CpuFreq::PENTIUM_100;
        let events = vec![
            key_event(KeySym::Char('a'), 10),    // free
            key_event(KeySym::Char('b'), 500),   // penalized
            key_event(KeySym::Ctrl('o'), 5_000), // penalized (major op)
        ];
        let score = model.score(&events, freq);
        assert_eq!(score.events, 3);
        assert_eq!(score.perceptible_events, 2);
        assert!(score.total_penalty > 0.0 && score.total_penalty < 2.0);
    }
}
