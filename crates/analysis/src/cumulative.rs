//! Cumulative-latency curves (§3.2).
//!
//! *"Next, we integrate over the histogram presenting a cumulative latency
//! graph. This provides the quantitative data indicating how events of a
//! particular duration contribute to the overall time required to complete
//! a task. Finally, we plot the cumulative latency as a function of the
//! number of events, providing an intuition about the variance in response
//! time perceived by the user. Note that in each of these cases, the events
//! are sorted by their duration."*

use serde::{Deserialize, Serialize};

/// Events sorted by duration with cumulative sums — the basis of both
/// Figure 7-style curves.
///
/// # Examples
///
/// ```
/// use latlab_analysis::CumulativeLatency;
///
/// // Ten 2 ms keystrokes and one 20 ms refresh: half the total latency
/// // comes from the short events (the Figure 7 reading).
/// let mut lats = vec![2.0; 10];
/// lats.push(20.0);
/// let curve = CumulativeLatency::new(&lats);
/// assert_eq!(curve.total_ms(), 40.0);
/// assert!((curve.fraction_below(10.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CumulativeLatency {
    /// Latencies sorted ascending, ms.
    sorted_ms: Vec<f64>,
    /// Cumulative sums: `cum[i]` = total latency of the `i+1` shortest
    /// events, ms.
    cum_ms: Vec<f64>,
}

impl CumulativeLatency {
    /// Builds the curve from raw latencies.
    ///
    /// # Panics
    ///
    /// Panics if any latency is NaN or negative.
    pub fn new(latencies_ms: &[f64]) -> Self {
        let mut sorted_ms: Vec<f64> = latencies_ms.to_vec();
        assert!(
            sorted_ms.iter().all(|l| l.is_finite() && *l >= 0.0),
            "latencies must be finite and non-negative"
        );
        sorted_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut cum_ms = Vec::with_capacity(sorted_ms.len());
        let mut total = 0.0;
        for &l in &sorted_ms {
            total += l;
            cum_ms.push(total);
        }
        CumulativeLatency { sorted_ms, cum_ms }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// True if there are no events.
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// Total latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.cum_ms.last().copied().unwrap_or(0.0)
    }

    /// The sorted latencies.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted_ms
    }

    /// Cumulative latency after the `n` shortest events (Figure 7 bottom:
    /// cumulative latency vs. event count).
    pub fn cumulative_at_count(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.cum_ms[(n - 1).min(self.cum_ms.len() - 1)]
        }
    }

    /// Cumulative latency of all events with latency ≤ `threshold_ms`
    /// (Figure 7 middle: cumulative latency vs. latency).
    pub fn cumulative_below(&self, threshold_ms: f64) -> f64 {
        let n = self.sorted_ms.partition_point(|&l| l <= threshold_ms);
        self.cumulative_at_count(n)
    }

    /// Fraction of total latency contributed by events with latency ≤
    /// `threshold_ms` — the quantity behind the paper's *"over 80% of the
    /// latency of Notepad is due to low-latency (less than 10 ms) events"*.
    pub fn fraction_below(&self, threshold_ms: f64) -> f64 {
        let total = self.total_ms();
        if total == 0.0 {
            return 0.0;
        }
        self.cumulative_below(threshold_ms) / total
    }

    /// The curve as `(latency_ms, cumulative_ms)` points.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        self.sorted_ms
            .iter()
            .zip(&self.cum_ms)
            .map(|(&l, &c)| (l, c))
            .collect()
    }

    /// Smoothness proxy for the variance curve: the maximum single-event
    /// contribution as a fraction of the total. A small value means many
    /// similar events (the paper's "smoothness of the curves … shows that
    /// there is little variance").
    pub fn max_single_event_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total == 0.0 {
            return 0.0;
        }
        self.sorted_ms.last().copied().unwrap_or(0.0) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_sums() {
        let c = CumulativeLatency::new(&[3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_ms(), 6.0);
        assert_eq!(c.cumulative_at_count(0), 0.0);
        assert_eq!(c.cumulative_at_count(1), 1.0);
        assert_eq!(c.cumulative_at_count(2), 3.0);
        assert_eq!(c.cumulative_at_count(99), 6.0);
    }

    #[test]
    fn fraction_below_threshold() {
        // 10 events of 1 ms plus one of 10 ms: short events are 50%.
        let mut v = vec![1.0; 10];
        v.push(10.0);
        let c = CumulativeLatency::new(&v);
        assert!((c.fraction_below(5.0) - 0.5).abs() < 1e-12);
        assert!((c.fraction_below(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let c = CumulativeLatency::new(&[5.0, 2.0, 8.0, 1.0]);
        let curve = c.curve();
        assert!(curve
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn empty_curve() {
        let c = CumulativeLatency::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.total_ms(), 0.0);
        assert_eq!(c.fraction_below(1.0), 0.0);
        assert_eq!(c.max_single_event_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = CumulativeLatency::new(&[f64::NAN]);
    }
}
