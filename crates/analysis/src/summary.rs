//! Scalar summaries of latency populations.
//!
//! The paper deliberately declined to reduce latency to a single figure of
//! merit (§3.1) but still reports means, standard deviations and extrema;
//! [`LatencySummary`] packages those. [`responsiveness_score`] implements
//! the §3.1 *abandoned* metric — a threshold-penalty summation — as an
//! extension, with the threshold function pluggable precisely because the
//! paper argued it must depend on event type and human-factors data.

use latlab_des::stats::{median, quantile};
use latlab_des::OnlineStats;
use serde::{Deserialize, Serialize};

/// Summary statistics over a set of latencies (ms).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of events.
    pub count: u64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub stddev_ms: f64,
    /// Median latency, ms.
    pub median_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// Minimum, ms.
    pub min_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
    /// Sum of all latencies, ms.
    pub total_ms: f64,
}

impl LatencySummary {
    /// Computes the summary (all-zero for an empty slice).
    pub fn from_latencies(latencies_ms: &[f64]) -> Self {
        if latencies_ms.is_empty() {
            return LatencySummary::default();
        }
        let mut stats = OnlineStats::new();
        for &l in latencies_ms {
            stats.push(l);
        }
        LatencySummary {
            count: stats.count(),
            mean_ms: stats.mean(),
            stddev_ms: stats.sample_stddev(),
            median_ms: median(latencies_ms).unwrap_or(0.0),
            p90_ms: quantile(latencies_ms, 0.9).unwrap_or(0.0),
            min_ms: stats.min(),
            max_ms: stats.max(),
            total_ms: stats.mean() * stats.count() as f64,
        }
    }

    /// Coefficient of variation (stddev/mean) — the paper's variance
    /// comparisons (Figure 11: NT 4.0 shows "lower variance").
    pub fn cv(&self) -> f64 {
        if self.mean_ms == 0.0 {
            0.0
        } else {
            self.stddev_ms / self.mean_ms
        }
    }
}

/// A perception-threshold function: maps an event's latency to a
/// dissatisfaction penalty. See [`responsiveness_score`].
pub type PenaltyFn = fn(latency_ms: f64) -> f64;

/// The paper's §3.1 intuition as a default penalty: events ≤100 ms are
/// free; events ≥2 s saturate; linear in between on a log scale.
pub fn shneiderman_penalty(latency_ms: f64) -> f64 {
    const FREE_MS: f64 = 100.0;
    const SATURATE_MS: f64 = 2_000.0;
    if latency_ms <= FREE_MS {
        0.0
    } else if latency_ms >= SATURATE_MS {
        1.0
    } else {
        (latency_ms / FREE_MS).ln() / (SATURATE_MS / FREE_MS).ln()
    }
}

/// The §3.1 responsiveness metric: the summed penalty over all events.
/// Lower is better; zero means every event was imperceptible.
///
/// The paper abandoned a single scalar because the threshold depends on
/// event type and unresolved human-factors questions — hence the pluggable
/// `penalty`. The ablation bench sweeps penalty functions to show the
/// sensitivity that motivated the abandonment.
pub fn responsiveness_score(latencies_ms: &[f64], penalty: PenaltyFn) -> f64 {
    latencies_ms.iter().map(|&l| penalty(l)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = LatencySummary::from_latencies(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean_ms - 2.5).abs() < 1e-12);
        assert!((s.median_ms - 2.5).abs() < 1e-12);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 4.0);
        assert!((s.total_ms - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_latencies(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ms, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn penalty_boundaries() {
        assert_eq!(shneiderman_penalty(50.0), 0.0);
        assert_eq!(shneiderman_penalty(100.0), 0.0);
        assert_eq!(shneiderman_penalty(2_000.0), 1.0);
        assert_eq!(shneiderman_penalty(10_000.0), 1.0);
        let mid = shneiderman_penalty(450.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn score_accumulates() {
        let score = responsiveness_score(&[50.0, 150.0, 3_000.0], shneiderman_penalty);
        assert!(score > 1.0 && score < 2.0);
        assert_eq!(responsiveness_score(&[10.0; 100], shneiderman_penalty), 0.0);
    }

    #[test]
    fn cv_tracks_spread() {
        let tight = LatencySummary::from_latencies(&[10.0, 10.5, 9.5]);
        let wide = LatencySummary::from_latencies(&[1.0, 10.0, 19.0]);
        assert!(tight.cv() < wide.cv());
    }
}
