//! Attribution validation: measured latency vs. the ground-truth oracle.
//!
//! The paper's central methodological claim (§2.2) is that an instrumented
//! idle loop plus the cycle counter measures event-handling latency without
//! kernel source access. The simulator can check that claim directly: the
//! kernel's [`GroundTruth`] oracle records when each input truly arrived and
//! when its handling truly completed, while `latlab-core` measures the same
//! events through the paper's external probes. This module compares the two
//! under stress — most usefully under injected faults (`latlab-faults`) —
//! and reports the *attribution error*: how far the measured numbers drift
//! from the truth when interrupts storm, the scheduler jitters, pages fault
//! or the disk misbehaves.
//!
//! Two measured quantities are compared:
//!
//! - **busy** — idle-loop-derived CPU busy time within the event span. This
//!   is the paper's latency metric for compute-bound handling.
//! - **span** — wall-clock retrieve-to-boundary time. For I/O-bound
//!   handling the CPU sleeps while the disk seeks, so busy time *excludes*
//!   the wait by construction; span is the honest metric for disk faults.

use latlab_core::MeasuredEvent;
use latlab_des::CpuFreq;
use latlab_os::GroundTruth;

/// One event's measured-vs-truth comparison, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttributionSample {
    /// Kernel-assigned input id shared by oracle and measurement.
    pub input_id: u64,
    /// Oracle latency: input arrival to true handling completion.
    pub truth_ms: f64,
    /// Idle-loop-measured busy time within the event span.
    pub busy_ms: f64,
    /// Wall-clock retrieve-to-boundary span.
    pub span_ms: f64,
}

impl AttributionSample {
    /// Busy-time attribution error (measured − truth).
    pub fn busy_err_ms(&self) -> f64 {
        self.busy_ms - self.truth_ms
    }

    /// Span attribution error (measured − truth).
    pub fn span_err_ms(&self) -> f64 {
        self.span_ms - self.truth_ms
    }
}

/// Aggregate attribution-error statistics for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributionReport {
    /// Per-event comparisons, in measurement order.
    pub samples: Vec<AttributionSample>,
    /// Events compared against the oracle.
    pub compared: usize,
    /// Measured events skipped: test overhead, no input id, unknown to the
    /// oracle (e.g. injected duplicates), or never truly completed (drops).
    pub skipped: usize,
    /// Mean |busy − truth| in ms.
    pub mean_abs_busy_err_ms: f64,
    /// Max |busy − truth| in ms.
    pub max_abs_busy_err_ms: f64,
    /// Mean |span − truth| in ms.
    pub mean_abs_span_err_ms: f64,
    /// Max |span − truth| in ms.
    pub max_abs_span_err_ms: f64,
}

/// Compares measured events against the ground-truth oracle.
///
/// Events are skipped (counted in [`AttributionReport::skipped`]) rather
/// than failed when no honest comparison exists: test-overhead events, events
/// with no input id, ids the oracle never saw (synthetic duplicates injected
/// by the fault engine use ids ≥ `DUP_INPUT_ID_BASE` precisely so they land
/// here), and oracle events with no completion time (dropped inputs).
pub fn attribution_report(
    events: &[MeasuredEvent],
    gt: &GroundTruth,
    freq: CpuFreq,
) -> AttributionReport {
    let mut report = AttributionReport::default();
    for ev in events {
        if ev.is_test_overhead() {
            report.skipped += 1;
            continue;
        }
        let Some(id) = ev.input_id else {
            report.skipped += 1;
            continue;
        };
        let Some(truth) = gt.event(id).and_then(|g| g.true_latency()) else {
            report.skipped += 1;
            continue;
        };
        report.samples.push(AttributionSample {
            input_id: id,
            truth_ms: freq.to_ms(truth),
            busy_ms: ev.latency_ms(freq),
            span_ms: ev.span_ms(freq),
        });
    }
    report.compared = report.samples.len();
    if report.compared > 0 {
        let n = report.compared as f64;
        for s in &report.samples {
            let be = s.busy_err_ms().abs();
            let se = s.span_err_ms().abs();
            report.mean_abs_busy_err_ms += be / n;
            report.mean_abs_span_err_ms += se / n;
            report.max_abs_busy_err_ms = report.max_abs_busy_err_ms.max(be);
            report.max_abs_span_err_ms = report.max_abs_span_err_ms.max(se);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::{SimDuration, SimTime};
    use latlab_os::{InputKind, KeySym, Message, ThreadId};

    const FREQ: CpuFreq = CpuFreq::PENTIUM_100;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + FREQ.ms(ms)
    }

    fn measured(id: Option<u64>, busy_ms: u64, span_ms: u64) -> MeasuredEvent {
        MeasuredEvent {
            message: Message::Input {
                id: id.unwrap_or(0),
                kind: InputKind::Key(KeySym::Char('x')),
            },
            input_id: id,
            window_start: t(0),
            retrieved_at: t(10),
            boundary_at: t(10 + span_ms),
            busy: FREQ.ms(busy_ms),
            span: FREQ.ms(span_ms),
        }
    }

    fn oracle_with(id: u64, latency_ms: u64) -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.on_arrival(id, InputKind::Key(KeySym::Char('x')), t(10));
        gt.on_retrieve(id, ThreadId(1), t(10));
        gt.on_complete(id, t(10) + FREQ.ms(latency_ms));
        gt
    }

    #[test]
    fn exact_match_reports_zero_error() {
        let gt = oracle_with(1, 5);
        let report = attribution_report(&[measured(Some(1), 5, 5)], &gt, FREQ);
        assert_eq!(report.compared, 1);
        assert_eq!(report.skipped, 0);
        assert!(report.mean_abs_busy_err_ms.abs() < 1e-9);
        assert!(report.max_abs_span_err_ms.abs() < 1e-9);
    }

    #[test]
    fn errors_are_absolute_and_maxed() {
        let mut gt = oracle_with(1, 10);
        gt.on_arrival(2, InputKind::Key(KeySym::Char('x')), t(50));
        gt.on_retrieve(2, ThreadId(1), t(50));
        gt.on_complete(2, t(50) + FREQ.ms(4));
        let events = [measured(Some(1), 7, 12), measured(Some(2), 5, 4)];
        let report = attribution_report(&events, &gt, FREQ);
        assert_eq!(report.compared, 2);
        // busy errors: |7-10|=3, |5-4|=1 → mean 2, max 3.
        assert!((report.mean_abs_busy_err_ms - 2.0).abs() < 1e-9);
        assert!((report.max_abs_busy_err_ms - 3.0).abs() < 1e-9);
        // span errors: |12-10|=2, |4-4|=0 → mean 1, max 2.
        assert!((report.mean_abs_span_err_ms - 1.0).abs() < 1e-9);
        assert!((report.max_abs_span_err_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unmatchable_events_are_skipped_not_failed() {
        let gt = oracle_with(1, 5);
        let mut dropped = GroundTruth::new();
        dropped.on_arrival(7, InputKind::Key(KeySym::Char('x')), t(10));
        // id None, unknown id, and known-but-never-completed are all skipped.
        let events = [
            measured(None, 5, 5),
            measured(Some(99), 5, 5),
            measured(Some(1), 5, 5),
        ];
        let report = attribution_report(&events, &gt, FREQ);
        assert_eq!(report.compared, 1);
        assert_eq!(report.skipped, 2);
        let report2 = attribution_report(&[measured(Some(7), 5, 5)], &dropped, FREQ);
        assert_eq!(report2.compared, 0);
        assert_eq!(report2.skipped, 1);
    }

    #[test]
    fn overhead_marker_is_excluded() {
        let gt = oracle_with(1, 5);
        let mut ev = measured(Some(1), 5, 5);
        ev.busy = SimDuration::ZERO;
        ev.span = SimDuration::ZERO;
        // Zero-width events may or may not count as overhead depending on
        // MeasuredEvent's own rule; the report must stay consistent with it.
        let report = attribution_report(&[ev], &gt, FREQ);
        if ev.is_test_overhead() {
            assert_eq!(report.compared, 0);
        } else {
            assert_eq!(report.compared, 1);
        }
    }
}
