//! Single-pass, bounded-memory statistics over trace streams.
//!
//! Batch summaries ([`LatencySummary::from_latencies`]) need the whole
//! population in memory to take exact quantiles. A multi-hour idle-loop
//! trace has millions of samples, so the trace pipeline uses this module
//! instead: Welford accumulation for the moments (exact — identical to
//! the batch path, which pushes through the same [`OnlineStats`]) plus a
//! log-bucketed histogram for quantiles with bounded *relative* error.
//! Memory use is a fixed ~13 KB regardless of stream length.
//!
//! The quantile error bound comes from the bucket geometry: with
//! [`SUBBUCKETS_PER_OCTAVE`] buckets per doubling, bucket boundaries are
//! a factor of `2^(1/32) ≈ 1.022` apart and the reported geometric
//! midpoint is within `2^(1/64) ≈ 1.1%` of any sample in the bucket.
//! Values outside `[2^-20, 2^30]` ms are clamped to the edge buckets.

use std::io::Read;

use latlab_des::OnlineStats;
use latlab_trace::{Record, StreamKind, TraceError, TraceMeta, TraceReader};
use serde::{Deserialize, Serialize};

use crate::summary::LatencySummary;

/// Histogram resolution: buckets per power of two.
pub const SUBBUCKETS_PER_OCTAVE: u32 = 32;

/// Smallest representable value: `2^MIN_EXP` ms (≈ 1 ns).
const MIN_EXP: i32 = -20;

/// Largest representable value: `2^MAX_EXP` ms (≈ 12 days).
const MAX_EXP: i32 = 30;

const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as u32 * SUBBUCKETS_PER_OCTAVE) as usize;

/// Mantissa bits of `2^(i/32)` for `i = 1..32`: the sub-octave bucket
/// boundaries, expressed directly in IEEE-754 significand space so
/// [`StreamingHistogram::bucket_of`] can bucket a value with integer
/// compares on its bit pattern instead of a `log2` call per sample. A
/// test below checks each entry against `exp2`.
const SUB_BOUNDS: [u64; 31] = [
    0x059b0d3158574,
    0x0b5586cf9890f,
    0x11301d0125b51,
    0x172b83c7d517b,
    0x1d4873168b9aa,
    0x2387a6e756238,
    0x29e9df51fdee1,
    0x306fe0a31b715,
    0x371a7373aa9cb,
    0x3dea64c123422,
    0x44e086061892d,
    0x4bfdad5362a27,
    0x5342b569d4f82,
    0x5ab07dd485429,
    0x6247eb03a5585,
    0x6a09e667f3bcd,
    0x71f75e8ec5f74,
    0x7a11473eb0187,
    0x82589994cce13,
    0x8ace5422aa0db,
    0x93737b0cdc5e5,
    0x9c49182a3f090,
    0xa5503b23e255d,
    0xae89f995ad3ad,
    0xb7f76f2fb5e47,
    0xc199bdd85529c,
    0xcb720dcef9069,
    0xd5818dcfba487,
    0xdfc97337b9b5f,
    0xea4afa2a490da,
    0xf50765b6e4540,
];

/// A fixed-size log-bucketed histogram of positive values (ms).
///
/// Quantiles are answered to within ~1.1% relative error for in-range
/// values; see the module docs for the geometry.
#[derive(Clone, Serialize, Deserialize)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl std::fmt::Debug for StreamingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingHistogram")
            .field("total", &self.total)
            .field(
                "nonzero_buckets",
                &self.counts.iter().filter(|&&c| c > 0).count(),
            )
            .finish()
    }
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// The bucket index of `v`: `floor((log2 v − MIN_EXP) · 32)`, clamped
    /// to the table — computed from the IEEE-754 bit pattern. The biased
    /// exponent gives the octave; a binary search of [`SUB_BOUNDS`] over
    /// the raw significand gives the sub-octave. No floating-point math
    /// on the per-sample path, which is what lets the batch fold keep up
    /// with the columnar decoder upstream.
    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            // Zero, negative, and NaN values land in the lowest bucket.
            return 0;
        }
        let bits = v.to_bits();
        let biased = ((bits >> 52) & 0x7ff) as i32;
        if biased == 0 {
            // Subnormal: below 2^-1022, far under the 2^MIN_EXP floor.
            return 0;
        }
        if biased == 0x7ff {
            // +∞ (NaN was handled above): clamp to the top bucket, as the
            // log formulation did.
            return BUCKETS - 1;
        }
        let octave = biased - 1023 - MIN_EXP;
        if octave < 0 {
            return 0;
        }
        if octave >= (MAX_EXP - MIN_EXP) {
            return BUCKETS - 1;
        }
        let mantissa = bits & 0x000f_ffff_ffff_ffff;
        let sub = SUB_BOUNDS.partition_point(|&b| b <= mantissa);
        octave as usize * SUBBUCKETS_PER_OCTAVE as usize + sub
    }

    /// Geometric midpoint of bucket `i`.
    fn representative(i: usize) -> f64 {
        let exp = MIN_EXP as f64 + (i as f64 + 0.5) / SUBBUCKETS_PER_OCTAVE as f64;
        exp.exp2()
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Adds a batch of observations in one pass over the bucket table:
    /// same buckets, same non-finite filtering as repeated
    /// [`push`](Self::push), with the total updated once per batch.
    pub fn push_batch(&mut self, vals: &[f64]) {
        let mut added = 0u64;
        for &v in vals {
            if v.is_finite() {
                self.counts[Self::bucket_of(v)] += 1;
                added += 1;
            }
        }
        self.total += added;
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (`0.0..=1.0`), or `None` if empty.
    ///
    /// Uses the same rank convention as the batch
    /// [`quantile`](latlab_des::stats::quantile) — rank `q·(n−1)` — but
    /// answers with the containing bucket's geometric midpoint instead of
    /// interpolating between exact order statistics.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::representative(i));
            }
        }
        None
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Appends a sparse binary encoding to `out`: the total, then one
    /// `(bucket index u32, count u64)` pair per non-zero bucket, all
    /// little-endian. A histogram is almost entirely zeros (a latency
    /// population clusters in a few dozen of the 1600 buckets), so this
    /// is what checkpoint files persist instead of the dense table.
    pub fn encode_sparse(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.total.to_le_bytes());
        let nonzero = self.counts.iter().filter(|&&c| c > 0).count() as u32;
        out.extend_from_slice(&nonzero.to_le_bytes());
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.extend_from_slice(&(i as u32).to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    /// Decodes an [`encode_sparse`](Self::encode_sparse) image from the
    /// front of `buf`, returning the histogram and the bytes consumed.
    /// Returns `None` on truncation, out-of-range bucket indices, or a
    /// total that disagrees with the bucket counts.
    pub fn decode_sparse(buf: &[u8]) -> Option<(Self, usize)> {
        let total = u64::from_le_bytes(buf.get(..8)?.try_into().ok()?);
        let nonzero = u32::from_le_bytes(buf.get(8..12)?.try_into().ok()?) as usize;
        let mut hist = StreamingHistogram::new();
        let mut at = 12usize;
        let mut sum = 0u64;
        for _ in 0..nonzero {
            let idx = u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?) as usize;
            let count = u64::from_le_bytes(buf.get(at + 4..at + 12)?.try_into().ok()?);
            at += 12;
            if idx >= BUCKETS || count == 0 {
                return None;
            }
            hist.counts[idx] = hist.counts[idx].checked_add(count)?;
            sum = sum.checked_add(count)?;
        }
        if sum != total {
            return None;
        }
        hist.total = total;
        Some((hist, at))
    }
}

/// Exact moments plus approximate quantiles, in one bounded-memory pass.
///
/// `count`, `mean`, `stddev`, `min`, `max` and `total` are *exactly* what
/// the batch [`LatencySummary`] computes (both push through
/// [`OnlineStats`] in stream order); `median` and `p90` carry the
/// histogram's relative-error bound.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamingSummary {
    stats: OnlineStats,
    hist: StreamingHistogram,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingSummary {
            // Not `OnlineStats::default()`, whose min/max start at zero
            // rather than ±∞.
            stats: OnlineStats::new(),
            hist: StreamingHistogram::new(),
        }
    }

    /// Adds one observation (ms).
    pub fn push(&mut self, ms: f64) {
        self.stats.push(ms);
        self.hist.push(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The exact moment accumulator.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The quantile histogram.
    pub fn histogram(&self) -> &StreamingHistogram {
        &self.hist
    }

    /// The `q`-quantile, clamped into the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist
            .quantile(q)
            .map(|v| v.clamp(self.stats.min(), self.stats.max()))
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingSummary) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }

    /// Renders as a [`LatencySummary`] (approximate `median_ms`/`p90_ms`,
    /// everything else exact).
    pub fn to_latency_summary(&self) -> LatencySummary {
        if self.count() == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.stats.count(),
            mean_ms: self.stats.mean(),
            stddev_ms: self.stats.sample_stddev(),
            median_ms: self.quantile(0.5).unwrap_or(0.0),
            p90_ms: self.quantile(0.9).unwrap_or(0.0),
            min_ms: self.stats.min(),
            max_ms: self.stats.max(),
            total_ms: self.stats.mean() * self.stats.count() as f64,
        }
    }
}

/// One-pass summary of an idle-stamp trace stream.
#[derive(Clone, Debug)]
pub struct StampStreamSummary {
    /// The trace header.
    pub meta: TraceMeta,
    /// Stamp records seen.
    pub records: u64,
    /// Interval durations between consecutive stamps, ms.
    pub intervals: StreamingSummary,
    /// Per-interval excess over the calibrated baseline, ms
    /// (the paper's event-handling signal).
    pub excess: StreamingSummary,
    /// First stamp, if any.
    pub first_stamp: Option<u64>,
    /// Last stamp, if any.
    pub last_stamp: Option<u64>,
}

/// Streams an idle-stamp trace into interval/excess summaries without
/// ever materializing the stamp vector — O(1) memory in trace length.
///
/// # Errors
///
/// [`TraceError::KindMismatch`] if the file is not a stamp stream, plus
/// any decode error from the reader.
pub fn summarize_stamps<R: Read>(
    mut reader: TraceReader<R>,
) -> Result<StampStreamSummary, TraceError> {
    let meta = reader.meta().clone();
    if meta.kind != StreamKind::IdleStamps {
        return Err(TraceError::KindMismatch {
            expected: StreamKind::IdleStamps,
            got: meta.kind,
        });
    }
    let baseline_ms = meta.freq.to_ms(meta.baseline);
    let mut out = StampStreamSummary {
        meta,
        records: 0,
        intervals: StreamingSummary::new(),
        excess: StreamingSummary::new(),
        first_stamp: None,
        last_stamp: None,
    };
    let mut prev: Option<u64> = None;
    while let Some(rec) = reader.next()? {
        let Record::Stamp(s) = rec else {
            unreachable!("stamp stream yielded a non-stamp record");
        };
        out.records += 1;
        out.first_stamp.get_or_insert(s);
        out.last_stamp = Some(s);
        if let Some(p) = prev {
            let interval_ms = out
                .meta
                .freq
                .to_ms(latlab_des::SimDuration::from_cycles(s - p));
            out.intervals.push(interval_ms);
            out.excess.push((interval_ms - baseline_ms).max(0.0));
        }
        prev = Some(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_batch_exactly() {
        let data: Vec<f64> = (1..=1000).map(|i| (i as f64).sqrt() * 3.7).collect();
        let batch = LatencySummary::from_latencies(&data);
        let mut s = StreamingSummary::new();
        for &x in &data {
            s.push(x);
        }
        let stream = s.to_latency_summary();
        // Both paths push through OnlineStats in the same order: the
        // moments are bit-identical, not merely close.
        assert_eq!(stream.count, batch.count);
        assert_eq!(stream.mean_ms, batch.mean_ms);
        assert_eq!(stream.stddev_ms, batch.stddev_ms);
        assert_eq!(stream.min_ms, batch.min_ms);
        assert_eq!(stream.max_ms, batch.max_ms);
        assert_eq!(stream.total_ms, batch.total_ms);
    }

    #[test]
    fn quantiles_within_relative_error_bound() {
        // Latency-shaped data: a 1 ms floor with a long multiplicative tail.
        let data: Vec<f64> = (0..10_000)
            .map(|i| 1.0 * (1.0 + (i % 97) as f64 / 10.0) * (1.0 + (i % 13) as f64))
            .collect();
        let mut s = StreamingSummary::new();
        for &x in &data {
            s.push(x);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = latlab_des::stats::quantile(&data, q).unwrap();
            let approx = s.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            // 2^(1/32) bucket width ⇒ ≤ ~2.2% once interpolation
            // differences between adjacent order statistics are included.
            assert!(
                rel < 0.023,
                "q={q}: exact {exact}, approx {approx}, rel {rel}"
            );
        }
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_buckets() {
        let mut h = StreamingHistogram::new();
        h.push(0.0);
        h.push(-5.0);
        h.push(1e300);
        h.push(f64::NAN); // ignored
        h.push(f64::INFINITY); // ignored
        assert_eq!(h.total(), 3);
        assert!(h.quantile(0.0).unwrap() < 1e-5);
        assert!(h.quantile(1.0).unwrap() > 1e8);
    }

    #[test]
    fn merge_equals_single_pass() {
        let (a_data, b_data): (Vec<f64>, Vec<f64>) = (
            (1..500).map(|i| i as f64 * 0.31).collect(),
            (1..700).map(|i| i as f64 * 1.7).collect(),
        );
        let mut all = StreamingSummary::new();
        let mut a = StreamingSummary::new();
        let mut b = StreamingSummary::new();
        for &x in &a_data {
            all.push(x);
            a.push(x);
        }
        for &x in &b_data {
            all.push(x);
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
        assert!((a.stats().mean() - all.stats().mean()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_default() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert!(s.quantile(0.5).is_none());
        assert_eq!(s.to_latency_summary().count, 0);
    }

    #[test]
    fn sub_bounds_are_exp2_mantissas() {
        for (i, &b) in SUB_BOUNDS.iter().enumerate() {
            let expect = ((i + 1) as f64 / SUBBUCKETS_PER_OCTAVE as f64)
                .exp2()
                .to_bits()
                & 0x000f_ffff_ffff_ffff;
            assert_eq!(b, expect, "SUB_BOUNDS[{i}]");
        }
    }

    /// The former formulation of `bucket_of`, via `log2`.
    fn bucket_of_log2(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let idx = ((v.log2() - MIN_EXP as f64) * SUBBUCKETS_PER_OCTAVE as f64).floor();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(BUCKETS - 1)
        }
    }

    #[test]
    fn bit_bucketing_matches_log2_formulation() {
        // Pseudo-random values across the full dynamic range, plus exact
        // powers of two and near-boundary points.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut vals: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let exp = (state % 60) as i32 - 25; // 2^-25 .. 2^34
            let frac = 1.0 + (state >> 12) as f64 / (1u64 << 52) as f64;
            vals.push(frac * (exp as f64).exp2());
        }
        for e in -25..=34 {
            vals.push((e as f64).exp2());
        }
        vals.extend_from_slice(&[0.0, -1.0, f64::MIN_POSITIVE, 1e-300, 1e300]);
        for v in vals {
            assert_eq!(
                StreamingHistogram::bucket_of(v),
                bucket_of_log2(v),
                "bucket_of({v}) diverged from the log2 formulation"
            );
        }
    }

    #[test]
    fn representative_round_trips_through_bucket_of() {
        for i in 0..BUCKETS {
            assert_eq!(
                StreamingHistogram::bucket_of(StreamingHistogram::representative(i)),
                i,
                "representative of bucket {i} fell outside it"
            );
        }
    }

    #[test]
    fn sparse_codec_round_trips() {
        let mut h = StreamingHistogram::new();
        for i in 0..10_000u64 {
            h.push((i % 313) as f64 * 0.37 + 0.004);
        }
        let mut buf = vec![0xAAu8; 3]; // leading junk the encoder must append after
        h.encode_sparse(&mut buf);
        let (back, used) = StreamingHistogram::decode_sparse(&buf[3..]).expect("decodes");
        assert_eq!(used, buf.len() - 3);
        assert_eq!(back.total(), h.total());
        assert_eq!(back.counts, h.counts);

        // Empty histogram round-trips too.
        let mut empty = Vec::new();
        StreamingHistogram::new().encode_sparse(&mut empty);
        let (back, used) = StreamingHistogram::decode_sparse(&empty).expect("decodes");
        assert_eq!(used, empty.len());
        assert_eq!(back.total(), 0);
    }

    #[test]
    fn sparse_decode_rejects_corruption() {
        let mut h = StreamingHistogram::new();
        h.push(1.0);
        h.push(250.0);
        let mut buf = Vec::new();
        h.encode_sparse(&mut buf);
        // Truncation at every prefix length must fail, not panic.
        for cut in 0..buf.len() {
            assert!(StreamingHistogram::decode_sparse(&buf[..cut]).is_none());
        }
        // A bucket index past the table must fail.
        let mut bad = buf.clone();
        bad[12..16].copy_from_slice(&(BUCKETS as u32).to_le_bytes());
        assert!(StreamingHistogram::decode_sparse(&bad).is_none());
        // A total that disagrees with the counts must fail.
        let mut bad = buf.clone();
        bad[0..8].copy_from_slice(&99u64.to_le_bytes());
        assert!(StreamingHistogram::decode_sparse(&bad).is_none());
    }

    #[test]
    fn push_batch_matches_repeated_push() {
        let vals: Vec<f64> = (0..5_000)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => -(i as f64),
                _ => (i as f64) * 0.173 + 0.001,
            })
            .collect();
        let mut one = StreamingHistogram::new();
        for &v in &vals {
            one.push(v);
        }
        let mut batched = StreamingHistogram::new();
        batched.push_batch(&vals);
        assert_eq!(batched.total(), one.total());
        assert_eq!(batched.counts, one.counts);
    }
}
