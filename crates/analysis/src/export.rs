//! CSV and JSON export of experiment results.
//!
//! Every figure/table regenerator in the experiment harness writes its data
//! in machine-readable form alongside the ASCII rendering, so that results
//! can be replotted and diffed across runs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;

/// Serializes rows of `(column → value)` data to a CSV string.
///
/// # Panics
///
/// Panics if the rows have inconsistent lengths.
pub fn to_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(
            row.len(),
            header.len(),
            "row width {} does not match header width {}",
            row.len(),
            header.len()
        );
        let mut first = true;
        for v in row {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

/// Writes a CSV file, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv(header, rows))
}

/// Writes any serializable value as pretty JSON, creating parent
/// directories.
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_formatting() {
        let csv = to_csv(&["a", "b"], &[vec![1.0, 2.5], vec![3.0, 4.0]]);
        assert_eq!(csv, "a,b\n1,2.5\n3,4\n");
    }

    #[test]
    fn empty_rows() {
        let csv = to_csv(&["x"], &[]);
        assert_eq!(csv, "x\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let _ = to_csv(&["a", "b"], &[vec![1.0]]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("latlab-export-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["v"], &[vec![42.0]]).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("42"));
        let jpath = dir.join("t.json");
        write_json(&jpath, &vec![1, 2, 3]).unwrap();
        assert!(fs::read_to_string(&jpath).unwrap().contains('2'));
        let _ = fs::remove_dir_all(dir);
    }
}
