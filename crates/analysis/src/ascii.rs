//! Terminal rendering of the paper's graphical representations.
//!
//! §3.1: *"we present latency measurements graphically"* — here as ASCII
//! charts suitable for the experiment harness's stdout: horizontal bar
//! charts, log-count histograms, event-latency profiles and utilization
//! strips.

use crate::histogram::LatencyHistogram;
use crate::timeseries::{EventSeries, UtilizationProfile};

/// Renders a labelled horizontal bar chart. Values are scaled to
/// `width` characters against the maximum.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.3}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders a histogram with a logarithmic count axis (Figure 7's style:
/// bar length ∝ log10(count)).
pub fn histogram_log(hist: &LatencyHistogram, width: usize) -> String {
    let rows = hist.rows();
    let max_log = rows
        .iter()
        .map(|(_, c)| (*c as f64).log10())
        .fold(0.0f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, count) in &rows {
        let log = (*count as f64).log10();
        let bar_len = if max_log > 0.0 {
            (((log / max_log) * width as f64).round() as usize).max(1)
        } else {
            1
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {count}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders an event-latency profile: one column per event bucketed over
/// time, column height ∝ max latency in the bucket (Figure 5's bars).
pub fn event_profile(series: &EventSeries, columns: usize, height: usize) -> String {
    if series.is_empty() || columns == 0 || height == 0 {
        return String::from("(no events)\n");
    }
    let t_min = series.points().first().map(|p| p.t_secs).unwrap_or(0.0);
    let t_max = series.points().last().map(|p| p.t_secs).unwrap_or(1.0);
    let span = (t_max - t_min).max(1e-9);
    let mut col_max = vec![0.0f64; columns];
    for p in series.points() {
        let c = (((p.t_secs - t_min) / span) * (columns - 1) as f64) as usize;
        col_max[c] = col_max[c].max(p.latency_ms);
    }
    let peak = col_max.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let level = peak * row as f64 / height as f64;
        let line: String = col_max
            .iter()
            .map(|&v| if v >= level { '|' } else { ' ' })
            .collect();
        out.push_str(&format!("{:>8.1} |{line}\n", level));
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>8}  {:<10.1}{:>width$.1}\n",
        "ms",
        "-".repeat(columns),
        "t(s)",
        t_min,
        t_max,
        width = columns.saturating_sub(10)
    ));
    out
}

/// Renders a utilization strip: one character per bin, shaded by level
/// (Figure 3/4's profile at terminal resolution).
pub fn utilization_strip(profile: &UtilizationProfile) -> String {
    const SHADES: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    profile
        .bins()
        .iter()
        .map(|b| {
            let idx = (b.utilization * (SHADES.len() - 1) as f64).round() as usize;
            SHADES[idx.min(SHADES.len() - 1)]
        })
        .collect()
}

/// Renders a utilization profile as a multi-row chart with an axis.
pub fn utilization_chart(profile: &UtilizationProfile, height: usize) -> String {
    let bins = profile.bins();
    if bins.is_empty() || height == 0 {
        return String::from("(no samples)\n");
    }
    let mut out = String::new();
    for row in (1..=height).rev() {
        let level = row as f64 / height as f64;
        let line: String = bins
            .iter()
            .map(|b| {
                if b.utilization >= level - 1e-12 {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        out.push_str(&format!("{:>4.0}% |{line}\n", level * 100.0));
    }
    out.push_str(&format!("      +{}\n", "-".repeat(bins.len())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales() {
        let rows = vec![
            ("a".to_string(), 10.0),
            ("bb".to_string(), 5.0),
            ("c".to_string(), 0.0),
        ];
        let chart = bar_chart(&rows, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[2].matches('#').count() == 0);
    }

    #[test]
    fn histogram_log_renders_nonempty_buckets() {
        let mut h = LatencyHistogram::log2_ms(6);
        for _ in 0..1000 {
            h.add(1.5);
        }
        h.add(30.0);
        let s = histogram_log(&h, 30);
        assert_eq!(s.lines().count(), 2);
        // The 1000-count bar is longer than the 1-count bar.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
    }

    #[test]
    fn empty_event_profile() {
        let s = event_profile(&EventSeries::default(), 40, 8);
        assert!(s.contains("no events"));
    }

    #[test]
    fn utilization_strip_levels() {
        use crate::timeseries::UtilizationProfile;
        use latlab_core::IdleTrace;
        use latlab_des::{CpuFreq, SimDuration, SimTime};
        const MS: u64 = 100_000;
        // Idle then one fully busy region.
        let stamps = vec![0, MS, 2 * MS, 12 * MS, 13 * MS];
        let trace = IdleTrace::new(stamps, SimDuration::from_cycles(MS), CpuFreq::PENTIUM_100);
        let profile =
            UtilizationProfile::from_trace(&trace, SimTime::ZERO, SimTime::from_cycles(13 * MS), 1);
        let strip = utilization_strip(&profile);
        assert_eq!(strip.chars().count(), 13);
        assert!(strip.contains('@') || strip.contains('#'));
        assert!(strip.starts_with(' '));
    }
}
