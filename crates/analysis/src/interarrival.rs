//! Interarrival analysis of long-latency events (Table 2, §6).
//!
//! *"One factor that contributes to user dissatisfaction is the frequency of
//! long-latency events. We processed the Microsoft Word profile … to analyze
//! the distribution of interarrival times of events above a given
//! threshold."* The paper's headline observations: a 10% threshold increase
//! (100 → 110 ms) cut the above-threshold count by a factor of four, and the
//! interarrival standard deviations were of the same order as the means
//! (no strong periodicity).

use latlab_des::OnlineStats;
use serde::{Deserialize, Serialize};

/// Summary for one threshold (one Table 2 row).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InterarrivalRow {
    /// The latency threshold, ms.
    pub threshold_ms: f64,
    /// Number of events at or above the threshold.
    pub count: usize,
    /// Mean interarrival time of those events, seconds (0 when fewer than
    /// two events qualify).
    pub mean_secs: f64,
    /// Sample standard deviation of the interarrival times, seconds.
    pub stddev_secs: f64,
}

/// Computes one row from `(start_secs, latency_ms)` event pairs.
///
/// Events must be in start-time order.
pub fn interarrival_row(events: &[(f64, f64)], threshold_ms: f64) -> InterarrivalRow {
    let starts: Vec<f64> = events
        .iter()
        .filter(|(_, lat)| *lat >= threshold_ms)
        .map(|(t, _)| *t)
        .collect();
    debug_assert!(
        starts.windows(2).all(|w| w[0] <= w[1]),
        "events must be time-ordered"
    );
    let mut stats = OnlineStats::new();
    for w in starts.windows(2) {
        stats.push(w[1] - w[0]);
    }
    InterarrivalRow {
        threshold_ms,
        count: starts.len(),
        mean_secs: stats.mean(),
        stddev_secs: stats.sample_stddev(),
    }
}

/// Computes the full table across several thresholds.
pub fn interarrival_table(events: &[(f64, f64)], thresholds_ms: &[f64]) -> Vec<InterarrivalRow> {
    thresholds_ms
        .iter()
        .map(|&t| interarrival_row(events, t))
        .collect()
}

impl InterarrivalRow {
    /// True if the interarrival spread is of the same order as the mean —
    /// the paper's "no strong periodicity" criterion.
    pub fn no_strong_periodicity(&self) -> bool {
        self.count >= 3 && self.stddev_secs >= self.mean_secs * 0.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_gaps() {
        // Events at t = 0, 1, 3, 10 s; latencies 150, 90, 200, 300 ms.
        let events = [(0.0, 150.0), (1.0, 90.0), (3.0, 200.0), (10.0, 300.0)];
        let row = interarrival_row(&events, 100.0);
        assert_eq!(row.count, 3);
        // Gaps: 3, 7 s → mean 5.
        assert!((row.mean_secs - 5.0).abs() < 1e-12);
        assert!(row.stddev_secs > 0.0);
    }

    #[test]
    fn table_rows_monotone_in_threshold() {
        let events: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, 50.0 + (i % 10) as f64 * 20.0))
            .collect();
        let table = interarrival_table(&events, &[100.0, 150.0, 200.0]);
        assert!(table[0].count >= table[1].count);
        assert!(table[1].count >= table[2].count);
    }

    #[test]
    fn periodic_events_detected_as_periodic() {
        // Perfectly periodic → stddev 0 → strong periodicity.
        let events: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 2.0, 500.0)).collect();
        let row = interarrival_row(&events, 100.0);
        assert!(!row.no_strong_periodicity());
    }

    #[test]
    fn too_few_events_degenerate() {
        let row = interarrival_row(&[(0.0, 500.0)], 100.0);
        assert_eq!(row.count, 1);
        assert_eq!(row.mean_secs, 0.0);
        assert!(!row.no_strong_periodicity());
    }
}
