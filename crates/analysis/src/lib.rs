#![warn(missing_docs)]

//! Latency visualization and statistics (§3 of the paper).
//!
//! The paper presents measurements graphically rather than reducing them to
//! a single scalar: per-event latency profiles, log-count histograms,
//! cumulative-latency curves and interarrival tables. This crate implements
//! those representations over `latlab-core`'s measured events, renders them
//! as terminal charts, and exports them as CSV/JSON for replotting.

pub mod ascii;
pub mod cumulative;
pub mod export;
pub mod histogram;
pub mod interarrival;
pub mod perception;
pub mod sketch;
pub mod streaming;
pub mod summary;
pub mod timeseries;
pub mod validation;

pub use cumulative::CumulativeLatency;
pub use histogram::LatencyHistogram;
pub use interarrival::{interarrival_row, interarrival_table, InterarrivalRow};
pub use perception::{EventClass, PerceptionModel, PerceptionScore, ToleranceBand};
pub use sketch::{ClassSketch, LatencySketch};
pub use streaming::{summarize_stamps, StampStreamSummary, StreamingHistogram, StreamingSummary};
pub use summary::{responsiveness_score, shneiderman_penalty, LatencySummary};
pub use timeseries::{
    EventPoint, EventSeries, JitterSeries, JitterWindow, UtilBin, UtilizationProfile,
};
pub use validation::{attribution_report, AttributionReport, AttributionSample};
