//! Mergeable latency sketches for distributed telemetry.
//!
//! The paper's position is that latency *distributions* — not averages or
//! throughput — characterize interactive performance. When latency
//! telemetry is collected from many machines (or many shards of one
//! ingest service), the per-stream distributions must combine into the
//! distribution of the union without shipping raw samples. This module
//! provides that mergeable form:
//!
//! * one fixed-size log-bucketed histogram ([`StreamingHistogram`]) plus
//!   exact moments per [`EventClass`], so percentiles stay class-aware
//!   (a 300 ms save is fine; a 300 ms keystroke echo is not);
//! * **deadline-miss counters** keyed off the [`PerceptionModel`]
//!   thresholds: for each class, how many samples crossed the
//!   imperceptibility threshold (`free_ms`) and how many saturated
//!   (`saturate_ms`) — the §3.1 responsiveness summation reduced to two
//!   exactly-mergeable integers per class.
//!
//! # Merge semantics
//!
//! [`LatencySketch::merge`] adds bucket counts and miss counters —
//! integer arithmetic, so merging K partial sketches is **exactly
//! order-independent**: any merge tree over the same partials yields
//! identical bucket counts, identical miss counters, and therefore
//! identical quantile answers. The moment accumulators merge through
//! [`OnlineStats::merge`], whose `mean`/`stddev` are order-*sensitive*
//! only in the last few floating-point ulps; `count`, `min`, and `max`
//! remain exact.
//!
//! # Accuracy
//!
//! Quantiles inherit the [`StreamingHistogram`] geometry: bucket
//! boundaries a factor of `2^(1/32)` apart, so any reported quantile is
//! within ~2.3% relative error of the exact order statistic (see
//! [`crate::streaming`]). Merging never widens the bound — the merged
//! histogram is bucket-for-bucket identical to the histogram of the
//! concatenated sample stream.

use latlab_des::OnlineStats;
use serde::{Deserialize, Serialize};

use crate::perception::{EventClass, PerceptionModel, ToleranceBand};
use crate::streaming::StreamingHistogram;

/// Per-class accumulator: histogram + exact moments + deadline misses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassSketch {
    /// Log-bucketed latency histogram (ms).
    hist: StreamingHistogram,
    /// Exact count/mean/min/max moments.
    stats: OnlineStats,
    /// Samples that crossed the class's `free_ms` threshold.
    misses: u64,
    /// Samples that crossed the class's `saturate_ms` threshold.
    saturated: u64,
}

impl Default for ClassSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassSketch {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ClassSketch {
            hist: StreamingHistogram::new(),
            stats: OnlineStats::new(),
            misses: 0,
            saturated: 0,
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.total()
    }

    /// The histogram itself.
    pub fn histogram(&self) -> &StreamingHistogram {
        &self.hist
    }

    /// The exact moment accumulator.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Deadline misses (samples beyond the class's free threshold).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Saturated samples (beyond the class's saturation threshold).
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The `q`-quantile (ms), clamped into the exact observed range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist
            .quantile(q)
            .map(|v| v.clamp(self.stats.min(), self.stats.max()))
    }

    fn push(&mut self, ms: f64, free_ms: Option<f64>, saturate_ms: Option<f64>) {
        self.hist.push(ms);
        self.stats.push(ms);
        if free_ms.is_some_and(|t| ms > t) {
            self.misses += 1;
        }
        if saturate_ms.is_some_and(|t| ms > t) {
            self.saturated += 1;
        }
    }

    /// Columnar fold of a sample batch: the histogram absorbs the whole
    /// slice in one pass over the bucket table, then a single loop runs
    /// the moment accumulator (per-sample, in slice order — so the
    /// moments stay bit-identical to repeated [`push`](Self::push)) and
    /// the threshold counters. Equivalent to pushing each sample.
    fn update_batch(&mut self, samples: &[f64], free_ms: Option<f64>, saturate_ms: Option<f64>) {
        self.hist.push_batch(samples);
        let free = free_ms.unwrap_or(f64::INFINITY);
        let saturate = saturate_ms.unwrap_or(f64::INFINITY);
        let (mut misses, mut saturated) = (0u64, 0u64);
        for &ms in samples {
            if !ms.is_finite() {
                continue;
            }
            self.stats.push(ms);
            if ms > free {
                misses += 1;
            }
            if ms > saturate {
                saturated += 1;
            }
        }
        self.misses += misses;
        self.saturated += saturated;
    }

    fn merge(&mut self, other: &ClassSketch) {
        self.hist.merge(&other.hist);
        self.stats.merge(&other.stats);
        self.misses += other.misses;
        self.saturated += other.saturated;
    }
}

/// A mergeable, class-aware latency sketch.
///
/// Fixed memory (~6 × 13 KB) regardless of how many samples it absorbs.
///
/// # Examples
///
/// ```
/// use latlab_analysis::{EventClass, LatencySketch};
///
/// let mut a = LatencySketch::new();
/// let mut b = LatencySketch::new();
/// a.push(EventClass::Keystroke, 12.0);
/// b.push(EventClass::Keystroke, 500.0); // a deadline miss
/// a.merge(&b);
/// assert_eq!(a.total(), 2);
/// assert_eq!(a.class(EventClass::Keystroke).misses(), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencySketch {
    /// One cell per [`EventClass`], in [`EventClass::ALL`] order.
    classes: Vec<ClassSketch>,
    /// The thresholds misses are counted against.
    model: PerceptionModel,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// Creates an empty sketch using the default [`PerceptionModel`]
    /// thresholds for deadline-miss counting.
    pub fn new() -> Self {
        Self::with_model(PerceptionModel::default())
    }

    /// Creates an empty sketch with explicit thresholds.
    pub fn with_model(model: PerceptionModel) -> Self {
        LatencySketch {
            classes: EventClass::ALL.iter().map(|_| ClassSketch::new()).collect(),
            model,
        }
    }

    /// Adds one latency observation (ms) under a class. Non-finite values
    /// are ignored, matching [`StreamingHistogram::push`].
    pub fn push(&mut self, class: EventClass, ms: f64) {
        if !ms.is_finite() {
            return;
        }
        let band = self.model.band(class);
        self.classes[class.index()].push(ms, band.map(|b| b.free_ms), band.map(|b| b.saturate_ms));
    }

    /// Adds a batch of observations under one class, one sample at a
    /// time. This is the scalar reference path; the ingest hot path uses
    /// [`update_batch`](Self::update_batch), which a unit test holds
    /// equivalent to this per-record fold.
    pub fn push_batch(&mut self, class: EventClass, samples: &[f64]) {
        let band = self.model.band(class);
        let (free, saturate) = (band.map(|b| b.free_ms), band.map(|b| b.saturate_ms));
        let cell = &mut self.classes[class.index()];
        for &ms in samples {
            if ms.is_finite() {
                cell.push(ms, free, saturate);
            }
        }
    }

    /// Columnar fold of a sample batch under one class: one pass over the
    /// histogram bucket table plus one pass for moments and deadline
    /// misses. Produces exactly the state repeated
    /// [`push`](Self::push) calls would — identical counts, miss
    /// counters, bucket contents, and bit-identical moments.
    pub fn update_batch(&mut self, class: EventClass, samples: &[f64]) {
        let band = self.model.band(class);
        self.classes[class.index()].update_batch(
            samples,
            band.map(|b| b.free_ms),
            band.map(|b| b.saturate_ms),
        );
    }

    /// The accumulator for one class.
    pub fn class(&self, class: EventClass) -> &ClassSketch {
        &self.classes[class.index()]
    }

    /// Total samples across all classes.
    pub fn total(&self) -> u64 {
        self.classes.iter().map(ClassSketch::count).sum()
    }

    /// Total deadline misses across all classes.
    pub fn total_misses(&self) -> u64 {
        self.classes.iter().map(|c| c.misses).sum()
    }

    /// The `q`-quantile over the union of all classes (ms).
    ///
    /// Computed by merging the per-class bucket counts, so it equals the
    /// quantile a single classless histogram of the same samples would
    /// report.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut all = StreamingHistogram::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for c in &self.classes {
            if c.count() > 0 {
                all.merge(&c.hist);
                min = min.min(c.stats.min());
                max = max.max(c.stats.max());
            }
        }
        all.quantile(q).map(|v| v.clamp(min, max))
    }

    /// Answers several quantiles over the union of all classes in one
    /// pass: the cross-class union histogram is built **once** and every
    /// `q` is read off it, instead of paying the ~13 KB histogram merge
    /// per quantile as repeated [`quantile`](Self::quantile) calls
    /// would. `out` is cleared first; slot `i` equals exactly what
    /// `self.quantile(qs[i])` returns.
    pub fn quantiles_into(&self, qs: &[f64], out: &mut Vec<Option<f64>>) {
        out.clear();
        let mut all = StreamingHistogram::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for c in &self.classes {
            if c.count() > 0 {
                all.merge(&c.hist);
                min = min.min(c.stats.min());
                max = max.max(c.stats.max());
            }
        }
        out.extend(
            qs.iter()
                .map(|&q| all.quantile(q).map(|v| v.clamp(min, max))),
        );
    }

    /// Folds another sketch into this one. See the module docs for the
    /// order-independence guarantee.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.merge(b);
        }
    }

    /// Merges an iterator of partial sketches into one: the first
    /// partial is cloned and the rest fold in through
    /// [`merge`](Self::merge), **in iteration order** — exactly the
    /// state a manual clone-then-merge loop produces, bit-identical
    /// moment accumulators included. This is the sub-sketch merge hook
    /// the serve query plane re-merges dirty scenarios with; keeping the
    /// fold order here is what lets its cached view stay bit-identical
    /// to the full-merge reference. `None` when the iterator is empty.
    pub fn merge_of<'a>(
        parts: impl IntoIterator<Item = &'a LatencySketch>,
    ) -> Option<LatencySketch> {
        let mut parts = parts.into_iter();
        let mut acc = parts.next()?.clone();
        for p in parts {
            acc.merge(p);
        }
        Some(acc)
    }

    /// Appends a self-delimiting binary encoding to `out`.
    ///
    /// The format is deliberately *not* JSON: an empty [`OnlineStats`]
    /// carries ±∞ min/max, which text codecs mangle. Every float is
    /// persisted via [`f64::to_bits`] little-endian, so decode
    /// round-trips bit-exactly — the property the serve checkpoint layer
    /// relies on for its recovered-sketch-equals-live-sketch invariant.
    ///
    /// Layout: magic `LSKB`, version byte, the five perception bands as
    /// `(free_ms, saturate_ms)` bit pairs, then one cell per
    /// [`EventClass::ALL`] entry — raw [`OnlineStats`] parts, miss and
    /// saturation counters, sparse histogram.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(SKETCH_MAGIC);
        out.push(SKETCH_CODEC_VERSION);
        for band in [
            self.model.keystroke,
            self.model.navigation,
            self.model.screen_change,
            self.model.command,
            self.model.major_operation,
        ] {
            out.extend_from_slice(&band.free_ms.to_bits().to_le_bytes());
            out.extend_from_slice(&band.saturate_ms.to_bits().to_le_bytes());
        }
        for cell in &self.classes {
            let (count, mean, m2, min, max) = cell.stats.to_raw_parts();
            out.extend_from_slice(&count.to_le_bytes());
            for f in [mean, m2, min, max] {
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&cell.misses.to_le_bytes());
            out.extend_from_slice(&cell.saturated.to_le_bytes());
            cell.hist.encode_sparse(out);
        }
    }

    /// Decodes an [`encode`](Self::encode) image from the front of
    /// `buf`, returning the sketch and the bytes consumed. `None` on
    /// truncation, bad magic/version, or a corrupt histogram section.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.get(..4)? != SKETCH_MAGIC || *buf.get(4)? != SKETCH_CODEC_VERSION {
            return None;
        }
        let mut at = 5usize;
        let f64_at = |at: &mut usize| -> Option<f64> {
            let v = f64::from_bits(u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?));
            *at += 8;
            Some(v)
        };
        let mut bands = [ToleranceBand {
            free_ms: 0.0,
            saturate_ms: 0.0,
        }; 5];
        for band in &mut bands {
            band.free_ms = f64_at(&mut at)?;
            band.saturate_ms = f64_at(&mut at)?;
        }
        let model = PerceptionModel {
            keystroke: bands[0],
            navigation: bands[1],
            screen_change: bands[2],
            command: bands[3],
            major_operation: bands[4],
        };
        let u64_at = |at: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(buf.get(*at..*at + 8)?.try_into().ok()?);
            *at += 8;
            Some(v)
        };
        let mut classes = Vec::with_capacity(EventClass::ALL.len());
        for _ in EventClass::ALL {
            let count = u64_at(&mut at)?;
            let mean = f64_at(&mut at)?;
            let m2 = f64_at(&mut at)?;
            let min = f64_at(&mut at)?;
            let max = f64_at(&mut at)?;
            let misses = u64_at(&mut at)?;
            let saturated = u64_at(&mut at)?;
            let (hist, used) = StreamingHistogram::decode_sparse(buf.get(at..)?)?;
            at += used;
            classes.push(ClassSketch {
                hist,
                stats: OnlineStats::from_raw_parts(count, mean, m2, min, max),
                misses,
                saturated,
            });
        }
        Some((LatencySketch { classes, model }, at))
    }
}

/// Magic prefix of the [`LatencySketch::encode`] image.
const SKETCH_MAGIC: &[u8; 4] = b"LSKB";

/// Version byte of the [`LatencySketch::encode`] image.
const SKETCH_CODEC_VERSION: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_follow_perception_thresholds() {
        let mut s = LatencySketch::new();
        // Keystroke band: free 100 ms, saturate 2000 ms.
        s.push(EventClass::Keystroke, 50.0);
        s.push(EventClass::Keystroke, 150.0);
        s.push(EventClass::Keystroke, 5_000.0);
        // MajorOperation band: free 2000 ms — 150 ms is not a miss there.
        s.push(EventClass::MajorOperation, 150.0);
        // Background has no band: nothing is ever a miss.
        s.push(EventClass::Background, 60_000.0);
        let key = s.class(EventClass::Keystroke);
        assert_eq!(key.count(), 3);
        assert_eq!(key.misses(), 2);
        assert_eq!(key.saturated(), 1);
        assert_eq!(s.class(EventClass::MajorOperation).misses(), 0);
        assert_eq!(s.class(EventClass::Background).misses(), 0);
        assert_eq!(s.total(), 5);
        assert_eq!(s.total_misses(), 2);
    }

    #[test]
    fn merge_matches_single_sketch() {
        let mut whole = LatencySketch::new();
        let mut left = LatencySketch::new();
        let mut right = LatencySketch::new();
        for i in 0..1000u64 {
            let ms = 0.5 + (i % 317) as f64 * 1.7;
            let class = EventClass::ALL[(i % 6) as usize];
            whole.push(class, ms);
            if i % 2 == 0 {
                left.push(class, ms);
            } else {
                right.push(class, ms);
            }
        }
        left.merge(&right);
        assert_eq!(left.total(), whole.total());
        assert_eq!(left.total_misses(), whole.total_misses());
        for class in EventClass::ALL {
            assert_eq!(
                left.class(class).quantile(0.9),
                whole.class(class).quantile(0.9),
                "{class:?}"
            );
        }
        assert_eq!(left.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    fn overall_quantile_spans_classes() {
        let mut s = LatencySketch::new();
        s.push_batch(EventClass::Keystroke, &[1.0, 2.0, 3.0]);
        s.push_batch(EventClass::Command, &[1_000.0, 2_000.0, 3_000.0]);
        let p0 = s.quantile(0.0).unwrap();
        let p100 = s.quantile(1.0).unwrap();
        // Within the bucket-geometry error bound of the exact extremes,
        // and clamped into the exact observed range.
        assert!((1.0..1.03).contains(&p0), "p0 {p0}");
        assert!((2_935.0..=3_000.0).contains(&p100), "p100 {p100}");
        let median = s.quantile(0.5).unwrap();
        assert!((2.9..1_050.0).contains(&median), "median {median}");
    }

    #[test]
    fn update_batch_matches_per_record_push_for_every_class() {
        // Samples straddling every interesting regime: below/above the
        // free threshold, above saturation, plus non-finite values the
        // scalar path filters out.
        let samples: Vec<f64> = (0..2_000u64)
            .map(|i| match i % 11 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => 0.05 + (i % 431) as f64 * 23.7,
            })
            .collect();
        for class in EventClass::ALL {
            let mut scalar = LatencySketch::new();
            for &ms in &samples {
                scalar.push(class, ms);
            }
            let mut batched = LatencySketch::new();
            batched.update_batch(class, &samples);
            let (s, b) = (scalar.class(class), batched.class(class));
            assert_eq!(b.count(), s.count(), "{class:?} count");
            assert_eq!(b.misses(), s.misses(), "{class:?} misses");
            assert_eq!(b.saturated(), s.saturated(), "{class:?} saturated");
            assert_eq!(b.stats().count(), s.stats().count(), "{class:?} n");
            assert_eq!(b.stats().mean(), s.stats().mean(), "{class:?} mean");
            assert_eq!(
                b.stats().sample_stddev(),
                s.stats().sample_stddev(),
                "{class:?} stddev"
            );
            assert_eq!(b.stats().min(), s.stats().min(), "{class:?} min");
            assert_eq!(b.stats().max(), s.stats().max(), "{class:?} max");
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(b.quantile(q), s.quantile(q), "{class:?} q{q}");
            }
        }
    }

    #[test]
    fn update_batch_matches_scalar_push_batch() {
        let samples: Vec<f64> = (1..1_500u64).map(|i| (i % 613) as f64 * 3.1).collect();
        let mut scalar = LatencySketch::new();
        let mut batched = LatencySketch::new();
        for chunk in samples.chunks(97) {
            scalar.push_batch(EventClass::Keystroke, chunk);
            batched.update_batch(EventClass::Keystroke, chunk);
        }
        assert_eq!(batched.total(), scalar.total());
        assert_eq!(batched.total_misses(), scalar.total_misses());
        assert_eq!(batched.quantile(0.99), scalar.quantile(0.99));
        let (s, b) = (
            scalar.class(EventClass::Keystroke),
            batched.class(EventClass::Keystroke),
        );
        assert_eq!(b.stats().mean(), s.stats().mean());
    }

    #[test]
    fn quantiles_into_matches_repeated_quantile_calls() {
        let mut s = LatencySketch::new();
        for i in 0..3_000u64 {
            let class = EventClass::ALL[(i % 6) as usize];
            s.push(class, 0.2 + (i % 509) as f64 * 7.9);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut batch = Vec::new();
        s.quantiles_into(&qs, &mut batch);
        assert_eq!(batch.len(), qs.len());
        for (&q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, s.quantile(q), "q={q}");
        }
        // Empty sketch: every slot is None, same as quantile().
        let empty = LatencySketch::new();
        empty.quantiles_into(&qs, &mut batch);
        assert!(batch.iter().all(Option::is_none));
    }

    #[test]
    fn merge_of_is_bit_identical_to_clone_then_merge() {
        let mut parts = Vec::new();
        for p in 0..4u64 {
            let mut s = LatencySketch::new();
            for i in 0..500u64 {
                let class = EventClass::ALL[((i + p) % 6) as usize];
                s.push(class, 0.5 + ((i * 31 + p * 7) % 401) as f64 * 2.3);
            }
            parts.push(s);
        }
        let mut reference = parts[0].clone();
        for p in &parts[1..] {
            reference.merge(p);
        }
        let merged = LatencySketch::merge_of(parts.iter()).expect("non-empty");
        assert_eq!(merged.total(), reference.total());
        assert_eq!(merged.total_misses(), reference.total_misses());
        for class in EventClass::ALL {
            let (a, b) = (merged.class(class), reference.class(class));
            assert_eq!(a.count(), b.count(), "{class:?}");
            assert_eq!(a.misses(), b.misses(), "{class:?}");
            assert_eq!(a.saturated(), b.saturated(), "{class:?}");
            // Moments merge in the same order, so they agree to the bit.
            assert_eq!(a.stats().mean().to_bits(), b.stats().mean().to_bits());
            assert_eq!(
                a.stats().sample_variance().to_bits(),
                b.stats().sample_variance().to_bits()
            );
            assert_eq!(a.stats().min().to_bits(), b.stats().min().to_bits());
            assert_eq!(a.stats().max().to_bits(), b.stats().max().to_bits());
            assert_eq!(a.quantile(0.99), b.quantile(0.99), "{class:?}");
        }
        assert!(LatencySketch::merge_of(std::iter::empty()).is_none());
        // A single contributor is just a clone.
        let one = LatencySketch::merge_of(std::iter::once(&parts[2])).unwrap();
        assert_eq!(one.total(), parts[2].total());
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = LatencySketch::new();
        assert_eq!(s.total(), 0);
        assert!(s.quantile(0.5).is_none());
        assert!(s.class(EventClass::Keystroke).quantile(0.5).is_none());
    }

    #[test]
    fn binary_codec_round_trips_bit_exactly() {
        let mut s = LatencySketch::new();
        for i in 0..5_000u64 {
            let class = EventClass::ALL[(i % 6) as usize];
            s.push(class, 0.03 + (i % 577) as f64 * 4.3);
        }
        // An empty sketch must round-trip too — its stats carry ±∞.
        for sketch in [s, LatencySketch::new()] {
            let mut buf = Vec::new();
            sketch.encode(&mut buf);
            let (back, used) = LatencySketch::decode(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(back.total(), sketch.total());
            assert_eq!(back.total_misses(), sketch.total_misses());
            for class in EventClass::ALL {
                let (a, b) = (sketch.class(class), back.class(class));
                assert_eq!(b.count(), a.count(), "{class:?}");
                assert_eq!(b.misses(), a.misses(), "{class:?}");
                assert_eq!(b.saturated(), a.saturated(), "{class:?}");
                assert_eq!(b.stats().count(), a.stats().count());
                assert_eq!(b.stats().mean().to_bits(), a.stats().mean().to_bits());
                assert_eq!(
                    b.stats().sample_variance().to_bits(),
                    a.stats().sample_variance().to_bits()
                );
                assert_eq!(b.stats().min().to_bits(), a.stats().min().to_bits());
                assert_eq!(b.stats().max().to_bits(), a.stats().max().to_bits());
                for q in [0.0, 0.5, 0.99, 1.0] {
                    assert_eq!(b.quantile(q), a.quantile(q), "{class:?} q{q}");
                }
            }
        }
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let mut s = LatencySketch::new();
        s.push(EventClass::Keystroke, 5.0);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(LatencySketch::decode(&buf[..cut]).is_none(), "cut {cut}");
        }
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(LatencySketch::decode(&bad).is_none());
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(LatencySketch::decode(&bad).is_none());
    }
}
