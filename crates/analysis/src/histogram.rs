//! Latency histograms (§3.2).
//!
//! *"First, we present histograms, showing the number of events
//! corresponding to each measured latency. This presents a detailed
//! breakdown of the event latencies and provides some intuition into the
//! different categories of events present in an application."* The paper
//! plots these with a logarithmic count axis (Figure 7).

use serde::{Deserialize, Serialize};

/// A histogram over latency values in milliseconds.
///
/// # Examples
///
/// ```
/// use latlab_analysis::LatencyHistogram;
///
/// let hist = LatencyHistogram::from_latencies(&[1.5, 2.0, 3.0, 40.0]);
/// assert_eq!(hist.total(), 4);
/// assert_eq!(hist.count_at_or_above(32.0), 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket upper edges, ms (the last bucket is unbounded).
    edges: Vec<f64>,
    /// Counts per bucket (`edges.len() + 1` entries).
    counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Creates a histogram with explicit bucket upper edges (must be
    /// strictly increasing and non-empty).
    ///
    /// # Panics
    ///
    /// Panics on empty or non-increasing edges.
    pub fn with_edges(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let buckets = edges.len() + 1;
        LatencyHistogram {
            edges,
            counts: vec![0; buckets],
        }
    }

    /// Power-of-two millisecond buckets from 1 ms up to `max_pow` (e.g. 10
    /// → 1024 ms), matching the paper's log-scale presentation.
    pub fn log2_ms(max_pow: u32) -> Self {
        let edges = (0..=max_pow).map(|p| (1u64 << p) as f64).collect();
        Self::with_edges(edges)
    }

    /// Adds one observation.
    pub fn add(&mut self, latency_ms: f64) {
        let idx = self.edges.partition_point(|&e| e <= latency_ms);
        self.counts[idx] += 1;
    }

    /// Adds many observations.
    pub fn extend(&mut self, latencies_ms: impl IntoIterator<Item = f64>) {
        for l in latencies_ms {
            self.add(l);
        }
    }

    /// Builds directly from observations with log2 buckets.
    pub fn from_latencies(latencies_ms: &[f64]) -> Self {
        let mut h = Self::log2_ms(13); // up to 8192 ms
        h.extend(latencies_ms.iter().copied());
        h
    }

    /// Bucket count (edges + 1 overflow bucket).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// The count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable label of bucket `i` (e.g. `"[2, 4) ms"`).
    pub fn label(&self, i: usize) -> String {
        if i == 0 {
            format!("< {} ms", self.edges[0])
        } else if i == self.counts.len() - 1 {
            format!("≥ {} ms", self.edges[i - 1])
        } else {
            format!("[{}, {}) ms", self.edges[i - 1], self.edges[i])
        }
    }

    /// Iterates `(label, count)` over non-empty buckets.
    pub fn rows(&self) -> Vec<(String, u64)> {
        (0..self.buckets())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (self.label(i), self.counts[i]))
            .collect()
    }

    /// The number of observations at or above `threshold_ms`, using exact
    /// bucket boundaries when aligned (used for Table 2-style thresholding
    /// the caller typically does on raw data instead).
    pub fn count_at_or_above(&self, threshold_ms: f64) -> u64 {
        let idx = self.edges.partition_point(|&e| e <= threshold_ms);
        self.counts[idx..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing() {
        let mut h = LatencyHistogram::log2_ms(4); // edges 1,2,4,8,16
        for v in [0.5, 1.0, 1.5, 3.0, 9.0, 100.0] {
            h.add(v);
        }
        assert_eq!(h.count(0), 1); // <1
        assert_eq!(h.count(1), 2); // [1,2)
        assert_eq!(h.count(2), 1); // [2,4)
        assert_eq!(h.count(3), 0); // [4,8)
        assert_eq!(h.count(4), 1); // [8,16)
        assert_eq!(h.count(5), 1); // >=16
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn labels_are_descriptive() {
        let h = LatencyHistogram::log2_ms(2);
        assert_eq!(h.label(0), "< 1 ms");
        assert_eq!(h.label(1), "[1, 2) ms");
        assert_eq!(h.label(3), "≥ 4 ms");
    }

    #[test]
    fn rows_skip_empty() {
        let mut h = LatencyHistogram::log2_ms(3);
        h.add(1.5);
        h.add(1.7);
        let rows = h.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 2);
    }

    #[test]
    fn threshold_counting() {
        let h = LatencyHistogram::from_latencies(&[0.5, 3.0, 10.0, 200.0]);
        assert_eq!(h.count_at_or_above(8.0), 2);
        assert_eq!(h.count_at_or_above(1.0), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_rejected() {
        let _ = LatencyHistogram::with_edges(vec![1.0, 1.0]);
    }
}
