//! Event-latency time series and CPU-utilization profiles.
//!
//! * Figure 5 / Figure 12: each event drawn at its start time with its
//!   latency as the bar height — [`EventSeries`].
//! * Figures 3 and 4: CPU utilization over time reconstructed from the
//!   idle-loop trace, at raw (per-sample) resolution or averaged over
//!   fixed bins — [`UtilizationProfile`].

use latlab_core::{IdleTrace, MeasuredEvent};
use latlab_des::{CpuFreq, SimTime};
use serde::{Deserialize, Serialize};

/// One event bar: start time and latency, in seconds/milliseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EventPoint {
    /// Event start, seconds since power-on.
    pub t_secs: f64,
    /// Event latency, milliseconds.
    pub latency_ms: f64,
}

/// A Figure 5-style raw event profile.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EventSeries {
    points: Vec<EventPoint>,
}

impl EventSeries {
    /// Builds the series from measured events (CPU-busy latency).
    pub fn from_events(events: &[MeasuredEvent], freq: CpuFreq) -> Self {
        EventSeries {
            points: events
                .iter()
                .map(|e| EventPoint {
                    t_secs: freq.time_to_secs(e.window_start),
                    latency_ms: e.latency_ms(freq),
                })
                .collect(),
        }
    }

    /// Builds the series using wall spans — the wait-time reading for
    /// disk-bound events (Table 1 / Figure 12).
    pub fn from_event_spans(events: &[MeasuredEvent], freq: CpuFreq) -> Self {
        EventSeries {
            points: events
                .iter()
                .map(|e| EventPoint {
                    t_secs: freq.time_to_secs(e.window_start),
                    latency_ms: e.span_ms(freq),
                })
                .collect(),
        }
    }

    /// The points, in time order.
    pub fn points(&self) -> &[EventPoint] {
        &self.points
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// A magnified view: points within `[from_secs, to_secs)` (Figure 5b).
    pub fn window(&self, from_secs: f64, to_secs: f64) -> EventSeries {
        EventSeries {
            points: self
                .points
                .iter()
                .filter(|p| p.t_secs >= from_secs && p.t_secs < to_secs)
                .copied()
                .collect(),
        }
    }

    /// Points above a latency threshold (Figure 12 uses 50 ms).
    pub fn above(&self, threshold_ms: f64) -> EventSeries {
        EventSeries {
            points: self
                .points
                .iter()
                .filter(|p| p.latency_ms >= threshold_ms)
                .copied()
                .collect(),
        }
    }

    /// The fraction of events under the 0.1 s perception threshold the
    /// paper draws on Figure 5.
    pub fn fraction_imperceptible(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.latency_ms < 100.0).count() as f64
            / self.points.len() as f64
    }
}

/// A sliding-window latency percentile series: responsiveness *stability*
/// over the course of a run (jitter bands), complementing the paper's
/// whole-run histograms.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JitterSeries {
    windows: Vec<JitterWindow>,
}

/// One window's latency percentiles.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct JitterWindow {
    /// Window start, seconds.
    pub t_secs: f64,
    /// Median latency in the window, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
    /// Events in the window.
    pub count: usize,
}

impl JitterSeries {
    /// Builds the series from an event series with windows of
    /// `window_secs`, advancing by `stride_secs`.
    ///
    /// # Panics
    ///
    /// Panics if the window or stride is non-positive.
    pub fn from_series(series: &EventSeries, window_secs: f64, stride_secs: f64) -> Self {
        assert!(
            window_secs > 0.0 && stride_secs > 0.0,
            "positive window/stride"
        );
        let points = series.points();
        let Some(first) = points.first() else {
            return JitterSeries::default();
        };
        let last = points.last().expect("non-empty").t_secs;
        let mut windows = Vec::new();
        let mut t = first.t_secs;
        while t <= last {
            let lats: Vec<f64> = points
                .iter()
                .filter(|p| p.t_secs >= t && p.t_secs < t + window_secs)
                .map(|p| p.latency_ms)
                .collect();
            if !lats.is_empty() {
                windows.push(JitterWindow {
                    t_secs: t,
                    p50_ms: latlab_des::stats::median(&lats).unwrap_or(0.0),
                    p90_ms: latlab_des::stats::quantile(&lats, 0.9).unwrap_or(0.0),
                    max_ms: lats.iter().copied().fold(0.0, f64::max),
                    count: lats.len(),
                });
            }
            t += stride_secs;
        }
        JitterSeries { windows }
    }

    /// The windows.
    pub fn windows(&self) -> &[JitterWindow] {
        &self.windows
    }

    /// The spread of window medians (max − min), a run-stability indicator.
    pub fn median_drift_ms(&self) -> f64 {
        let meds: Vec<f64> = self.windows.iter().map(|w| w.p50_ms).collect();
        let max = meds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = meds.iter().copied().fold(f64::INFINITY, f64::min);
        if meds.is_empty() {
            0.0
        } else {
            max - min
        }
    }
}

/// One utilization bin.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UtilBin {
    /// Bin start, milliseconds since power-on.
    pub t_ms: f64,
    /// Mean CPU utilization in the bin, `0.0..=1.0`.
    pub utilization: f64,
}

/// A CPU-utilization profile reconstructed from an idle-loop trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UtilizationProfile {
    bins: Vec<UtilBin>,
}

impl UtilizationProfile {
    /// Builds a profile over `[from, to)` with fixed `bin_ms` bins.
    ///
    /// `bin_ms = 1` reproduces Figure 4a's raw resolution; `bin_ms = 10`
    /// reproduces Figure 4b's averaged view.
    ///
    /// # Panics
    ///
    /// Panics if `bin_ms` is zero.
    pub fn from_trace(trace: &IdleTrace, from: SimTime, to: SimTime, bin_ms: u64) -> Self {
        assert!(bin_ms > 0, "bin width must be non-zero");
        let freq = trace.freq();
        let bin = freq.ms(bin_ms);
        let mut bins = Vec::new();
        let mut t = from;
        while t < to {
            let end = (t + bin).min(to);
            let busy = trace.busy_within(t, end);
            let width = end.since(t);
            let utilization = if width.is_zero() {
                0.0
            } else {
                (busy.cycles() as f64 / width.cycles() as f64).min(1.0)
            };
            bins.push(UtilBin {
                t_ms: freq.time_to_ms(t),
                utilization,
            });
            t = end;
        }
        UtilizationProfile { bins }
    }

    /// The bins.
    pub fn bins(&self) -> &[UtilBin] {
        &self.bins
    }

    /// Mean utilization across the profile.
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.bins.iter().map(|b| b.utilization).sum::<f64>() / self.bins.len() as f64
    }

    /// Count of bins at or above a utilization level (burst detection for
    /// the Figure 3 clock-interrupt spikes).
    pub fn bins_at_or_above(&self, level: f64) -> usize {
        self.bins.iter().filter(|b| b.utilization >= level).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::SimDuration;

    const MS: u64 = 100_000;

    fn trace_with_busy_10_to_18() -> IdleTrace {
        let mut stamps: Vec<u64> = (0..=10).map(|i| i * MS).collect();
        stamps.push(18 * MS);
        for i in 1..=10u64 {
            stamps.push((18 + i) * MS);
        }
        IdleTrace::new(stamps, SimDuration::from_cycles(MS), CpuFreq::PENTIUM_100)
    }

    #[test]
    fn utilization_profile_shows_burst() {
        let trace = trace_with_busy_10_to_18();
        let p =
            UtilizationProfile::from_trace(&trace, SimTime::ZERO, SimTime::from_cycles(28 * MS), 1);
        assert_eq!(p.bins().len(), 28);
        // Bins 10..17 carry the busy time (7/8 utilization each under the
        // uniform assumption).
        assert!(p.bins()[12].utilization > 0.8);
        assert!(p.bins()[2].utilization < 1e-9);
        assert!(p.bins_at_or_above(0.5) >= 7);
    }

    #[test]
    fn coarse_bins_average() {
        let trace = trace_with_busy_10_to_18();
        let p = UtilizationProfile::from_trace(
            &trace,
            SimTime::ZERO,
            SimTime::from_cycles(30 * MS),
            10,
        );
        assert_eq!(p.bins().len(), 3);
        // Second bin (10–20 ms) holds the 7 ms of busy → 0.7.
        assert!((p.bins()[1].utilization - 0.7).abs() < 0.01);
    }

    #[test]
    fn event_series_window_and_threshold() {
        let points = [(0.5, 10.0), (1.5, 200.0), (2.5, 40.0), (3.5, 120.0)];
        let series = EventSeries {
            points: points
                .iter()
                .map(|&(t_secs, latency_ms)| EventPoint { t_secs, latency_ms })
                .collect(),
        };
        assert_eq!(series.window(1.0, 3.0).len(), 2);
        assert_eq!(series.above(100.0).len(), 2);
        assert!((series.fraction_imperceptible() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jitter_series_windows() {
        let points: Vec<EventPoint> = (0..100)
            .map(|i| EventPoint {
                t_secs: i as f64 * 0.1,
                latency_ms: if i < 50 { 10.0 } else { 30.0 },
            })
            .collect();
        let series = EventSeries { points };
        let jitter = JitterSeries::from_series(&series, 2.0, 1.0);
        assert!(!jitter.windows().is_empty());
        // Early windows are all-10, late windows all-30.
        assert!((jitter.windows().first().unwrap().p50_ms - 10.0).abs() < 1e-9);
        assert!((jitter.windows().last().unwrap().p50_ms - 30.0).abs() < 1e-9);
        assert!((jitter.median_drift_ms() - 20.0).abs() < 1e-9);
        // Empty input.
        assert!(JitterSeries::from_series(&EventSeries::default(), 1.0, 1.0)
            .windows()
            .is_empty());
    }

    #[test]
    fn empty_profile() {
        let p = UtilizationProfile::default();
        assert_eq!(p.mean(), 0.0);
        assert!(EventSeries::default().is_empty());
    }
}
