//! Scale check: streaming summary of a 10-million-sample trace.
//!
//! Ignored by default (it pushes ~10M records through the writer and
//! reader); run explicitly with
//! `cargo test -p latlab-analysis --release --test scale -- --ignored`.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use latlab_analysis::summarize_stamps;
use latlab_des::{CpuFreq, SimDuration};
use latlab_trace::{Record, StreamKind, TraceMeta, TraceReader, TraceWriter};

const SAMPLES: u64 = 10_000_001;

#[test]
#[ignore = "large: writes and streams a 10M-record trace"]
fn ten_million_sample_trace_streams_in_bounded_memory() {
    let path = std::env::temp_dir().join("latlab-scale-10m.ltrc");
    let meta = TraceMeta {
        kind: StreamKind::IdleStamps,
        freq: CpuFreq::PENTIUM_100,
        baseline: SimDuration::from_cycles(100_000),
        seed: 0,
        personality: "scale-test".to_owned(),
    };
    let mut w = TraceWriter::create(BufWriter::new(File::create(&path).unwrap()), meta).unwrap();
    // ~1 ms strides with a long elongation every 1000th sample.
    let mut t = 0u64;
    for i in 0..SAMPLES {
        t += 100_000 + (i % 11) * 17 + if i % 1000 == 0 { 5_000_000 } else { 0 };
        w.write(&Record::Stamp(t)).unwrap();
    }
    w.finish()
        .unwrap()
        .into_inner()
        .unwrap()
        .sync_all()
        .unwrap();

    // The summarizer holds only the reader's one-chunk buffer plus the
    // fixed-size histogram/moment state — independent of trace length.
    let reader = TraceReader::open(BufReader::new(File::open(&path).unwrap())).unwrap();
    let s = summarize_stamps(reader).unwrap();
    assert_eq!(s.records, SAMPLES);
    assert_eq!(s.intervals.count(), SAMPLES - 1);
    let sum = s.intervals.to_latency_summary();
    // Intervals are ~1 ms, elongated to ~51 ms every 1000th sample.
    assert!(sum.min_ms >= 1.0 && sum.min_ms < 1.1, "min {}", sum.min_ms);
    assert!(sum.max_ms > 50.0 && sum.max_ms < 52.0, "max {}", sum.max_ms);
    assert!(
        sum.mean_ms > 1.0 && sum.mean_ms < 1.2,
        "mean {}",
        sum.mean_ms
    );

    std::fs::remove_file(&path).ok();
}
