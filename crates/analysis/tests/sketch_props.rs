//! Property tests for the mergeable latency sketch: merging K partial
//! sketches is order-independent, and merged quantiles stay within the
//! documented relative-error bound of the exact order statistics.

use latlab_analysis::{EventClass, LatencySketch};
use proptest::prelude::*;

/// Splits `samples` into `k` round-robin partial sketches.
fn partials(samples: &[(usize, f64)], k: usize) -> Vec<LatencySketch> {
    let mut parts: Vec<LatencySketch> = (0..k).map(|_| LatencySketch::new()).collect();
    for (i, &(class_idx, ms)) in samples.iter().enumerate() {
        parts[i % k].push(EventClass::ALL[class_idx % 6], ms);
    }
    parts
}

/// Merges partial sketches in the given order into one.
fn merge_in_order(parts: &[LatencySketch], order: &[usize]) -> LatencySketch {
    let mut acc = LatencySketch::new();
    for &i in order {
        acc.merge(&parts[i]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any merge order over the same partials yields identical bucket
    /// state: identical per-class counts, miss counters, and quantiles.
    #[test]
    fn merge_is_order_independent(
        samples in prop::collection::vec((0usize..6, 0.01f64..10_000.0), 1..400),
        k in 2usize..8,
        rot in 0usize..8,
    ) {
        let parts = partials(&samples, k);
        let forward: Vec<usize> = (0..k).collect();
        let reversed: Vec<usize> = (0..k).rev().collect();
        let rotated: Vec<usize> = (0..k).map(|i| (i + rot) % k).collect();
        let a = merge_in_order(&parts, &forward);
        let b = merge_in_order(&parts, &reversed);
        let c = merge_in_order(&parts, &rotated);
        for m in [&b, &c] {
            prop_assert_eq!(a.total(), m.total());
            prop_assert_eq!(a.total_misses(), m.total_misses());
            for class in EventClass::ALL {
                let (ca, cm) = (a.class(class), m.class(class));
                prop_assert_eq!(ca.count(), cm.count());
                prop_assert_eq!(ca.misses(), cm.misses());
                prop_assert_eq!(ca.saturated(), cm.saturated());
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(ca.quantile(q), cm.quantile(q));
                }
                // Exact moment fields are order-independent too.
                prop_assert_eq!(ca.stats().count(), cm.stats().count());
                prop_assert_eq!(ca.stats().min(), cm.stats().min());
                prop_assert_eq!(ca.stats().max(), cm.stats().max());
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(a.quantile(q), m.quantile(q));
            }
        }
    }

    /// The merged sketch's overall quantiles stay within the histogram
    /// geometry's relative-error bound of the exact order statistics of
    /// the concatenated samples, and merging equals the single-sketch
    /// fold of the same stream.
    #[test]
    fn merged_quantiles_bound_relative_error(
        samples in prop::collection::vec((0usize..6, 0.01f64..10_000.0), 2..500),
        k in 1usize..6,
    ) {
        let parts = partials(&samples, k);
        let order: Vec<usize> = (0..k).collect();
        let merged = merge_in_order(&parts, &order);

        let mut whole = LatencySketch::new();
        let mut raw: Vec<f64> = Vec::with_capacity(samples.len());
        for &(class_idx, ms) in &samples {
            whole.push(EventClass::ALL[class_idx % 6], ms);
            raw.push(ms);
        }
        prop_assert_eq!(merged.total(), whole.total());
        raw.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
            // The histogram's rank convention: round(q·(n−1)), answered
            // with the containing bucket's geometric midpoint — so the
            // comparison target is the exact order statistic at that
            // rank, not the interpolated quantile.
            let rank = (q * (raw.len() - 1) as f64).round() as usize;
            let exact = raw[rank];
            let approx = merged.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact.max(f64::MIN_POSITIVE);
            // Bucket boundaries are 2^(1/32) apart and the reported
            // midpoint is within 2^(1/64) ≈ 1.1% of any bucket member.
            prop_assert!(
                rel < 0.012,
                "q={} exact={} approx={} rel={}", q, exact, approx, rel
            );
        }
    }
}
