//! The stochastic human typist.
//!
//! §5.4 compares Microsoft-Test-driven input against hand-generated input
//! from a real typist. This model generates reproducible "hand" input:
//! keystroke intervals follow a log-normal distribution floored at the
//! paper's quoted human limit — *"even the best typists require
//! approximately 120 ms per keystroke"* (§2, citing Shneiderman) — with
//! longer think pauses at word boundaries and occasional typos corrected
//! with backspace.

use latlab_des::{CpuFreq, SimDuration, SimRng};
use latlab_os::KeySym;

use crate::script::InputScript;

/// Typist parameters.
///
/// # Examples
///
/// ```
/// use latlab_input::HumanModel;
///
/// let script = HumanModel::with_wpm(100.0, 42).type_text("hello");
/// assert!(script.len() >= 5); // typos may add corrections
/// // The same seed reproduces the same session.
/// assert_eq!(script, HumanModel::with_wpm(100.0, 42).type_text("hello"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct HumanModel {
    /// Typing speed in words per minute (a word is 5 keystrokes).
    pub wpm: f64,
    /// Log-normal sigma of inter-keystroke jitter.
    pub jitter_sigma: f64,
    /// Hard floor on inter-keystroke interval, ms.
    pub min_interval_ms: f64,
    /// Probability of a think pause at a word boundary.
    pub think_pause_prob: f64,
    /// Mean think-pause length, ms (exponential-ish via log-normal).
    pub think_pause_ms: f64,
    /// Probability a keystroke is mistyped (then corrected).
    pub typo_prob: f64,
    /// RNG seed — the same seed reproduces the same session, like the
    /// paper's repeated same-typist trials.
    pub seed: u64,
}

impl Default for HumanModel {
    fn default() -> Self {
        HumanModel {
            wpm: 100.0,
            jitter_sigma: 0.35,
            min_interval_ms: 120.0,
            think_pause_prob: 0.08,
            think_pause_ms: 900.0,
            typo_prob: 0.015,
            seed: 0x1996_05d1,
        }
    }
}

impl HumanModel {
    /// A typist at the given speed with a fixed seed.
    pub fn with_wpm(wpm: f64, seed: u64) -> Self {
        HumanModel {
            wpm,
            seed,
            ..HumanModel::default()
        }
    }

    /// Mean inter-keystroke interval in milliseconds.
    pub fn mean_interval_ms(&self) -> f64 {
        // wpm words/min × 5 chars/word → chars per minute.
        60_000.0 / (self.wpm * 5.0)
    }

    /// Generates the script for typing `text` (newlines become Enter).
    pub fn type_text(&self, text: &str) -> InputScript {
        let freq = CpuFreq::PENTIUM_100;
        let mut rng = SimRng::new(self.seed);
        let mean = self.mean_interval_ms();
        // Log-normal with the requested mean: mu = ln(mean) - sigma²/2.
        let mu = mean.ln() - self.jitter_sigma * self.jitter_sigma / 2.0;
        let mut script = InputScript::new();
        let interval = |rng: &mut SimRng| -> SimDuration {
            let ms = rng
                .gen_lognormal(mu, self.jitter_sigma)
                .max(self.min_interval_ms);
            freq.ms_f64(ms)
        };
        for c in text.chars() {
            let key = match c {
                '\n' => KeySym::Enter,
                c => KeySym::Char(c),
            };
            let mut pause = interval(&mut rng);
            // Think pause before starting a new word.
            if c == ' ' && rng.gen_bool(self.think_pause_prob) {
                pause += freq.ms_f64(rng.gen_lognormal(self.think_pause_ms.ln() - 0.125, 0.5));
            }
            // Typo: wrong neighbouring key, then a correction.
            if matches!(key, KeySym::Char(ch) if ch.is_ascii_alphabetic())
                && rng.gen_bool(self.typo_prob)
            {
                let wrong = KeySym::Char('x');
                script = script
                    .key(pause, wrong)
                    .key(interval(&mut rng), KeySym::Backspace);
                pause = interval(&mut rng);
            }
            script = script.key(pause, key);
        }
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::CpuFreq;
    use latlab_os::InputKind;

    const F: CpuFreq = CpuFreq::PENTIUM_100;

    #[test]
    fn respects_human_speed_floor() {
        let model = HumanModel::with_wpm(200.0, 7);
        let script = model.type_text("the quick brown fox jumps over the lazy dog");
        for step in script.steps() {
            assert!(
                F.to_ms(step.pause) >= 119.9,
                "interval {} ms under the 120 ms floor",
                F.to_ms(step.pause)
            );
        }
    }

    #[test]
    fn mean_interval_tracks_wpm() {
        let model = HumanModel::with_wpm(100.0, 42);
        assert!((model.mean_interval_ms() - 120.0).abs() < 1e-9);
        let text: String = std::iter::repeat_n('a', 400).collect();
        let script = model.type_text(&text);
        let mean_ms = F.to_ms(script.duration()) / script.len() as f64;
        // Floored log-normal: mean should be near (slightly above) 120 ms.
        assert!(
            (115.0..190.0).contains(&mean_ms),
            "mean interval {mean_ms} ms"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HumanModel::with_wpm(90.0, 5).type_text("hello world");
        let b = HumanModel::with_wpm(90.0, 5).type_text("hello world");
        let c = HumanModel::with_wpm(90.0, 6).type_text("hello world");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn typos_inject_backspaces() {
        let model = HumanModel {
            typo_prob: 0.5,
            ..HumanModel::with_wpm(100.0, 11)
        };
        let script = model.type_text("abcdefghijklmnopqrstuvwxyz");
        let backspaces = script
            .steps()
            .iter()
            .filter(|s| s.kind == InputKind::Key(KeySym::Backspace))
            .count();
        assert!(backspaces > 3, "expected corrections, saw {backspaces}");
    }

    #[test]
    fn newlines_become_enter() {
        let script = HumanModel::default().type_text("a\nb");
        assert!(script
            .steps()
            .iter()
            .any(|s| s.kind == InputKind::Key(KeySym::Enter)));
    }
}
