//! The Microsoft Visual Test analog.
//!
//! §3: *"MS Test provides a system for simulating user input events on a
//! Windows system in a repeatable manner. Test scripts can specify the
//! pauses between input events, generating minimal runtime overhead.
//! However, in some cases, the way that Test drives applications alters the
//! behavior of those applications."*
//!
//! The altering mechanism the paper discovered (§5.4, Figure 7 caption) is
//! journal-playback synchronization: *"Test generates a WM_QUEUESYNC
//! message after every keystroke."* The driver reproduces it: each delivered
//! input is followed by a `WM_QUEUESYNC` post to the focused thread.
//! Disabling the artifact (`queuesync: false`) models ideal scripted input —
//! the hand-vs-Test comparisons of §5.4 toggle exactly this.

use latlab_des::{CpuFreq, SimDuration, SimTime};
use latlab_os::{Machine, Message};

use crate::script::InputScript;

/// The scripted-input driver.
#[derive(Clone, Copy, Debug)]
pub struct TestDriver {
    /// Post `WM_QUEUESYNC` after every input (the real Test behaviour).
    pub queuesync: bool,
    /// Delay between an input and its `WM_QUEUESYNC`.
    pub queuesync_delay: SimDuration,
}

impl TestDriver {
    /// The faithful Microsoft Test configuration.
    pub fn ms_test() -> Self {
        TestDriver {
            queuesync: true,
            queuesync_delay: CpuFreq::PENTIUM_100.us(500),
        }
    }

    /// An idealized driver without the journal-sync artifact (models a
    /// human source of the same timed input).
    pub fn clean() -> Self {
        TestDriver {
            queuesync: false,
            queuesync_delay: SimDuration::ZERO,
        }
    }

    /// Schedules a script on a machine starting at `start`; returns the
    /// input ids in delivery order.
    pub fn schedule(
        &self,
        machine: &mut Machine,
        start: SimTime,
        script: &InputScript,
    ) -> Vec<u64> {
        let mut at = start;
        let mut ids = Vec::with_capacity(script.len());
        for step in script.steps() {
            at += step.pause;
            ids.push(machine.schedule_input_at(at, step.kind));
            if self.queuesync {
                machine.schedule_post_to_focus(at + self.queuesync_delay, Message::QueueSync);
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_os::{
        Action, ApiCall, ApiReply, ComputeSpec, KeySym, OsProfile, ProcessSpec, Program, StepCtx,
    };

    #[derive(Clone)]

    struct Sink {
        waiting: bool,
    }

    impl Program for Sink {
        fn step(&mut self, ctx: &mut StepCtx) -> Action {
            if self.waiting {
                self.waiting = false;
                if let ApiReply::Message(Some(_)) = ctx.reply {
                    return Action::Compute(ComputeSpec::app(50_000));
                }
            }
            self.waiting = true;
            Action::Call(ApiCall::GetMessage)
        }
    }

    const F: CpuFreq = CpuFreq::PENTIUM_100;

    fn run(driver: TestDriver) -> (usize, usize) {
        let mut m = Machine::new(OsProfile::Nt40.params());
        let tid = m.spawn(ProcessSpec::app("sink"), Box::new(Sink { waiting: false }));
        m.set_focus(tid);
        let script = InputScript::new().text(F.ms(150), "abc");
        let ids = driver.schedule(&mut m, SimTime::ZERO + F.ms(100), &script);
        m.run_until(SimTime::ZERO + F.secs(2));
        let retrieved = m
            .apilog()
            .for_thread(tid)
            .filter(|e| e.retrieved().is_some())
            .count();
        (ids.len(), retrieved)
    }

    #[test]
    fn ms_test_mode_doubles_message_count() {
        let (inputs, retrieved) = run(TestDriver::ms_test());
        assert_eq!(inputs, 3);
        assert_eq!(retrieved, 6, "each input followed by a WM_QUEUESYNC");
    }

    #[test]
    fn clean_mode_delivers_inputs_only() {
        let (inputs, retrieved) = run(TestDriver::clean());
        assert_eq!(inputs, 3);
        assert_eq!(retrieved, 3);
    }

    #[test]
    fn ids_are_in_delivery_order() {
        let mut m = Machine::new(OsProfile::Nt40.params());
        let tid = m.spawn(ProcessSpec::app("sink"), Box::new(Sink { waiting: false }));
        m.set_focus(tid);
        let script = InputScript::new()
            .key(F.ms(10), KeySym::Char('a'))
            .key(F.ms(10), KeySym::Char('b'));
        let ids = TestDriver::clean().schedule(&mut m, SimTime::ZERO + F.ms(1), &script);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
