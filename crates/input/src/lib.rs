#![warn(missing_docs)]

//! Workload generation for the latency-measurement reproduction.
//!
//! Two input sources drive the simulated machine, mirroring §3 and §5.4 of
//! the paper:
//!
//! * [`TestDriver`] — the Microsoft Visual Test analog: precisely timed
//!   scripted input that posts a `WM_QUEUESYNC` after every event (the
//!   artifact the paper discovered altering application behaviour).
//! * [`HumanModel`] — a reproducible stochastic typist honouring the 120 ms
//!   per-keystroke human floor, with think pauses and corrected typos.
//!
//! [`workloads`] packages the paper's task scenarios (Notepad, Word,
//! PowerPoint, simple-event microbenchmarks) as ready-made scripts.

pub mod human;
pub mod script;
pub mod test_driver;
pub mod workloads;

pub use human::HumanModel;
pub use script::{InputScript, ScriptStep};
pub use test_driver::TestDriver;
