//! Canonical benchmark workloads: the paper's task scenarios as scripts.

use latlab_des::CpuFreq;
use latlab_os::KeySym;

use crate::human::HumanModel;
use crate::script::InputScript;

const F: CpuFreq = CpuFreq::PENTIUM_100;

/// Sample English text used to synthesize documents. Word lengths follow a
/// natural distribution, which drives the Word benchmark's latency tail
/// (Table 2's threshold sensitivity).
pub const SAMPLE_TEXT: &str = "the conventional methodology for system performance \
measurement relies primarily on throughput sensitive benchmarks and throughput \
metrics and has major limitations when analyzing the behavior and performance of \
interactive workloads the increasingly interactive character of personal computing \
demands new ways of measuring and analyzing system performance in this paper we \
present a combination of measurement techniques and benchmark methodologies that \
address these problems we introduce several simple methods for making direct and \
precise measurements of event handling latency in the context of a realistic \
interactive application we analyze how results from such measurements can be used \
to understand the detailed behavior of latency critical events we demonstrate our \
techniques in an analysis of the performance of two releases of an operating \
system our experience indicates that latency can be measured for a class of \
interactive workloads providing a substantial improvement in the accuracy and \
detail of performance information over measurements based strictly on throughput ";

/// Returns `chars` characters of sample text, repeating as needed and
/// inserting a newline roughly every `line_chars` characters (at word
/// boundaries).
pub fn sample_document(chars: usize, line_chars: usize) -> String {
    let mut out = String::with_capacity(chars + chars / line_chars + 1);
    let mut col = 0;
    let mut source = SAMPLE_TEXT.chars().cycle();
    while out.chars().count() < chars {
        let c = source.next().expect("cyclic iterator");
        if col >= line_chars && c == ' ' {
            out.push('\n');
            col = 0;
        } else {
            out.push(c);
            col += 1;
        }
    }
    out
}

/// The Notepad editing session (§5.1): *"text entry of 1300 characters at
/// approximately 100 words per minute, as well as cursor and page
/// movement"*, as a Microsoft-Test-style fixed-pace script.
pub fn notepad_session() -> InputScript {
    // 100 wpm → 120 ms per keystroke.
    let pace = F.ms(120);
    let text = sample_document(1_300, 62);
    let mut script = InputScript::new();
    // Page through the 56 KB file first.
    script = script.repeat_key(F.ms(400), KeySym::PageDown, 6);
    // Type the body.
    script = script.text(pace, &text);
    // Cursor movement: navigate back through the text.
    script = script
        .repeat_key(F.ms(150), KeySym::Up, 10)
        .repeat_key(F.ms(130), KeySym::Left, 12)
        .repeat_key(F.ms(400), KeySym::PageUp, 3)
        .repeat_key(F.ms(400), KeySym::PageDown, 3);
    script
}

/// The Word task (§5.4): *"text entry of a paragraph of approximately 1000
/// characters … cursor movement with arrow keys and backspace characters to
/// correct typing errors. The timing between keystrokes was varied to
/// simulate realistic pauses"* — Test-style pacing with variation encoded
/// in the script (the driver adds `WM_QUEUESYNC` per event).
pub fn word_session() -> InputScript {
    let text = sample_document(1_000, 200);
    // Varied pacing: a deterministic human model at a composing pace
    // (~65 wpm — slower than copy-typing; the user is writing, not
    // transcribing) supplies the inter-keystroke variation; Test replays
    // those timings.
    let model = HumanModel {
        typo_prob: 0.02,
        seed: WORD_SESSION_SEED,
        ..HumanModel::with_wpm(65.0, 0)
    };
    let mut script = model.type_text(&text);
    // Arrow-key cursor movement mid-session.
    script = script
        .repeat_key(F.ms(160), KeySym::Left, 8)
        .repeat_key(F.ms(160), KeySym::Right, 8);
    script
}

/// Seed for the Word session (stable across runs).
const WORD_SESSION_SEED: u64 = 0x5d0c_0001;

/// A Word session typed by hand (no `WM_QUEUESYNC` when driven by
/// [`crate::TestDriver::clean`]), at a natural ~70 wpm with think pauses.
pub fn word_hand_session(seed: u64) -> InputScript {
    let text = sample_document(1_000, 200);
    HumanModel {
        think_pause_prob: 0.10,
        ..HumanModel::with_wpm(70.0, seed)
    }
    .type_text(&text)
}

/// The PowerPoint task (§5.2): start cold, open the 46-page/530 KB deck,
/// page to each of the three OLE graph objects, edit each, and save.
///
/// Pauses after long operations are generous: Microsoft Test's journal
/// playback waits for the application to go idle before the next event, and
/// a recorded script encodes that as long pauses.
pub fn powerpoint_task() -> InputScript {
    use latlab_os::KeySym::{Char, Escape, PageDown};
    let key_pace = F.ms(150); // "each keystroke separated by at least 150 ms"
    let mut script = InputScript::new()
        // Launch (double-click on the icon → first input).
        .key(F.ms(200), Char('\n'))
        // Wait out the start, then open the document.
        .key(F.secs(12), KeySym::Ctrl('o'))
        .key(F.secs(10), PageDown);
    // Walk to each OLE page, edit the object, type a few changes, close.
    let ole_pages = [5u32, 17, 29];
    let mut page = 2; // the pagedown above took us to page 2
    for target in ole_pages {
        while page < target {
            script = script.key(F.ms(900), PageDown);
            page += 1;
        }
        script = script.key(F.secs(2), KeySym::Ctrl('e'));
        // Wait for the edit session to open, then edit the graph.
        script = script.key(F.secs(10), Char('4'));
        for c in ['2', '.', '7', '1'] {
            script = script.key(key_pace, Char(c));
        }
        script = script.key(F.secs(1), Escape);
    }
    // Save the modified presentation.
    script.key(F.secs(3), KeySym::Ctrl('s'))
}

/// Simple-event microbenchmark scripts (Figure 6). The pacing is co-prime
/// with the 10 ms clock tick and the housekeeping period so that trials do
/// not systematically swallow periodic OS activity.
pub fn unbound_keystrokes(trials: u32) -> InputScript {
    InputScript::new().repeat_key(F.ms(397), KeySym::Char('q'), trials)
}

/// Repeated background mouse clicks with a realistic ~110 ms press.
pub fn background_clicks(trials: u32) -> InputScript {
    let mut script = InputScript::new();
    for _ in 0..trials {
        script = script.click(F.ms(503), F.ms(110));
    }
    script
}

/// The window-maximize microbenchmark (§2.6).
pub fn window_maximize() -> InputScript {
    InputScript::new().key(F.ms(100), KeySym::Ctrl('m'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_os::InputKind;

    #[test]
    fn sample_document_has_requested_size_and_lines() {
        let doc = sample_document(1_300, 62);
        assert!(doc.chars().count() >= 1_300);
        assert!(doc.contains('\n'));
        // Lines stay near the requested width.
        for line in doc.lines() {
            assert!(line.chars().count() <= 80, "overlong line");
        }
    }

    #[test]
    fn notepad_session_shape() {
        let s = notepad_session();
        assert!(s.key_count() > 1_300, "1300 chars plus movement");
        // ~100 wpm typing: total duration over two minutes.
        assert!(F.to_secs(s.duration()) > 120.0);
    }

    #[test]
    fn word_sessions_differ_between_test_and_hand() {
        let test = word_session();
        let hand = word_hand_session(3);
        assert!(test.key_count() >= 1_000);
        assert!(hand.key_count() >= 1_000);
        // Different seeds and models: the two sessions are distinct inputs.
        assert_ne!(test, hand);
    }

    #[test]
    fn powerpoint_task_reaches_all_objects() {
        let s = powerpoint_task();
        let pagedowns = s
            .steps()
            .iter()
            .filter(|st| st.kind == InputKind::Key(KeySym::PageDown))
            .count();
        assert_eq!(pagedowns, 28, "pages 1→29 with one initial pagedown");
        let edits = s
            .steps()
            .iter()
            .filter(|st| st.kind == InputKind::Key(KeySym::Ctrl('e')))
            .count();
        assert_eq!(edits, 3);
    }

    #[test]
    fn micro_scripts() {
        assert_eq!(unbound_keystrokes(30).len(), 30);
        assert_eq!(background_clicks(10).len(), 20); // down + up
        assert_eq!(window_maximize().len(), 1);
    }
}
