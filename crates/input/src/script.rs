//! Declarative input scripts.
//!
//! A script is a timed sequence of user inputs. It can be produced by hand
//! (microbenchmarks), by the workload library (task benchmarks), or by the
//! stochastic human model (§5.4's hand-generated input), and is delivered
//! to a machine by a driver (`TestDriver` for the Microsoft Test analog).

use latlab_des::SimDuration;
use latlab_os::{InputKind, KeySym, MouseButton};
use serde::{Deserialize, Serialize};

/// One scripted input with the pause preceding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptStep {
    /// Delay since the previous step (or since script start).
    pub pause: SimDuration,
    /// The input to deliver.
    pub kind: InputKind,
}

/// A timed input sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputScript {
    steps: Vec<ScriptStep>,
}

impl InputScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        InputScript::default()
    }

    /// Appends a step.
    pub fn step(mut self, pause: SimDuration, kind: InputKind) -> Self {
        self.steps.push(ScriptStep { pause, kind });
        self
    }

    /// Appends a keystroke after `pause`.
    pub fn key(self, pause: SimDuration, key: KeySym) -> Self {
        self.step(pause, InputKind::Key(key))
    }

    /// Appends a full mouse click (down, then up after `press`).
    pub fn click(self, pause: SimDuration, press: SimDuration) -> Self {
        self.step(pause, InputKind::MouseDown(MouseButton::Left))
            .step(press, InputKind::MouseUp(MouseButton::Left))
    }

    /// Appends the characters of `text` with a fixed `pacing` between
    /// keystrokes (newlines become Enter).
    pub fn text(mut self, pacing: SimDuration, text: &str) -> Self {
        for c in text.chars() {
            let key = match c {
                '\n' => KeySym::Enter,
                c => KeySym::Char(c),
            };
            self.steps.push(ScriptStep {
                pause: pacing,
                kind: InputKind::Key(key),
            });
        }
        self
    }

    /// Appends `count` repetitions of a key with fixed pacing.
    pub fn repeat_key(mut self, pacing: SimDuration, key: KeySym, count: u32) -> Self {
        for _ in 0..count {
            self.steps.push(ScriptStep {
                pause: pacing,
                kind: InputKind::Key(key),
            });
        }
        self
    }

    /// Concatenates another script.
    pub fn then(mut self, other: InputScript) -> Self {
        self.steps.extend(other.steps);
        self
    }

    /// The steps.
    pub fn steps(&self) -> &[ScriptStep] {
        &self.steps
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total scripted duration (sum of pauses).
    pub fn duration(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.pause)
    }

    /// Count of keystroke steps.
    pub fn key_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, InputKind::Key(_)))
            .count()
    }

    /// Serializes the script to JSON (a recorded session that replays
    /// bit-identically — the repeatability property the paper relied on
    /// Microsoft Test for).
    ///
    /// # Panics
    ///
    /// Serialization of plain data cannot fail; panics only on allocation
    /// failure inside serde.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("InputScript serializes")
    }

    /// Restores a script from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latlab_des::CpuFreq;

    const F: CpuFreq = CpuFreq::PENTIUM_100;

    #[test]
    fn builder_composes() {
        let s = InputScript::new()
            .key(F.ms(100), KeySym::Char('a'))
            .click(F.ms(50), F.ms(80))
            .text(F.ms(120), "hi\n");
        assert_eq!(s.len(), 6);
        assert_eq!(s.key_count(), 4);
        assert_eq!(s.duration(), F.ms(100 + 50 + 80 + 3 * 120));
        assert_eq!(
            s.steps()[5].kind,
            InputKind::Key(KeySym::Enter),
            "newline becomes Enter"
        );
    }

    #[test]
    fn json_roundtrip() {
        let s = InputScript::new()
            .text(F.ms(120), "hello\n")
            .click(F.ms(50), F.ms(90))
            .repeat_key(F.ms(10), KeySym::PageDown, 4);
        let restored = InputScript::from_json(&s.to_json()).unwrap();
        assert_eq!(s, restored);
        assert!(InputScript::from_json("not json").is_err());
    }

    #[test]
    fn repeat_and_then() {
        let a = InputScript::new().repeat_key(F.ms(10), KeySym::PageDown, 3);
        let b = InputScript::new().key(F.ms(5), KeySym::Escape);
        let s = a.then(b);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
