//! The parallel experiment engine: runs sets of scenarios across a job
//! pool with sequential-identical observable behaviour.
//!
//! This is the orchestration layer shared by the `repro` binary, the
//! `perf` harness, and the determinism tests. It owns the three
//! per-scenario concerns that must compose with parallelism:
//!
//! * **recording** — each scenario enables scenario-scoped trace recording
//!   on whatever worker thread runs it (see [`crate::record`]), so trace
//!   file names and bytes are independent of scheduling;
//! * **artifacts** — each scenario writes its own `results/<id>/` subtree
//!   from its worker (disjoint paths, no coordination needed); write errors
//!   are carried back on the result instead of printed out of order;
//! * **ordering** — results are delivered to the caller in presentation
//!   order regardless of completion order (see [`crate::pool`]).

use std::path::PathBuf;
use std::time::Duration;

use crate::report::ExperimentReport;
use crate::{pool, record, scenarios};

/// Configuration of an engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core, `1` means the
    /// plain sequential path.
    pub jobs: usize,
    /// Where to write CSV/JSON artifacts (`results/<id>/…`); `None` skips
    /// artifact writing.
    pub out_dir: Option<PathBuf>,
    /// Where to write binary `.ltrc` traces; `None` disables recording.
    pub record_dir: Option<PathBuf>,
}

/// The outcome of one scenario: its reports plus run metadata.
#[derive(Debug)]
pub struct ScenarioRun {
    /// Scenario id.
    pub id: String,
    /// The reports the scenario produced (ablations yield several).
    pub reports: Vec<ExperimentReport>,
    /// Wall-clock time of this scenario on its worker.
    pub wall: Duration,
    /// Errors from artifact writing, if any (empty on success).
    pub artifact_errors: Vec<String>,
}

impl ScenarioRun {
    /// Number of shape checks across all reports.
    pub fn total_checks(&self) -> usize {
        self.reports.iter().map(|r| r.checks.len()).sum()
    }

    /// Number of failed shape checks across all reports.
    pub fn failed_checks(&self) -> usize {
        self.reports
            .iter()
            .flat_map(|r| &r.checks)
            .filter(|c| !c.passed)
            .count()
    }
}

/// Runs `ids` under `cfg`, invoking `on_done` for each scenario **in the
/// order given** (not completion order), and returns all outcomes in that
/// same order.
///
/// Every observable output — rendered report text, artifact files, trace
/// files — is byte-identical whatever `cfg.jobs` is; only wall-clock
/// metadata varies.
///
/// # Panics
///
/// Panics on an unknown scenario id (validate with
/// [`scenarios::ALL_IDS`] first) and propagates panics from scenario code.
pub fn run_scenarios(
    ids: &[String],
    cfg: &EngineConfig,
    mut on_done: impl FnMut(&ScenarioRun),
) -> Vec<ScenarioRun> {
    let jobs = pool::resolve_jobs(cfg.jobs);
    let mut out = Vec::with_capacity(ids.len());
    pool::run_ordered(
        jobs,
        ids.len(),
        |i| run_one(&ids[i], cfg),
        |_, run: ScenarioRun| {
            on_done(&run);
            out.push(run);
        },
    );
    out
}

/// Runs a single scenario with scoped recording and artifact writing; the
/// unit of work the pool schedules.
fn run_one(id: &str, cfg: &EngineConfig) -> ScenarioRun {
    if let Some(dir) = &cfg.record_dir {
        record::enable_scoped(dir, id)
            .unwrap_or_else(|e| panic!("cannot create record directory {}: {e}", dir.display()));
    }
    let t0 = std::time::Instant::now();
    let reports = scenarios::run_by_id(id);
    let wall = t0.elapsed();
    if cfg.record_dir.is_some() {
        record::disable();
    }
    let mut artifact_errors = Vec::new();
    if let Some(out_dir) = &cfg.out_dir {
        for report in &reports {
            if let Err(e) = report.write_artifacts(out_dir) {
                artifact_errors.push(format!("{id}: failed to write artifacts: {e}"));
            }
        }
    }
    ScenarioRun {
        id: id.to_owned(),
        reports,
        wall,
        artifact_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_presentation_order() {
        let ids: Vec<String> = ["fig1", "fig4"].iter().map(|s| s.to_string()).collect();
        let cfg = EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        };
        let mut seen = Vec::new();
        let runs = run_scenarios(&ids, &cfg, |r| seen.push(r.id.clone()));
        assert_eq!(seen, ids);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.total_checks() > 0));
        assert!(runs.iter().all(|r| r.artifact_errors.is_empty()));
    }
}
