//! The parallel experiment engine: runs sets of scenarios across a job
//! pool with sequential-identical observable behaviour.
//!
//! This is the orchestration layer shared by the `repro` binary, the
//! `perf` harness, and the determinism tests. It owns the per-scenario
//! concerns that must compose with parallelism:
//!
//! * **recording** — each scenario enables scenario-scoped trace recording
//!   on whatever worker thread runs it (see [`crate::record`]), so trace
//!   file names and bytes are independent of scheduling;
//! * **fault injection** — each scenario installs the configured
//!   [`FaultPlan`] on its worker (see [`crate::faultcfg`]); plans are
//!   self-seeded, so injected faults are scheduling-independent too;
//! * **artifacts** — each scenario writes its own `results/<id>/` subtree
//!   from its worker (disjoint paths, no coordination needed); write errors
//!   are carried back on the result instead of printed out of order;
//! * **ordering and isolation** — results are delivered to the caller in
//!   presentation order regardless of completion order, and a scenario
//!   that panics or exceeds the configured timeout becomes a structured
//!   [`ScenarioOutcome::Failed`] instead of tearing down the whole pass
//!   (see [`pool::run_supervised`]).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use latlab_faults::FaultPlan;

use crate::pool::JobOutcome;
use crate::report::ExperimentReport;
use crate::{faultcfg, pool, record, scenarios};

/// Configuration of an engine run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core, `1` means the
    /// plain sequential path.
    pub jobs: usize,
    /// Where to write CSV/JSON artifacts (`results/<id>/…`); `None` skips
    /// artifact writing.
    pub out_dir: Option<PathBuf>,
    /// Where to write binary `.ltrc` traces; `None` disables recording.
    pub record_dir: Option<PathBuf>,
    /// Fault plan to install into every session of every scenario; `None`
    /// runs fault-free.
    pub faults: Option<FaultPlan>,
    /// Per-scenario wall-clock budget; a scenario still running past it is
    /// abandoned and reported as [`ScenarioOutcome::Failed`]. `None` waits
    /// forever.
    pub timeout: Option<Duration>,
    /// Whether machines may batch idle-loop spans (the kernel's idle
    /// fast-forward). Defaults to `true`; the contract makes every
    /// observable byte-identical either way, so `false` exists only for
    /// benchmarking the step path and for equivalence audits
    /// (`--no-fastforward`).
    pub fastforward: bool,
    /// Whether sweeps run by scenarios may share warm prefixes via
    /// snapshot forking (see [`crate::forkcfg`]). Defaults to `true`; the
    /// contract makes sweep results bit-identical either way, so `false`
    /// exists for equivalence audits (`--no-fork`).
    pub fork: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            out_dir: None,
            record_dir: None,
            faults: None,
            timeout: None,
            fastforward: true,
            fork: true,
        }
    }
}

/// How one scenario ended.
#[derive(Debug)]
pub enum ScenarioOutcome {
    /// The scenario ran to completion (its shape checks may still fail).
    Completed {
        /// The reports the scenario produced (ablations yield several).
        reports: Vec<ExperimentReport>,
        /// Errors from artifact writing, if any (empty on success).
        artifact_errors: Vec<String>,
    },
    /// The scenario panicked or timed out; the rest of the pass continued.
    Failed {
        /// Human-readable cause ("panicked: …" or "timed out after …").
        reason: String,
    },
}

/// The outcome of one scenario plus run metadata.
#[derive(Debug)]
pub struct ScenarioRun {
    /// Scenario id.
    pub id: String,
    /// What happened.
    pub outcome: ScenarioOutcome,
    /// Wall-clock time of this scenario on its worker
    /// (`Duration::ZERO` for failed scenarios, keeping stdout summaries
    /// deterministic).
    pub wall: Duration,
}

impl ScenarioRun {
    /// The reports the scenario produced (empty if it failed).
    pub fn reports(&self) -> &[ExperimentReport] {
        match &self.outcome {
            ScenarioOutcome::Completed { reports, .. } => reports,
            ScenarioOutcome::Failed { .. } => &[],
        }
    }

    /// Artifact-write errors (empty if none, or if the scenario failed).
    pub fn artifact_errors(&self) -> &[String] {
        match &self.outcome {
            ScenarioOutcome::Completed {
                artifact_errors, ..
            } => artifact_errors,
            ScenarioOutcome::Failed { .. } => &[],
        }
    }

    /// The failure reason, if the scenario panicked or timed out.
    pub fn failure(&self) -> Option<&str> {
        match &self.outcome {
            ScenarioOutcome::Completed { .. } => None,
            ScenarioOutcome::Failed { reason } => Some(reason),
        }
    }

    /// Number of shape checks across all reports.
    pub fn total_checks(&self) -> usize {
        self.reports().iter().map(|r| r.checks.len()).sum()
    }

    /// Number of failed shape checks across all reports.
    pub fn failed_checks(&self) -> usize {
        self.reports()
            .iter()
            .flat_map(|r| &r.checks)
            .filter(|c| !c.passed)
            .count()
    }
}

/// Runs `ids` under `cfg`, invoking `on_done` for each scenario **in the
/// order given** (not completion order), and returns all outcomes in that
/// same order.
///
/// Every observable output — rendered report text, artifact files, trace
/// files — is byte-identical whatever `cfg.jobs` is; only wall-clock
/// metadata varies.
///
/// A scenario that panics or outlives `cfg.timeout` yields
/// [`ScenarioOutcome::Failed`] while every other scenario still runs to
/// completion; this function itself only panics on harness bugs (e.g. a
/// worker channel vanishing), never because scenario code panicked.
pub fn run_scenarios(
    ids: &[String],
    cfg: &EngineConfig,
    mut on_done: impl FnMut(&ScenarioRun),
) -> Vec<ScenarioRun> {
    let jobs = pool::resolve_jobs(cfg.jobs);
    let ids: Arc<Vec<String>> = Arc::new(ids.to_vec());
    let worker_ids = Arc::clone(&ids);
    let worker_cfg = Arc::new(cfg.clone());
    let mut out = Vec::with_capacity(ids.len());
    pool::run_supervised(
        jobs,
        ids.len(),
        cfg.timeout,
        move |i| run_one(&worker_ids[i], &worker_cfg),
        |i, outcome: JobOutcome<ScenarioRun>| {
            let run = match outcome {
                JobOutcome::Completed(run) => run,
                failed => ScenarioRun {
                    id: ids[i].clone(),
                    outcome: ScenarioOutcome::Failed {
                        reason: failed
                            .failure()
                            .unwrap_or_else(|| "unknown failure".to_owned()),
                    },
                    wall: Duration::ZERO,
                },
            };
            on_done(&run);
            out.push(run);
        },
    );
    out
}

/// Disables thread-local recording when dropped — including during a panic
/// unwind, so a crashed scenario cannot leak recording state into the next
/// job scheduled on the same worker thread.
struct RecordingGuard;

impl Drop for RecordingGuard {
    fn drop(&mut self) {
        record::disable();
    }
}

/// Runs a single scenario with scoped recording, fault configuration and
/// artifact writing; the unit of work the pool schedules.
fn run_one(id: &str, cfg: &EngineConfig) -> ScenarioRun {
    let _faults = faultcfg::override_plan(cfg.faults.clone());
    let _ff = latlab_os::fastforward::override_default(cfg.fastforward);
    let _fork = crate::forkcfg::override_default(cfg.fork);
    let _recording = RecordingGuard;
    if let Some(dir) = &cfg.record_dir {
        record::enable_scoped(dir, id)
            .unwrap_or_else(|e| panic!("cannot create record directory {}: {e}", dir.display()));
    }
    let t0 = std::time::Instant::now();
    let reports = scenarios::run_by_id(id);
    let wall = t0.elapsed();
    let mut artifact_errors = Vec::new();
    if let Some(out_dir) = &cfg.out_dir {
        for report in &reports {
            if let Err(e) = report.write_artifacts(out_dir) {
                artifact_errors.push(format!("{id}: failed to write artifacts: {e}"));
            }
        }
    }
    ScenarioRun {
        id: id.to_owned(),
        outcome: ScenarioOutcome::Completed {
            reports,
            artifact_errors,
        },
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_presentation_order() {
        let ids: Vec<String> = ["fig1", "fig4"].iter().map(|s| s.to_string()).collect();
        let cfg = EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        };
        let mut seen = Vec::new();
        let runs = run_scenarios(&ids, &cfg, |r| seen.push(r.id.clone()));
        assert_eq!(seen, ids);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.failure().is_none()));
        assert!(runs.iter().all(|r| r.total_checks() > 0));
        assert!(runs.iter().all(|r| r.artifact_errors().is_empty()));
    }

    #[test]
    fn panicking_scenario_is_contained() {
        let ids: Vec<String> = ["fig1", "__panic__", "fig4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = EngineConfig {
            jobs: 2,
            ..EngineConfig::default()
        };
        let runs = run_scenarios(&ids, &cfg, |_| {});
        assert_eq!(runs.len(), 3);
        assert!(runs[0].failure().is_none());
        let reason = runs[1].failure().expect("__panic__ must fail");
        assert!(reason.contains("panicked"), "reason: {reason}");
        assert!(reason.contains("deliberate panic"), "reason: {reason}");
        assert!(
            runs[2].failure().is_none(),
            "scenario after the panic must still complete"
        );
        assert!(runs[2].total_checks() > 0);
    }
}
