//! Parameter sweeps: quantify how each OS cost parameter moves a latency
//! metric — the tooling behind the calibration recorded in DESIGN.md, kept
//! as a first-class research instrument.

use latlab_core::BoundaryPolicy;
use latlab_input::{workloads, TestDriver};
use latlab_os::{KeySym, OsParams, OsProfile, ProcessSpec};

use crate::runner::{deliver_key_and_settle, FREQ};

/// Parameters the sweep tool can vary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepParam {
    /// Per-crossing transport instructions.
    CrossingInstr,
    /// Input-dispatch instructions.
    InputDispatchInstr,
    /// GDI batch size.
    GdiBatchSize,
    /// GDI path-length multiplier (thousandths).
    GdiPathMilli,
    /// GUI (USER-chrome) path-length multiplier (thousandths).
    GuiPathMilli,
    /// Buffer-cache capacity in blocks.
    CacheBlocks,
    /// Write-path overhead (thousandths).
    WriteOverheadMilli,
}

impl SweepParam {
    /// All sweepable parameters.
    pub const ALL: [SweepParam; 7] = [
        SweepParam::CrossingInstr,
        SweepParam::InputDispatchInstr,
        SweepParam::GdiBatchSize,
        SweepParam::GdiPathMilli,
        SweepParam::GuiPathMilli,
        SweepParam::CacheBlocks,
        SweepParam::WriteOverheadMilli,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SweepParam::CrossingInstr => "crossing-instr",
            SweepParam::InputDispatchInstr => "input-dispatch-instr",
            SweepParam::GdiBatchSize => "gdi-batch-size",
            SweepParam::GdiPathMilli => "gdi-path-milli",
            SweepParam::GuiPathMilli => "gui-path-milli",
            SweepParam::CacheBlocks => "cache-blocks",
            SweepParam::WriteOverheadMilli => "write-overhead-milli",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<SweepParam> {
        SweepParam::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Applies a value to a parameter set.
    pub fn apply(self, params: &mut OsParams, value: u64) {
        match self {
            SweepParam::CrossingInstr => params.crossing_instr = value,
            SweepParam::InputDispatchInstr => params.input_dispatch_instr = value,
            SweepParam::GdiBatchSize => params.gdi_batch_size = value as u32,
            SweepParam::GdiPathMilli => params.gdi_path_milli = value,
            SweepParam::GuiPathMilli => params.gui_path_milli = value,
            SweepParam::CacheBlocks => params.cache_blocks = value as usize,
            SweepParam::WriteOverheadMilli => params.write_overhead_milli = value,
        }
    }

    /// The parameter's stock value under a profile.
    pub fn stock(self, profile: OsProfile) -> u64 {
        let p = profile.params();
        match self {
            SweepParam::CrossingInstr => p.crossing_instr,
            SweepParam::InputDispatchInstr => p.input_dispatch_instr,
            SweepParam::GdiBatchSize => p.gdi_batch_size as u64,
            SweepParam::GdiPathMilli => p.gdi_path_milli,
            SweepParam::GuiPathMilli => p.gui_path_milli,
            SweepParam::CacheBlocks => p.cache_blocks as u64,
            SweepParam::WriteOverheadMilli => p.write_overhead_milli,
        }
    }
}

/// Metrics a sweep can read out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepMetric {
    /// Mean unbound-keystroke latency on the desktop shell, ms.
    KeystrokeMs,
    /// Warm PowerPoint page-down wall time, ms.
    PagedownMs,
    /// Notepad-session cumulative event latency, s.
    NotepadCumulativeS,
}

impl SweepMetric {
    /// All metrics.
    pub const ALL: [SweepMetric; 3] = [
        SweepMetric::KeystrokeMs,
        SweepMetric::PagedownMs,
        SweepMetric::NotepadCumulativeS,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SweepMetric::KeystrokeMs => "keystroke",
            SweepMetric::PagedownMs => "pagedown",
            SweepMetric::NotepadCumulativeS => "notepad-cumulative",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<SweepMetric> {
        SweepMetric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Unit label.
    pub fn unit(self) -> &'static str {
        match self {
            SweepMetric::KeystrokeMs | SweepMetric::PagedownMs => "ms",
            SweepMetric::NotepadCumulativeS => "s",
        }
    }

    /// Evaluates the metric under a parameter set.
    pub fn evaluate(self, params: OsParams) -> f64 {
        match self {
            SweepMetric::KeystrokeMs => {
                let mut machine = latlab_os::Machine::new(params);
                let tid = machine.spawn(
                    ProcessSpec::app("desktop"),
                    Box::new(latlab_apps::Desktop::new(
                        latlab_apps::DesktopConfig::default(),
                    )),
                );
                machine.set_focus(tid);
                let mut ids = Vec::new();
                for i in 0..10u64 {
                    ids.push(machine.schedule_input_at(
                        latlab_des::SimTime::ZERO + FREQ.ms(50 + i * 397),
                        latlab_os::InputKind::Key(KeySym::Char('q')),
                    ));
                }
                machine.run_until(latlab_des::SimTime::ZERO + FREQ.secs(6));
                let total: f64 = ids
                    .iter()
                    .map(|&id| {
                        FREQ.to_ms(
                            machine
                                .ground_truth()
                                .event(id)
                                .unwrap()
                                .true_latency()
                                .unwrap(),
                        )
                    })
                    .sum();
                total / ids.len() as f64
            }
            SweepMetric::PagedownMs => {
                let mut machine = warm_pp(params);
                deliver_key_and_settle(&mut machine, KeySym::PageUp);
                let before = machine.read_cycle_counter();
                deliver_key_and_settle(&mut machine, KeySym::PageDown);
                (machine.read_cycle_counter() - before) as f64 / 100_000.0
            }
            SweepMetric::NotepadCumulativeS => {
                let mut session = latlab_core::MeasurementSession::with_params(params);
                session.launch_app(
                    ProcessSpec::app("notepad"),
                    Box::new(latlab_apps::Notepad::new(
                        latlab_apps::NotepadConfig::default(),
                    )),
                );
                let script = workloads::notepad_session();
                TestDriver::ms_test().schedule(
                    session.machine(),
                    latlab_des::SimTime::ZERO + FREQ.ms(100),
                    &script,
                );
                session.run_until_quiescent(
                    latlab_des::SimTime::ZERO + script.duration() + FREQ.secs(10),
                );
                let m = session.finish(BoundaryPolicy::SplitAtRetrieval);
                m.events
                    .iter()
                    .filter(|e| !e.is_test_overhead())
                    .map(|e| e.latency_ms(FREQ))
                    .sum::<f64>()
                    / 1_000.0
            }
        }
    }
}

/// Builds a warm PowerPoint machine under arbitrary params (the runner's
/// helper is profile-keyed; sweeps need param-keyed).
fn warm_pp(params: OsParams) -> latlab_os::Machine {
    let mut machine = latlab_os::Machine::new(params);
    latlab_apps::powerpoint::register_files(&mut machine);
    let tid = machine.spawn(
        ProcessSpec::app("powerpoint"),
        Box::new(latlab_apps::PowerPoint::new(
            latlab_apps::PowerPointConfig::default(),
        )),
    );
    machine.set_focus(tid);
    let mut t = latlab_des::SimTime::ZERO + FREQ.ms(100);
    machine.schedule_input_at(t, latlab_os::InputKind::Key(KeySym::Char('\n')));
    t += FREQ.secs(15);
    machine.schedule_input_at(t, latlab_os::InputKind::Key(latlab_apps::OPEN_KEY));
    t += FREQ.secs(12);
    for _ in 1..5 {
        machine.schedule_input_at(t, latlab_os::InputKind::Key(KeySym::PageDown));
        t += FREQ.ms(700);
    }
    assert!(machine.run_until_quiescent(t + FREQ.secs(60)));
    machine
}

/// One sweep row.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// The parameter value.
    pub value: u64,
    /// The measured metric.
    pub metric: f64,
}

/// Runs a sweep sequentially (equivalent to [`run_sweep_jobs`] with one
/// worker).
pub fn run_sweep(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
) -> Vec<SweepPoint> {
    run_sweep_jobs(profile, param, metric, values, 1)
}

/// Runs a sweep with each point's simulation fanned out across `jobs`
/// worker threads (`0` = one per core). Every point is an independent
/// deterministic simulation, so the result vector is identical — in
/// values and order — to the sequential run. Workers inherit the calling
/// thread's idle fast-forward setting (not that it matters for results:
/// the fast-forward contract is bit-identical observables either way).
pub fn run_sweep_jobs(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
    jobs: usize,
) -> Vec<SweepPoint> {
    let ff = latlab_os::fastforward::default_enabled();
    crate::pool::run_collect(crate::pool::resolve_jobs(jobs), values.len(), move |i| {
        let _ff = latlab_os::fastforward::override_default(ff);
        let value = values[i];
        let mut params = profile.params();
        param.apply(&mut params, value);
        SweepPoint {
            value,
            metric: metric.evaluate(params),
        }
    })
}

/// Like [`run_sweep_jobs`], but supervised: a point whose simulation
/// panics (or exceeds `timeout`) is reported as a failed
/// [`JobOutcome`](crate::pool::JobOutcome) while every other point still
/// completes. Results come back as `(value, outcome)` pairs in input
/// order.
pub fn run_sweep_supervised(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
    jobs: usize,
    timeout: Option<std::time::Duration>,
) -> Vec<(u64, crate::pool::JobOutcome<SweepPoint>)> {
    let values: std::sync::Arc<Vec<u64>> = std::sync::Arc::new(values.to_vec());
    let worker_values = std::sync::Arc::clone(&values);
    let ff = latlab_os::fastforward::default_enabled();
    let mut out = Vec::with_capacity(values.len());
    crate::pool::run_supervised(
        crate::pool::resolve_jobs(jobs),
        values.len(),
        timeout,
        move |i| {
            let _ff = latlab_os::fastforward::override_default(ff);
            let value = worker_values[i];
            let mut params = profile.params();
            param.apply(&mut params, value);
            SweepPoint {
                value,
                metric: metric.evaluate(params),
            }
        },
        |i, outcome| out.push((values[i], outcome)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(
            SweepParam::parse("gdi-batch-size"),
            Some(SweepParam::GdiBatchSize)
        );
        assert_eq!(SweepParam::parse("nope"), None);
        assert_eq!(
            SweepMetric::parse("keystroke"),
            Some(SweepMetric::KeystrokeMs)
        );
        assert_eq!(SweepMetric::parse("nope"), None);
    }

    #[test]
    fn crossing_sweep_moves_keystroke_latency() {
        let points = run_sweep(
            OsProfile::Nt351,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &[1_000, 20_000],
        );
        assert!(
            points[1].metric > points[0].metric + 0.1,
            "heavier crossings must slow keystrokes: {points:?}"
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let values = [1_000, 5_000, 10_000, 20_000];
        let seq = run_sweep(
            OsProfile::Nt40,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &values,
        );
        let par = run_sweep_jobs(
            OsProfile::Nt40,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &values,
            4,
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.metric.to_bits(), b.metric.to_bits(), "point {}", a.value);
        }
    }

    #[test]
    fn stock_values_resolve() {
        for p in SweepParam::ALL {
            assert!(p.stock(OsProfile::Nt40) > 0);
        }
    }
}
