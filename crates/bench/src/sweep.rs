//! Parameter sweeps: quantify how each OS cost parameter moves a latency
//! metric — the tooling behind the calibration recorded in DESIGN.md, kept
//! as a first-class research instrument.
//!
//! # The prefix-sharing engine
//!
//! Every metric splits into an expensive **prepare** phase (boot the
//! machine, warm the application) that depends only on the parameter set,
//! and a cheap **measure** phase that reads the metric off the warm state.
//! A sweep evaluates one metric at N values of one parameter, `reps` times
//! each; re-simulating the prepare phase N×reps times is almost entirely
//! redundant. The engine instead:
//!
//! 1. prepares the **stock** prefix once and snapshots it
//!    ([`Machine::snapshot`](latlab_os::Machine::snapshot) /
//!    [`MeasurementSession::snapshot`]);
//! 2. per value: *forks* that snapshot and re-points the parameter when
//!    the kernel's first-read watermarks prove the parameter was never
//!    consulted during the prefix (`snapshot.param_unread`, see
//!    `latlab_os::sweep` for the soundness invariant) — otherwise it
//!    re-simulates the prefix from scratch with the value applied. The
//!    stock value itself always forks: nothing changed;
//! 3. per repetition: snapshots the point state once and restores it per
//!    rep instead of re-running the prefix.
//!
//! The contract is **byte identity**: a forked sweep's output is
//! bit-for-bit the output of `--no-fork` (every point simulated from
//! scratch, every repetition a full re-simulation). CI diffs the two
//! modes' stdout and CSV; the engine itself asserts that repetitions
//! agree. Fork accounting ([`SweepStats`]) is reported out of band.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

use latlab_core::{BoundaryPolicy, MeasurementSession, SessionSnapshot};
use latlab_input::{workloads, TestDriver};
use latlab_os::{KeySym, Machine, MachineSnapshot, OsParams, OsProfile, ProcessSpec};

use crate::runner::{deliver_key_and_settle, warm_powerpoint_params, FREQ};

/// Parameters the sweep tool can vary — the kernel's canonical list
/// (`latlab_os::sweep::SweptParam`), re-exported under the harness's
/// historical name.
pub use latlab_os::SweptParam as SweepParam;

/// Metrics a sweep can read out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepMetric {
    /// Mean unbound-keystroke latency on the desktop shell, ms.
    KeystrokeMs,
    /// Warm PowerPoint page-down wall time, ms.
    PagedownMs,
    /// Notepad-session cumulative event latency, s.
    NotepadCumulativeS,
    /// Mean keystroke latency in a warmed-up Word document (the Figure 5
    /// editing session, mid-document), ms.
    WordKeystrokeMs,
    /// Mean keystroke latency in a warmed-up Notepad document (the
    /// Figure 7 editing session, mid-document), ms.
    NotepadKeystrokeMs,
}

impl SweepMetric {
    /// All metrics.
    pub const ALL: [SweepMetric; 5] = [
        SweepMetric::KeystrokeMs,
        SweepMetric::PagedownMs,
        SweepMetric::NotepadCumulativeS,
        SweepMetric::WordKeystrokeMs,
        SweepMetric::NotepadKeystrokeMs,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SweepMetric::KeystrokeMs => "keystroke",
            SweepMetric::PagedownMs => "pagedown",
            SweepMetric::NotepadCumulativeS => "notepad-cumulative",
            SweepMetric::WordKeystrokeMs => "word-keystroke",
            SweepMetric::NotepadKeystrokeMs => "notepad-keystroke",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<SweepMetric> {
        SweepMetric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Unit label.
    pub fn unit(self) -> &'static str {
        match self {
            SweepMetric::NotepadCumulativeS => "s",
            _ => "ms",
        }
    }

    /// The expensive, parameter-dependent prefix: boot the machine (or
    /// measurement session) and warm the application to the state the
    /// measurement starts from. This is the phase the sweep engine shares
    /// across points and repetitions.
    pub fn prepare(self, params: OsParams) -> Prepared {
        match self {
            SweepMetric::KeystrokeMs => {
                let mut machine = Machine::new(params);
                let tid = machine.spawn(
                    ProcessSpec::app("desktop"),
                    Box::new(latlab_apps::Desktop::new(
                        latlab_apps::DesktopConfig::default(),
                    )),
                );
                machine.set_focus(tid);
                Prepared::Machine(machine)
            }
            SweepMetric::PagedownMs => Prepared::Machine(warm_powerpoint_params(params, 5)),
            SweepMetric::NotepadCumulativeS => {
                let mut session = MeasurementSession::with_params(params);
                session.launch_app(
                    ProcessSpec::app("notepad"),
                    Box::new(latlab_apps::Notepad::new(
                        latlab_apps::NotepadConfig::default(),
                    )),
                );
                Prepared::Session(session)
            }
            SweepMetric::WordKeystrokeMs => {
                let mut machine = Machine::new(params);
                let tid = machine.spawn(
                    ProcessSpec::app("word").with_heavy_async(),
                    Box::new(latlab_apps::Word::new(latlab_apps::WordConfig::default())),
                );
                machine.set_focus(tid);
                // Type 400 characters of prose at a brisk hand pace: the
                // document, Word's background spell/justify queue, and the
                // simulator's caches all end up mid-session warm. The
                // prefix is deliberately long relative to the measured
                // burst — that ratio is what prefix sharing amortizes.
                for i in 0..400u64 {
                    let key = if i % 40 == 39 {
                        KeySym::Enter
                    } else if i % 6 == 5 {
                        KeySym::Char(' ')
                    } else {
                        KeySym::Char(b"typing"[(i % 6) as usize] as char)
                    };
                    machine.schedule_input_at(
                        latlab_des::SimTime::ZERO + FREQ.ms(100 + i * 150),
                        latlab_os::InputKind::Key(key),
                    );
                }
                machine.run_until(latlab_des::SimTime::ZERO + FREQ.ms(100 + 400 * 150 + 2_000));
                Prepared::Machine(machine)
            }
            SweepMetric::NotepadKeystrokeMs => {
                let mut machine = Machine::new(params);
                let tid = machine.spawn(
                    ProcessSpec::app("notepad"),
                    Box::new(latlab_apps::Notepad::new(
                        latlab_apps::NotepadConfig::default(),
                    )),
                );
                machine.set_focus(tid);
                // The §5.1 editing session's first stretch: 500 characters
                // at ~100 wpm with a screen refresh every line or so. As
                // with Word, the long prefix is the point — it is what the
                // sweep engine shares across points and repetitions.
                for i in 0..500u64 {
                    let key = if i % 31 == 30 {
                        KeySym::Enter
                    } else {
                        KeySym::Char(b"editing "[(i % 8) as usize] as char)
                    };
                    machine.schedule_input_at(
                        latlab_des::SimTime::ZERO + FREQ.ms(100 + i * 80),
                        latlab_os::InputKind::Key(key),
                    );
                }
                machine.run_until(latlab_des::SimTime::ZERO + FREQ.ms(100 + 500 * 80 + 1_000));
                Prepared::Machine(machine)
            }
        }
    }

    /// The cheap phase: drive the measured operation on the prepared state
    /// and read the metric.
    pub fn measure(self, prepared: Prepared) -> f64 {
        match (self, prepared) {
            (SweepMetric::KeystrokeMs, Prepared::Machine(mut machine)) => {
                let mut ids = Vec::new();
                for i in 0..10u64 {
                    ids.push(machine.schedule_input_at(
                        latlab_des::SimTime::ZERO + FREQ.ms(50 + i * 397),
                        latlab_os::InputKind::Key(KeySym::Char('q')),
                    ));
                }
                machine.run_until(latlab_des::SimTime::ZERO + FREQ.secs(6));
                mean_latency_ms(&machine, &ids)
            }
            (SweepMetric::PagedownMs, Prepared::Machine(mut machine)) => {
                deliver_key_and_settle(&mut machine, KeySym::PageUp);
                let before = machine.read_cycle_counter();
                deliver_key_and_settle(&mut machine, KeySym::PageDown);
                (machine.read_cycle_counter() - before) as f64 / 100_000.0
            }
            (SweepMetric::NotepadCumulativeS, Prepared::Session(mut session)) => {
                let script = workloads::notepad_session();
                TestDriver::ms_test().schedule(
                    session.machine(),
                    latlab_des::SimTime::ZERO + FREQ.ms(100),
                    &script,
                );
                session.run_until_quiescent(
                    latlab_des::SimTime::ZERO + script.duration() + FREQ.secs(10),
                );
                let m = session.finish(BoundaryPolicy::SplitAtRetrieval);
                m.events
                    .iter()
                    .filter(|e| !e.is_test_overhead())
                    .map(|e| e.latency_ms(FREQ))
                    .sum::<f64>()
                    / 1_000.0
            }
            (
                SweepMetric::WordKeystrokeMs | SweepMetric::NotepadKeystrokeMs,
                Prepared::Machine(mut machine),
            ) => {
                let t0 = machine.now();
                let mut ids = Vec::new();
                for i in 0..5u64 {
                    ids.push(machine.schedule_input_at(
                        t0 + FREQ.ms(300 + i * 400),
                        latlab_os::InputKind::Key(KeySym::Char('m')),
                    ));
                }
                machine.run_until(t0 + FREQ.ms(300 + 5 * 400 + 1_500));
                mean_latency_ms(&machine, &ids)
            }
            (metric, _) => unreachable!("prepared state does not match metric {metric:?}"),
        }
    }

    /// Evaluates the metric under a parameter set from scratch — by
    /// definition, `measure(prepare(params))`. This is the `--no-fork`
    /// oracle the forked engine must match bit for bit.
    pub fn evaluate(self, params: OsParams) -> f64 {
        self.measure(self.prepare(params))
    }
}

/// Mean ground-truth latency (ms) of the given input events.
fn mean_latency_ms(machine: &Machine, ids: &[u64]) -> f64 {
    let total: f64 = ids
        .iter()
        .map(|&id| {
            FREQ.to_ms(
                machine
                    .ground_truth()
                    .event(id)
                    .unwrap()
                    .true_latency()
                    .unwrap(),
            )
        })
        .sum();
    total / ids.len() as f64
}

/// A metric's warm prefix state: the machine (or full measurement
/// session) positioned where the measurement starts.
pub enum Prepared {
    /// Plain-machine metrics (ground-truth readout).
    Machine(Machine),
    /// Session metrics (idle-loop + API-log measurement stack installed).
    Session(MeasurementSession),
}

impl Prepared {
    /// Freezes the prefix into a restorable snapshot.
    pub fn snapshot(&mut self) -> PreparedSnapshot {
        match self {
            Prepared::Machine(m) => PreparedSnapshot::Machine(m.snapshot()),
            Prepared::Session(s) => PreparedSnapshot::Session(s.snapshot()),
        }
    }

    /// Re-points a swept parameter (the fork edit). Soundness is the
    /// caller's obligation — check [`PreparedSnapshot::param_unread`].
    pub fn apply_param(&mut self, param: SweepParam, value: u64) {
        match self {
            Prepared::Machine(m) => m.apply_param(param, value),
            Prepared::Session(s) => s.apply_param(param, value),
        }
    }
}

/// A frozen warm prefix (see [`Prepared::snapshot`]).
pub enum PreparedSnapshot {
    /// Snapshot of a plain machine.
    Machine(MachineSnapshot),
    /// Snapshot of a measurement session.
    Session(SessionSnapshot),
}

impl PreparedSnapshot {
    /// Reconstructs the prefix state; the continuation behaves
    /// bit-identically to the state the snapshot was taken from.
    pub fn restore(&self) -> Prepared {
        match self {
            PreparedSnapshot::Machine(m) => Prepared::Machine(Machine::restore(m)),
            PreparedSnapshot::Session(s) => Prepared::Session(MeasurementSession::restore(s)),
        }
    }

    /// True when forking this prefix with `param` changed is provably
    /// bit-identical to a scratch prefix with the parameter applied from
    /// boot.
    pub fn param_unread(&self, param: SweepParam) -> bool {
        match self {
            PreparedSnapshot::Machine(m) => m.param_unread(param),
            PreparedSnapshot::Session(s) => s.param_unread(param),
        }
    }
}

/// One sweep row.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// The parameter value.
    pub value: u64,
    /// The measured metric.
    pub metric: f64,
}

/// How the sweep engine arrived at its points — fork accounting, reported
/// out of band (stderr) so stdout stays byte-identical across modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Points whose prefix was forked from the shared stock snapshot
    /// (the stock point itself, plus every provably-unread parameter
    /// value).
    pub forked_points: usize,
    /// Points that re-simulated their prefix from scratch (parameter read
    /// during the prefix, or forking disabled).
    pub scratch_points: usize,
    /// Repetitions served by restoring a per-point snapshot.
    pub forked_reps: usize,
    /// Repetitions that re-simulated the prefix (`--no-fork`).
    pub scratch_reps: usize,
}

/// Builds the shared stock-prefix snapshot for a forked sweep. A panic
/// during the stock prepare falls back to `None` — every point then
/// prepares from scratch and reports its own failure through the normal
/// per-point path.
fn build_snap0(metric: SweepMetric, profile: OsProfile) -> Option<PreparedSnapshot> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut prefix = metric.prepare(profile.params());
        prefix.snapshot()
    }))
    .ok()
}

/// Runs one sweep point: prefix via fork-or-scratch, then `reps`
/// measurements (which must agree bit for bit — the simulation is
/// deterministic, and the engine asserts it).
fn run_point(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    value: u64,
    reps: usize,
    snap0: Option<&Mutex<PreparedSnapshot>>,
    stats: &Mutex<SweepStats>,
) -> SweepPoint {
    let reps = reps.max(1);
    let stock = param.stock(profile);
    let check_rep = |first: Option<f64>, v: f64| {
        if let Some(prev) = first {
            assert_eq!(
                f64::to_bits(v),
                f64::to_bits(prev),
                "repetitions of a deterministic point must agree ({} = {value})",
                param.name()
            );
        }
    };
    // Fork when provably sound: the stock point shares the prefix
    // trivially (nothing changed); any other value may share it only if
    // the prefix never consulted the parameter. A forked point needs no
    // per-point snapshot — every repetition forks the shared stock
    // snapshot directly (and re-points the parameter, which commutes with
    // nothing the prefix did).
    let forked = snap0.is_some_and(|snap| {
        let snap = snap.lock().unwrap();
        value == stock || snap.param_unread(param)
    });
    let measured = if forked {
        let snap = snap0.expect("forked implies snap0");
        let mut out = None;
        for _ in 0..reps {
            let mut prepared = snap.lock().unwrap().restore();
            if value != stock {
                prepared.apply_param(param, value);
            }
            let v = metric.measure(prepared);
            check_rep(out, v);
            out = Some(v);
        }
        out.expect("reps >= 1")
    } else {
        let mut params = profile.params();
        param.apply(&mut params, value);
        let mut prepared = metric.prepare(params.clone());
        if reps == 1 {
            metric.measure(prepared)
        } else if snap0.is_some() {
            // Forking enabled but the prefix read the parameter: prepare
            // once from scratch, then share it across repetitions via a
            // per-point snapshot (the first rep measures the original).
            let point_snap = prepared.snapshot();
            let first = metric.measure(prepared);
            let mut out = Some(first);
            for _ in 1..reps {
                let v = metric.measure(point_snap.restore());
                check_rep(out, v);
                out = Some(v);
            }
            first
        } else {
            // --no-fork oracle: every repetition is a full re-simulation.
            let first = metric.measure(prepared);
            let mut out = Some(first);
            for _ in 1..reps {
                let v = metric.evaluate(params.clone());
                check_rep(out, v);
                out = Some(v);
            }
            first
        }
    };

    {
        let mut s = stats.lock().unwrap();
        if forked {
            s.forked_points += 1;
        } else {
            s.scratch_points += 1;
        }
        if snap0.is_some() {
            s.forked_reps += reps.saturating_sub(1);
        } else {
            s.scratch_reps += reps.saturating_sub(1);
        }
    }
    SweepPoint {
        value,
        metric: measured,
    }
}

/// Runs a sweep sequentially, one repetition per point (equivalent to
/// [`run_sweep_reps`] with `reps = 1`, `jobs = 1`).
pub fn run_sweep(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
) -> Vec<SweepPoint> {
    run_sweep_reps(profile, param, metric, values, 1, 1).0
}

/// Runs a single-repetition sweep across `jobs` worker threads (`0` = one
/// per core). See [`run_sweep_reps`].
pub fn run_sweep_jobs(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
    jobs: usize,
) -> Vec<SweepPoint> {
    run_sweep_reps(profile, param, metric, values, 1, jobs).0
}

/// Runs a sweep — `reps` repetitions of each value, fanned out across
/// `jobs` worker threads (`0` = one per core; each point is one job, its
/// repetitions run on that job's worker).
///
/// Every point is a deterministic simulation, so the result vector is
/// identical — in values, order, and bits — whatever `jobs` is, whether
/// forking is enabled (the calling thread's [`crate::forkcfg`] setting),
/// and whatever `reps` is. Workers inherit the calling thread's idle
/// fast-forward setting too.
pub fn run_sweep_reps(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
    reps: usize,
    jobs: usize,
) -> (Vec<SweepPoint>, SweepStats) {
    let ff = latlab_os::fastforward::default_enabled();
    let snap0 = sweep_snap0(profile, metric);
    let stats = Mutex::new(SweepStats::default());
    let points =
        crate::pool::run_collect(crate::pool::resolve_jobs(jobs), values.len(), |i: usize| {
            let _ff = latlab_os::fastforward::override_default(ff);
            run_point(
                profile,
                param,
                metric,
                values[i],
                reps,
                snap0.as_ref(),
                &stats,
            )
        });
    (points, stats.into_inner().unwrap())
}

/// The shared stock prefix for a sweep, honoring the calling thread's
/// fork setting.
fn sweep_snap0(profile: OsProfile, metric: SweepMetric) -> Option<Mutex<PreparedSnapshot>> {
    if crate::forkcfg::default_enabled() {
        build_snap0(metric, profile).map(Mutex::new)
    } else {
        None
    }
}

/// Runs a whole sweep *grid* — several parameter columns of the same
/// metric on the same profile — sharing a single stock-prefix snapshot
/// across every column (each column's stock point, and every provably
/// unread parameter value, forks the same prepare). This is what the perf
/// harness times: amortizing the stock prepare over all columns is where
/// the fork engine's headline speedup comes from.
///
/// Returns one `Vec<SweepPoint>` per input column, in order, plus the
/// aggregate fork accounting. Results are bit-identical to running each
/// column through [`run_sweep_reps`] (and therefore to `--no-fork`
/// scratch runs), whatever `jobs` is.
pub fn run_sweep_grid(
    profile: OsProfile,
    metric: SweepMetric,
    columns: &[(SweepParam, Vec<u64>)],
    reps: usize,
    jobs: usize,
) -> (Vec<Vec<SweepPoint>>, SweepStats) {
    let ff = latlab_os::fastforward::default_enabled();
    let snap0 = sweep_snap0(profile, metric);
    let stats = Mutex::new(SweepStats::default());
    let flat: Vec<(SweepParam, u64)> = columns
        .iter()
        .flat_map(|(p, vs)| vs.iter().map(move |&v| (*p, v)))
        .collect();
    let points =
        crate::pool::run_collect(crate::pool::resolve_jobs(jobs), flat.len(), |i: usize| {
            let _ff = latlab_os::fastforward::override_default(ff);
            let (param, value) = flat[i];
            run_point(profile, param, metric, value, reps, snap0.as_ref(), &stats)
        });
    let mut out = Vec::with_capacity(columns.len());
    let mut rest = points.into_iter();
    for (_, vs) in columns {
        out.push(rest.by_ref().take(vs.len()).collect());
    }
    (out, stats.into_inner().unwrap())
}

/// Like [`run_sweep_reps`], but supervised: a point whose simulation
/// panics (or exceeds `timeout`) is reported as a failed
/// [`JobOutcome`](crate::pool::JobOutcome) while every other point still
/// completes. Results come back as `(value, outcome)` pairs in input
/// order.
pub fn run_sweep_supervised(
    profile: OsProfile,
    param: SweepParam,
    metric: SweepMetric,
    values: &[u64],
    reps: usize,
    jobs: usize,
    timeout: Option<std::time::Duration>,
) -> (Vec<(u64, crate::pool::JobOutcome<SweepPoint>)>, SweepStats) {
    let values: Arc<Vec<u64>> = Arc::new(values.to_vec());
    let worker_values = Arc::clone(&values);
    let ff = latlab_os::fastforward::default_enabled();
    let snap0: Arc<Option<Mutex<PreparedSnapshot>>> = Arc::new(sweep_snap0(profile, metric));
    let worker_snap0 = Arc::clone(&snap0);
    let stats = Arc::new(Mutex::new(SweepStats::default()));
    let worker_stats = Arc::clone(&stats);
    let mut out = Vec::with_capacity(values.len());
    crate::pool::run_supervised(
        crate::pool::resolve_jobs(jobs),
        values.len(),
        timeout,
        move |i| {
            let _ff = latlab_os::fastforward::override_default(ff);
            run_point(
                profile,
                param,
                metric,
                worker_values[i],
                reps,
                worker_snap0.as_ref().as_ref(),
                &worker_stats,
            )
        },
        |i, outcome| out.push((values[i], outcome)),
    );
    let collected = *stats.lock().unwrap();
    (out, collected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(
            SweepParam::parse("gdi-batch-size"),
            Some(SweepParam::GdiBatchSize)
        );
        assert_eq!(SweepParam::parse("nope"), None);
        assert_eq!(
            SweepMetric::parse("keystroke"),
            Some(SweepMetric::KeystrokeMs)
        );
        assert_eq!(
            SweepMetric::parse("word-keystroke"),
            Some(SweepMetric::WordKeystrokeMs)
        );
        assert_eq!(
            SweepMetric::parse("notepad-keystroke"),
            Some(SweepMetric::NotepadKeystrokeMs)
        );
        assert_eq!(SweepMetric::parse("nope"), None);
    }

    #[test]
    fn crossing_sweep_moves_keystroke_latency() {
        let points = run_sweep(
            OsProfile::Nt351,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &[1_000, 20_000],
        );
        assert!(
            points[1].metric > points[0].metric + 0.1,
            "heavier crossings must slow keystrokes: {points:?}"
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let values = [1_000, 5_000, 10_000, 20_000];
        let seq = run_sweep(
            OsProfile::Nt40,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &values,
        );
        let par = run_sweep_jobs(
            OsProfile::Nt40,
            SweepParam::CrossingInstr,
            SweepMetric::KeystrokeMs,
            &values,
            4,
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.metric.to_bits(), b.metric.to_bits(), "point {}", a.value);
        }
    }

    #[test]
    fn stock_values_resolve() {
        for p in SweepParam::ALL {
            assert!(p.stock(OsProfile::Nt40) > 0);
        }
    }

    #[test]
    fn forked_sweep_is_byte_identical_to_scratch() {
        let stock = SweepParam::InputDispatchInstr.stock(OsProfile::Nt40);
        let values = [stock / 2, stock, stock * 3];
        let (forked, fstats) = run_sweep_reps(
            OsProfile::Nt40,
            SweepParam::InputDispatchInstr,
            SweepMetric::NotepadKeystrokeMs,
            &values,
            2,
            1,
        );
        let _scratch_mode = crate::forkcfg::override_default(false);
        let (scratch, sstats) = run_sweep_reps(
            OsProfile::Nt40,
            SweepParam::InputDispatchInstr,
            SweepMetric::NotepadKeystrokeMs,
            &values,
            2,
            1,
        );
        for (a, b) in forked.iter().zip(&scratch) {
            assert_eq!(a.value, b.value);
            assert_eq!(
                a.metric.to_bits(),
                b.metric.to_bits(),
                "fork must be invisible at value {}",
                a.value
            );
        }
        // Input dispatch happens during the warm typing, so only the stock
        // point forks; repetitions always share once forking is on.
        assert_eq!(fstats.forked_points, 1, "{fstats:?}");
        assert_eq!(fstats.scratch_points, 2, "{fstats:?}");
        assert_eq!(fstats.forked_reps, 3, "{fstats:?}");
        assert_eq!(
            sstats,
            SweepStats {
                forked_points: 0,
                scratch_points: 3,
                forked_reps: 0,
                scratch_reps: 3,
            },
            "--no-fork must not fork anything"
        );
    }

    #[test]
    fn unread_param_forks_across_points() {
        // Notepad never writes a file, so the write-path overhead is
        // provably unread through the warm prefix: every point forks, and
        // the metric is flat across values.
        let stock = SweepParam::WriteOverheadMilli.stock(OsProfile::Nt40);
        let (points, stats) = run_sweep_reps(
            OsProfile::Nt40,
            SweepParam::WriteOverheadMilli,
            SweepMetric::NotepadKeystrokeMs,
            &[stock, stock * 4],
            1,
            1,
        );
        assert_eq!(stats.forked_points, 2, "{stats:?}");
        assert_eq!(stats.scratch_points, 0, "{stats:?}");
        assert_eq!(points[0].metric.to_bits(), points[1].metric.to_bits());
    }

    #[test]
    fn boot_read_param_falls_back_to_scratch() {
        // The buffer cache is sized at boot, so cache-blocks can never
        // fork — the engine must prove it and re-simulate.
        let stock = SweepParam::CacheBlocks.stock(OsProfile::Nt40);
        let (_, stats) = run_sweep_reps(
            OsProfile::Nt40,
            SweepParam::CacheBlocks,
            SweepMetric::KeystrokeMs,
            &[stock, stock * 2],
            1,
            1,
        );
        assert_eq!(stats.forked_points, 1, "stock point still forks: {stats:?}");
        assert_eq!(stats.scratch_points, 1, "{stats:?}");
    }

    #[test]
    fn grid_matches_per_column_sweeps() {
        let columns: Vec<(SweepParam, Vec<u64>)> =
            [SweepParam::CrossingInstr, SweepParam::WriteOverheadMilli]
                .into_iter()
                .map(|p| {
                    let stock = p.stock(OsProfile::Nt40);
                    (p, vec![stock, stock * 2])
                })
                .collect();
        let (grid, gstats) =
            run_sweep_grid(OsProfile::Nt40, SweepMetric::KeystrokeMs, &columns, 1, 2);
        assert_eq!(grid.len(), columns.len());
        for ((param, values), points) in columns.iter().zip(&grid) {
            let (solo, _) = run_sweep_reps(
                OsProfile::Nt40,
                *param,
                SweepMetric::KeystrokeMs,
                values,
                1,
                1,
            );
            for (a, b) in points.iter().zip(&solo) {
                assert_eq!(a.value, b.value);
                assert_eq!(
                    a.metric.to_bits(),
                    b.metric.to_bits(),
                    "grid point {} of {} must match the solo sweep",
                    a.value,
                    param.name()
                );
            }
        }
        assert_eq!(gstats.forked_points + gstats.scratch_points, 4);
    }

    #[test]
    fn supervised_forked_sweep_completes() {
        let stock = SweepParam::GuiPathMilli.stock(OsProfile::Nt40);
        let (outcomes, stats) = run_sweep_supervised(
            OsProfile::Nt40,
            SweepParam::GuiPathMilli,
            SweepMetric::KeystrokeMs,
            &[stock, stock * 2],
            2,
            2,
            None,
        );
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes
            .iter()
            .all(|(_, o)| matches!(o, crate::pool::JobOutcome::Completed(_))));
        assert_eq!(stats.forked_points + stats.scratch_points, 2);
        assert_eq!(stats.forked_reps, 2);
    }
}
