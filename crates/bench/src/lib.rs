//! The experiment harness: regenerates every table and figure of *"Using
//! Latency to Evaluate Interactive System Performance"* (OSDI '96).
//!
//! `cargo run -p latlab-bench --bin repro --release` runs every experiment,
//! prints the ASCII analogue of each figure with shape checks against the
//! paper's claims, and writes CSV/JSON data under `results/`. Individual
//! experiments run with `-- <id>` (`fig1` … `fig12`, `tab2`, `sec54`,
//! `ablations`).

pub mod engine;
pub mod faultcfg;
pub mod forkcfg;
pub mod pool;
pub mod record;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod sweep;

pub use engine::{run_scenarios, EngineConfig, ScenarioOutcome, ScenarioRun};
pub use pool::JobOutcome;
pub use report::{Check, ExperimentReport};
